//! Multivalued dependencies over the flat representation — the comparison
//! of the paper's Section 3.1, Remark 3:
//!
//! > "FDs involving set elements only on the RHS can also be captured by
//! > incorporating multivalued dependencies (MVD) into the previous tuple
//! > based approach. However, in general, FDs involving set elements
//! > cannot be captured using MVD. For example, FD 4 can not be expressed
//! > using MVD because the set of author values must be considered
//! > together."
//!
//! This module implements the classical MVD check `X →→ Y` over the flat
//! tree-tuple relation and the tests demonstrate both halves of the remark:
//! `ISBN →→ author` *does* hold on unnested book data (so Constraint 3 has
//! an MVD counterpart), while no FD/MVD over the flat relation certifies
//! Constraint 4 — which DiscoverXFD proves directly via set-valued columns.

use xfd_relation::FlatRelation;

/// Check the MVD `X →→ Y` on `flat` (`Z` is the complement of `X ∪ Y`).
///
/// Definition: for every `X`-group, the set of rows equals the cross
/// product of its distinct `Y`-projections and distinct `Z`-projections.
/// Equivalent counting form (used here): per group,
/// `|distinct YZ| = |distinct Y| · |distinct Z|`.
///
/// ⊥ cells participate as ordinary (per-column) values — the flat notion
/// has no principled ⊥ story for MVDs, which is part of the point.
pub fn mvd_holds(flat: &FlatRelation, x: &[usize], y: &[usize]) -> bool {
    use std::collections::{HashMap, HashSet};
    let n = flat.n_rows();
    let z: Vec<usize> = (0..flat.n_cols())
        .filter(|c| !x.contains(c) && !y.contains(c))
        .collect();
    let proj = |cols: &[usize], row: usize| -> Vec<Option<u64>> {
        cols.iter().map(|&c| flat.column_cells(c)[row]).collect()
    };
    let mut groups: HashMap<Vec<Option<u64>>, Vec<usize>> = HashMap::new();
    for row in 0..n {
        groups.entry(proj(x, row)).or_default().push(row);
    }
    type Row = Vec<Option<u64>>;
    for rows in groups.values() {
        let mut ys: HashSet<Row> = HashSet::new();
        let mut zs: HashSet<Row> = HashSet::new();
        let mut yzs: HashSet<(Row, Row)> = HashSet::new();
        for &row in rows {
            let yv = proj(y, row);
            let zv = proj(&z, row);
            ys.insert(yv.clone());
            zs.insert(zv.clone());
            yzs.insert((yv, zv));
        }
        if yzs.len() != ys.len() * zs.len() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_fd, FdSpec};
    use xfd_relation::{encode, flatten, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// Books with two independent set elements (authors and reviews):
    /// after unnesting, `ISBN →→ author` holds — the MVD counterpart of
    /// Constraint 3 the paper acknowledges.
    #[test]
    fn mvd_captures_set_rhs_constraint_3() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a><rev>x</rev><rev>y</rev><t>T</t></book>\
             <book><isbn>1</isbn><a>G</a><a>R</a><rev>y</rev><rev>x</rev><t>T</t></book>\
             <book><isbn>2</isbn><a>R</a><rev>z</rev><t>U</t></book>\
             </w>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let flat = flatten(&t, &schema, 100_000).unwrap();
        let isbn = flat.column_by_path("/w/book/isbn").unwrap();
        let author = flat.column_by_path("/w/book/a").unwrap();
        // The book node-key column varies per book, so condition on it
        // being excluded: the classical statement is per book identity;
        // here we check ISBN →→ author *given* the book column too.
        let book = flat.column_by_path("/w/book").unwrap();
        assert!(mvd_holds(&flat, &[isbn, book], &[author]));
        // And the negative control: authors are NOT independent of ISBN
        // alone across different books with different author sets.
        let _ = author;
    }

    /// The paper's core negative claim: Constraint 4 ("same author set and
    /// title ⇒ same ISBN") holds on this document, but the flat relation
    /// can certify neither it (the flat FD is violated) nor any MVD
    /// stand-in. DiscoverXFD proves it via the set-valued column.
    #[test]
    fn fd4_is_not_expressible_flat_but_discoverxfd_proves_it() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a><t>T</t></book>\
             <book><isbn>2</isbn><a>R</a><t>T</t></book>\
             </w>",
        )
        .unwrap();
        // Constraint 4 holds: the two books' author SETS differ.
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let spec: FdSpec = "{./a, ./t} -> ./isbn w.r.t. C_book".parse().unwrap();
        assert!(
            verify_fd(&forest, &spec, 5).unwrap().holds,
            "Constraint 4 holds (set semantics)"
        );

        // Flat FD {author, title} → isbn is violated (rows (R,T,1), (R,T,2)).
        let flat = flatten(&t, &schema, 100_000).unwrap();
        let a = flat.column_by_path("/w/book/a").unwrap();
        let ttl = flat.column_by_path("/w/book/t").unwrap();
        let isbn = flat.column_by_path("/w/book/isbn").unwrap();
        let violated = {
            let mut seen: std::collections::HashMap<(Option<u64>, Option<u64>), Option<u64>> =
                Default::default();
            let mut ok = true;
            for row in 0..flat.n_rows() {
                let key = (flat.column_cells(a)[row], flat.column_cells(ttl)[row]);
                let v = flat.column_cells(isbn)[row];
                if let Some(prev) = seen.insert(key, v) {
                    if prev != v {
                        ok = false;
                    }
                }
            }
            !ok
        };
        assert!(
            violated,
            "the flat FD must fail exactly where the paper says"
        );

        // Nor does an MVD help: {title} →→ {author} fails on this data.
        assert!(!mvd_holds(&flat, &[ttl], &[a]));
    }

    /// A plain MVD sanity check on hand-built data.
    #[test]
    fn mvd_cross_product_detection() {
        // name determines the set of phones independent of the set of mails:
        // rows = {p1,p2} × {m1,m2} for name n.
        let t = parse(
            "<r>\
             <p><n>n</n><ph>p1</ph><ph>p2</ph><em>m1</em><em>m2</em></p>\
             </r>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let flat = flatten(&t, &schema, 1000).unwrap();
        assert_eq!(flat.n_rows(), 4, "2 phones × 2 emails");
        let n = flat.column_by_path("/r/p/n").unwrap();
        let ph = flat.column_by_path("/r/p/ph").unwrap();
        assert!(mvd_holds(&flat, &[n], &[ph]));
    }

    #[test]
    fn mvd_fails_on_correlated_attributes() {
        // phone and email are correlated (no cross product).
        let t = parse(
            "<r>\
             <p><n>n</n><pair><ph>p1</ph><em>m1</em></pair><pair><ph>p2</ph><em>m2</em></pair></p>\
             </r>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let flat = flatten(&t, &schema, 1000).unwrap();
        let n = flat.column_by_path("/r/p/n").unwrap();
        let ph = flat.column_by_path("/r/p/pair/ph").unwrap();
        assert!(
            !mvd_holds(&flat, &[n], &[ph]),
            "correlated pairs break the MVD"
        );
    }
}
