//! High-level pipeline: schema (inferred or given) → hierarchical encoding
//! → `DiscoverXFD` → interesting-FD classification → redundancy analysis,
//! with per-phase wall-clock timings (the phase-breakdown experiment).

use std::time::{Duration, Instant};

use xfd_relation::{encode, Forest, ForestStats};
use xfd_schema::{infer_schema, Schema};
use xfd_xml::DataTree;

use crate::config::DiscoveryConfig;
use crate::fd::{Xfd, XmlKey};
use crate::interesting::classify;
use crate::intra::RunStats;
use crate::redundancy::{analyze, Redundancy};
use crate::xfd::{discover_forest, TargetStats};

/// Wall-clock time spent in each phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Collection merge: grafting documents under the synthetic root, or
    /// (on the sharded corpus path) merging per-segment partial relations
    /// into the global forest. Zero for single-document runs.
    pub merge: Duration,
    /// Schema inference (zero when a schema was supplied).
    pub infer: Duration,
    /// Hierarchical encoding (including set-valued columns).
    pub encode: Duration,
    /// Lattice traversals + partition-target propagation.
    pub discover: Duration,
    /// Redundancy analysis.
    pub redundancy: Duration,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.merge + self.infer + self.encode + self.discover + self.redundancy
    }
}

/// Everything the system *discovered* about one document — the artifacts
/// only. Work counters and timings live beside it in [`RunOutcome`], so
/// two runs over the same data compare equal on the parts that matter.
#[derive(Debug)]
pub struct DiscoveryReport {
    /// The schema used (inferred unless supplied).
    pub schema: Schema,
    /// Interesting XML FDs (Definition 10), minimal.
    pub fds: Vec<Xfd>,
    /// XML Keys of essential tuple classes, minimal.
    pub keys: Vec<XmlKey>,
    /// FDs filtered by Definition 10 (populated only with
    /// `keep_uninteresting`).
    pub uninteresting_fds: Vec<Xfd>,
    /// Keys of non-essential classes (ditto).
    pub uninteresting_keys: Vec<XmlKey>,
    /// Redundancies (Definition 11) with magnitudes.
    pub redundancies: Vec<Redundancy>,
}

/// Work counters of one pipeline run, grouped by origin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStatsBundle {
    /// Lattice work counters summed over relations (including the
    /// partition-cache hit/miss/eviction/residency counters).
    pub lattice: RunStats,
    /// Partition-target counters of the inter-relation pass.
    pub targets: TargetStats,
    /// Size of the hierarchical representation.
    pub forest: ForestStats,
    /// Relation-memo counters for this run (hits/misses/evictions are the
    /// run's deltas; entries/residency the state afterwards). All zero for
    /// unmemoized runs.
    pub memo: crate::memo::MemoStats,
}

/// One full pipeline run: the discovered artifacts plus the counters and
/// per-phase timings describing how the run went. Derefs to its
/// [`DiscoveryReport`] so artifact access stays terse (`outcome.fds`).
#[derive(Debug)]
pub struct RunOutcome {
    /// What was discovered.
    pub report: DiscoveryReport,
    /// How much work it took.
    pub stats: RunStatsBundle,
    /// Where the time went.
    pub profile: PhaseTimings,
}

impl std::ops::Deref for RunOutcome {
    type Target = DiscoveryReport;

    fn deref(&self) -> &DiscoveryReport {
        &self.report
    }
}

/// Run the full pipeline, inferring the schema from the document.
pub fn discover(tree: &DataTree, config: &DiscoveryConfig) -> RunOutcome {
    let t0 = Instant::now();
    let schema = infer_schema(tree);
    let infer = t0.elapsed();
    let mut outcome = discover_with_schema(tree, &schema, config);
    outcome.profile.infer = infer;
    outcome
}

/// Run the full pipeline against a known schema (the document must
/// conform; see `xfd_schema::check`).
pub fn discover_with_schema(
    tree: &DataTree,
    schema: &Schema,
    config: &DiscoveryConfig,
) -> RunOutcome {
    let t0 = Instant::now();
    let forest = encode(tree, schema, &config.encode);
    let encode_t = t0.elapsed();

    let t1 = Instant::now();
    let disc = discover_forest(&forest, config);
    let discover_t = t1.elapsed();

    let t2 = Instant::now();
    let redundancies = analyze(&forest, &disc);
    let redundancy_t = t2.elapsed();

    let classified = classify(&forest, &disc, config.keep_uninteresting);
    RunOutcome {
        report: DiscoveryReport {
            schema: schema.clone(),
            fds: classified.fds,
            keys: classified.keys,
            uninteresting_fds: classified.uninteresting_fds,
            uninteresting_keys: classified.uninteresting_keys,
            redundancies,
        },
        stats: RunStatsBundle {
            lattice: disc.lattice_stats,
            targets: disc.target_stats,
            forest: forest.stats(),
            memo: crate::memo::MemoStats::default(),
        },
        profile: PhaseTimings {
            merge: Duration::ZERO,
            infer: Duration::ZERO,
            encode: encode_t,
            discover: discover_t,
            redundancy: redundancy_t,
        },
    }
}

/// Encode only (exposed for benchmarks that need the forest itself).
pub fn encode_only(tree: &DataTree, config: &DiscoveryConfig) -> (Schema, Forest) {
    let schema = infer_schema(tree);
    let forest = encode(tree, &schema, &config.encode);
    (schema, forest)
}

/// Discover over a *collection* of documents at once: FDs must hold across
/// the union of all tuples, and redundancies spanning documents are found.
///
/// Implementation: the documents are grafted under a synthetic
/// `<collection>` root, which turns their (same-labeled) roots into a set
/// element; every original tuple class deepens by one level and discovery
/// proceeds unchanged. Pivot-relative FD paths are unaffected.
pub fn discover_collection(trees: &[&DataTree], config: &DiscoveryConfig) -> RunOutcome {
    let t0 = Instant::now();
    let merged = merge_collection(trees);
    let merge_t = t0.elapsed();
    let mut outcome = discover(&merged, config);
    outcome.profile.merge = merge_t;
    outcome
}

/// Graft `trees` under the synthetic `<collection>` root (the exact merge
/// [`discover_collection`] performs — shared so the corpus store's
/// incremental path sees byte-identical input).
pub fn merge_collection(trees: &[&DataTree]) -> DataTree {
    use xfd_xml::builder::TreeWriter;
    let mut w = TreeWriter::new("collection");
    for t in trees {
        w.copy_subtree(t, t.root());
    }
    w.finish()
}

/// [`discover_collection`] with a relation-pass memo and per-relation
/// progress callback: documents merge, the schema is re-inferred and the
/// forest re-encoded every time (cheap, linear), but relation passes whose
/// fingerprints are unchanged replay from `memo` instead of re-running the
/// lattice traversal. Output is identical to [`discover_collection`] on
/// the same documents and configuration, timings aside.
pub fn discover_trees_with_memo(
    trees: &[&DataTree],
    config: &DiscoveryConfig,
    memo: &mut crate::memo::RelationMemo,
    progress: impl FnMut(crate::memo::RelationProgress<'_>),
) -> RunOutcome {
    let tm = Instant::now();
    let merged = merge_collection(trees);
    let merge_t = tm.elapsed();
    let t0 = Instant::now();
    let schema = infer_schema(&merged);
    let infer = t0.elapsed();

    let t1 = Instant::now();
    let forest = encode(&merged, &schema, &config.encode);
    let encode_t = t1.elapsed();

    let mut outcome = discover_prepared(&schema, &forest, config, memo, progress);
    outcome.profile.merge = merge_t;
    outcome.profile.infer = infer;
    outcome.profile.encode = encode_t;
    outcome
}

/// The back half of the memoized pipeline: discovery + redundancy analysis
/// over an *already encoded* forest. The sharded corpus path prepares the
/// schema and forest itself (from per-segment caches, possibly in
/// parallel) and calls this; `infer`/`encode` timings are left zero for
/// the caller to fill.
pub fn discover_prepared(
    schema: &Schema,
    forest: &Forest,
    config: &DiscoveryConfig,
    memo: &mut crate::memo::RelationMemo,
    progress: impl FnMut(crate::memo::RelationProgress<'_>),
) -> RunOutcome {
    discover_prepared_with(schema, forest, config, memo, progress, None)
}

/// [`discover_prepared`] with an optional external
/// [`PassRunner`](crate::memo::PassRunner) executing the relation passes
/// that miss the memo (the cluster
/// coordinator's hook); `None` computes every pass in process. A runner
/// answer that fails to decode falls back to local computation, so the
/// output never depends on who computed a pass.
pub fn discover_prepared_with(
    schema: &Schema,
    forest: &Forest,
    config: &DiscoveryConfig,
    memo: &mut crate::memo::RelationMemo,
    progress: impl FnMut(crate::memo::RelationProgress<'_>),
    runner: Option<&mut dyn crate::memo::PassRunner>,
) -> RunOutcome {
    let before = memo.stats();
    let t2 = Instant::now();
    let disc = crate::memo::discover_forest_memo_with(forest, config, memo, progress, runner);
    let discover_t = t2.elapsed();

    let t3 = Instant::now();
    let redundancies = analyze(forest, &disc);
    let redundancy_t = t3.elapsed();

    let after = memo.stats();
    let classified = classify(forest, &disc, config.keep_uninteresting);
    RunOutcome {
        report: DiscoveryReport {
            schema: schema.clone(),
            fds: classified.fds,
            keys: classified.keys,
            uninteresting_fds: classified.uninteresting_fds,
            uninteresting_keys: classified.uninteresting_keys,
            redundancies,
        },
        stats: RunStatsBundle {
            lattice: disc.lattice_stats,
            targets: disc.target_stats,
            forest: forest.stats(),
            memo: crate::memo::MemoStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                evictions: after.evictions - before.evictions,
                entries: after.entries,
                resident_bytes: after.resident_bytes,
            },
        },
        profile: PhaseTimings {
            merge: Duration::ZERO,
            infer: Duration::ZERO,
            encode: Duration::ZERO,
            discover: discover_t,
            redundancy: redundancy_t,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::parse;

    /// The paper's running example end to end: FDs 1–4 and the
    /// corresponding redundancies must all be found on Figure 1's data.
    #[test]
    fn figure_1_document_yields_fds_1_through_4() {
        let t = parse(
            "<warehouse>\
             <state><name>WA</name>\
               <store><contact><name>Borders</name><address>Seattle</address></contact>\
                 <book><ISBN>1-0676-7</ISBN><author>Post</author><title>Dreams</title><price>19.99</price></book>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
               </store></state>\
             <state><name>KY</name>\
               <store><contact><name>Borders</name><address>Lexington</address></contact>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
               </store>\
               <store><contact><name>WHSmith</name><address>Lexington</address></contact>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title></book>\
               </store></state>\
             </warehouse>",
        )
        .unwrap();
        let report = discover(&t, &DiscoveryConfig::default());
        let fds: Vec<String> = report.fds.iter().map(Xfd::to_string).collect();
        // FD 1: {./ISBN} → ./title w.r.t. C_book.
        assert!(
            fds.iter().any(|f| f == "{./ISBN} -> ./title w.r.t. C_book"),
            "{fds:#?}"
        );
        // FD 3: {./ISBN} → ./author (set semantics).
        assert!(
            fds.iter()
                .any(|f| f == "{./ISBN} -> ./author w.r.t. C_book"),
            "{fds:#?}"
        );
        // FD 4: {./author, ./title} → ./ISBN — possibly subsumed by the
        // minimal {./author} → ./ISBN or {./title} → ./ISBN on this small
        // instance; accept any of them.
        assert!(
            fds.iter().any(|f| f.contains("-> ./ISBN w.r.t. C_book")),
            "{fds:#?}"
        );
        // FD 2: {../contact/name, ./ISBN} → ./price — on this data
        // {./ISBN} → ./price fails (book 80 has no price) but the
        // inter-relation completion holds.
        assert!(
            fds.iter()
                .any(|f| f.contains("../contact/name") && f.contains("-> ./price")),
            "{fds:#?}"
        );
        // Redundancies: FD 1 and FD 3 indicate redundancy (duplicate
        // titles/author sets for ISBN 1-55860-438-3).
        let reds: Vec<String> = report
            .redundancies
            .iter()
            .map(|r| r.fd.to_string())
            .collect();
        assert!(
            reds.iter()
                .any(|r| r == "{./ISBN} -> ./title w.r.t. C_book"),
            "{reds:#?}"
        );
        assert!(
            reds.iter()
                .any(|r| r == "{./ISBN} -> ./author w.r.t. C_book"),
            "{reds:#?}"
        );
    }

    #[test]
    fn timings_are_recorded() {
        let t = parse("<r><a><x>1</x></a><a><x>1</x></a></r>").unwrap();
        let outcome = discover(&t, &DiscoveryConfig::default());
        // Inference ran; all phases have defined (possibly tiny) durations.
        assert!(outcome.profile.total() >= outcome.profile.discover);
        assert!(outcome.stats.forest.relations >= 2);
    }

    #[test]
    fn keep_uninteresting_surfaces_root_results() {
        let t = parse("<r><v>1</v><a><x>1</x></a><a><x>1</x></a></r>").unwrap();
        let without = discover(&t, &DiscoveryConfig::default());
        assert!(without.uninteresting_keys.is_empty());
        let with = discover(
            &t,
            &DiscoveryConfig {
                keep_uninteresting: true,
                ..Default::default()
            },
        );
        assert!(!with.uninteresting_keys.is_empty());
    }

    #[test]
    fn collection_discovery_spans_documents() {
        // Within each document isbn→title holds; across them it is
        // violated — collection discovery must notice.
        let d1 = parse(
            "<shop><book><i>1</i><t>A</t></book><book><i>1</i><t>A</t></book>\
             <book><i>2</i><t>B</t></book></shop>",
        )
        .unwrap();
        let d2 = parse("<shop><book><i>1</i><t>DIFFERENT</t></book></shop>").unwrap();
        let single = discover(&d1, &DiscoveryConfig::default());
        assert!(single
            .fds
            .iter()
            .any(|f| f.to_string() == "{./i} -> ./t w.r.t. C_book"));
        let both = discover_collection(&[&d1, &d2], &DiscoveryConfig::default());
        assert!(
            !both
                .fds
                .iter()
                .any(|f| f.to_string() == "{./i} -> ./t w.r.t. C_book"),
            "{:#?}",
            both.fds.iter().map(|f| f.to_string()).collect::<Vec<_>>()
        );
        // And a cross-document redundancy: titles duplicated across shops.
        let d3 = parse("<shop><book><i>2</i><t>B</t></book><book><i>3</i><t>C</t></book></shop>")
            .unwrap();
        let d4 = parse("<shop><book><i>2</i><t>B</t></book></shop>").unwrap();
        let merged = discover_collection(&[&d3, &d4], &DiscoveryConfig::default());
        assert!(merged
            .redundancies
            .iter()
            .any(|r| r.fd.to_string() == "{./i} -> ./t w.r.t. C_book"));
    }

    /// Mutation sensitivity: perturbing a single value must drop exactly
    /// the dependencies it breaks — discovery is not "sticky".
    #[test]
    fn single_value_perturbation_is_detected() {
        let clean = xfd_datagen::warehouse_figure1();
        let before = discover(&clean, &DiscoveryConfig::default());
        assert!(before
            .fds
            .iter()
            .any(|f| f.to_string() == "{./ISBN} -> ./title w.r.t. C_book"));
        // Corrupt one title of the repeated ISBN.
        let mut dirty = clean.clone();
        let titles = "/warehouse/state/store/book/title"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&dirty);
        // Find a "DBMS" title and change it.
        let victim = titles
            .iter()
            .find(|&&n| dirty.value(n) == Some("DBMS"))
            .copied()
            .unwrap();
        dirty.set_value(victim, "DBMS (2nd ed)");
        let after = discover(&dirty, &DiscoveryConfig::default());
        assert!(
            !after
                .fds
                .iter()
                .any(|f| f.to_string() == "{./ISBN} -> ./title w.r.t. C_book"),
            "broken FD must disappear"
        );
        // Unrelated dependencies survive (ISBN still determines authors).
        assert!(after
            .fds
            .iter()
            .any(|f| f.to_string() == "{./ISBN} -> ./author w.r.t. C_book"));
    }

    #[test]
    fn max_lhs_size_limits_reported_fds() {
        let t = parse(
            "<r>\
             <b><p>1</p><q>1</q><s>1</s><z>1</z></b>\
             <b><p>1</p><q>2</q><s>2</s><z>2</z></b>\
             <b><p>2</p><q>1</q><s>2</s><z>3</z></b>\
             <b><p>2</p><q>2</q><s>1</s><z>4</z></b>\
             </r>",
        )
        .unwrap();
        let bounded = discover(
            &t,
            &DiscoveryConfig {
                max_lhs_size: Some(1),
                ..Default::default()
            },
        );
        assert!(
            bounded.fds.iter().all(|fd| fd.lhs.len() <= 1),
            "{:#?}",
            bounded.fds
        );
    }
}
