//! `DiscoverXFD` (Figure 9): bottom-up traversal of the relation forest,
//! discovering intra-relation FDs/keys per relation and inter-relation
//! FDs/keys by propagating partition targets from child relations to their
//! ancestors.

use std::collections::HashMap;

use xfd_partition::{AttrSet, ErrorOnlyProduct, GroupMap, Partition, PartitionCache};
use xfd_relation::{Forest, RelId};

use crate::config::DiscoveryConfig;
use crate::intra::RunStats;
use crate::lattice::{
    candidate_error, candidate_lhs, ensure, ensure_full, ensure_summary, materialize_frontier,
    precompute_level, IntraFd,
};
use crate::target::{
    create_target, create_target_from_base, update_target, CreateOutcome, PartitionTarget,
};

/// A discovered inter-relation FD, in raw (relation, attribute) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInterFd {
    /// Relation of the tuple class the FD is about.
    pub origin: RelId,
    /// RHS column in the origin relation.
    pub rhs: usize,
    /// LHS per level: `(relation, attributes)`, origin first, then
    /// successively higher ancestors.
    pub lhs_levels: Vec<(RelId, AttrSet)>,
}

/// A discovered inter-relation XML Key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInterKey {
    /// Relation of the tuple class.
    pub origin: RelId,
    /// LHS per level, origin first.
    pub lhs_levels: Vec<(RelId, AttrSet)>,
}

/// Per-relation intra results.
#[derive(Debug, Clone)]
pub struct RelationDiscovery {
    /// The relation.
    pub rel: RelId,
    /// Minimal intra-relation FDs (attribute indices).
    pub fds: Vec<IntraFd>,
    /// Minimal intra-relation keys.
    pub keys: Vec<AttrSet>,
}

/// Counters specific to the inter-relation machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// Partition targets created from unsatisfied edges.
    pub created: usize,
    /// Targets propagated to a parent relation.
    pub propagated: usize,
    /// Targets dropped because a conflicting pair collapsed.
    pub dropped_impossible: usize,
    /// Targets dropped by the pair/target caps.
    pub dropped_overflow: usize,
}

/// Full output of the forest traversal.
#[derive(Debug)]
pub struct ForestDiscovery {
    /// Intra results per relation (same order as `forest.relations`).
    pub relations: Vec<RelationDiscovery>,
    /// Inter-relation FDs.
    pub inter_fds: Vec<RawInterFd>,
    /// Inter-relation keys.
    pub inter_keys: Vec<RawInterKey>,
    /// Lattice work counters, summed over relations.
    pub lattice_stats: RunStats,
    /// Partition-target counters.
    pub target_stats: TargetStats,
}

/// Everything one relation's pass produces (kept local so relation passes
/// can run on worker threads, and cloneable so `crate::memo` can cache it).
#[derive(Clone)]
pub(crate) struct RelationOutput {
    pub(crate) local: RelationDiscovery,
    pub(crate) inter_fds: Vec<RawInterFd>,
    pub(crate) inter_keys: Vec<RawInterKey>,
    pub(crate) lattice: RunStats,
    pub(crate) targets: TargetStats,
    pub(crate) outgoing: Vec<PartitionTarget>,
}

/// Run `DiscoverXFD` over an encoded forest. With
/// [`DiscoveryConfig::parallel`], independent relations (same depth in the
/// relation tree) are processed on scoped worker threads; results are
/// merged in relation order, so the output is identical either way.
pub fn discover_forest(forest: &Forest, config: &DiscoveryConfig) -> ForestDiscovery {
    let mut out = ForestDiscovery {
        relations: Vec::with_capacity(forest.relations.len()),
        inter_fds: Vec::new(),
        inter_keys: Vec::new(),
        lattice_stats: RunStats::default(),
        target_stats: TargetStats::default(),
    };
    // Incoming partition targets per relation, pairs in that relation's
    // tuple space.
    let mut inbox: HashMap<RelId, Vec<PartitionTarget>> = HashMap::new();

    let (_, waves) = relation_waves(forest);

    let threads = config.effective_threads();
    for wave in waves.into_iter().rev() {
        let jobs: Vec<(RelId, Vec<PartitionTarget>)> = wave
            .into_iter()
            .map(|rel_id| (rel_id, inbox.remove(&rel_id).unwrap_or_default()))
            .collect();
        // Two parallelism axes sharing one thread pool: a wave with several
        // relations splits them over at most `threads` workers (each
        // relation pass then sequential inside); a wave with one relation
        // runs on the caller's thread and hands all `threads` workers to
        // the per-level partition precompute. Either way results are
        // bit-identical to sequential, so splitting adaptively is safe.
        let results: Vec<RelationOutput> = if threads > 1 && jobs.len() > 1 {
            let chunk_size = jobs.len().div_ceil(threads);
            let mut chunks: Vec<Vec<(RelId, Vec<PartitionTarget>)>> = Vec::new();
            let mut it = jobs.into_iter();
            loop {
                let chunk: Vec<_> = it.by_ref().take(chunk_size).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .into_iter()
                                .map(|(rel_id, incoming)| {
                                    process_relation(forest, rel_id, incoming, config, 1)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("relation worker"))
                    .collect()
            })
        } else {
            jobs.into_iter()
                .map(|(rel_id, incoming)| {
                    process_relation(forest, rel_id, incoming, config, threads)
                })
                .collect()
        };
        for mut result in results {
            let rel_id = result.local.rel;
            out.inter_fds.append(&mut result.inter_fds);
            out.inter_keys.append(&mut result.inter_keys);
            out.lattice_stats.absorb(&result.lattice);
            out.target_stats.created += result.targets.created;
            out.target_stats.propagated += result.targets.propagated;
            out.target_stats.dropped_impossible += result.targets.dropped_impossible;
            out.target_stats.dropped_overflow += result.targets.dropped_overflow;
            out.relations.push(result.local);
            if let Some(parent) = forest.relation(rel_id).parent {
                let mut outgoing = result.outgoing;
                let room = config
                    .max_partition_targets
                    .saturating_sub(inbox.get(&parent).map_or(0, Vec::len));
                if outgoing.len() > room {
                    out.target_stats.dropped_overflow += outgoing.len() - room;
                    outgoing.truncate(room);
                }
                inbox.entry(parent).or_default().extend(outgoing);
            }
        }
    }
    // Relations vector was filled bottom-up; restore forest order.
    out.relations.sort_by_key(|r| r.rel);
    minimize_inter(&mut out);
    out
}

/// Group relations by depth in the relation tree into processing waves
/// (deepest wave last in the returned vector; callers iterate in reverse).
/// Relations within a wave never feed each other. Depths are derived by
/// walking each relation's parent chain, so the computation holds for any
/// relation order (a child may be listed before its parent).
pub(crate) fn relation_waves(forest: &Forest) -> (HashMap<RelId, usize>, Vec<Vec<RelId>>) {
    let mut depth: HashMap<RelId, usize> = HashMap::new();
    for rel in &forest.relations {
        let mut d = 0usize;
        let mut cursor = rel.parent;
        while let Some(p) = cursor {
            if let Some(&known) = depth.get(&p) {
                d += known + 1;
                break;
            }
            d += 1;
            cursor = forest.relation(p).parent;
        }
        depth.insert(rel.id, d);
    }
    let max_depth = depth.values().copied().max().unwrap_or(0);
    let mut waves: Vec<Vec<RelId>> = vec![Vec::new(); max_depth + 1];
    for rel_id in forest.bottom_up() {
        waves[depth[&rel_id]].push(rel_id);
    }
    (depth, waves)
}

/// Canonical sorted attribute list of an LHS spanning levels.
fn attr_list(levels: &[(RelId, AttrSet)]) -> Vec<(u32, usize)> {
    let mut v: Vec<(u32, usize)> = levels
        .iter()
        .flat_map(|&(r, s)| s.iter().map(move |a| (r.0, a)))
        .collect();
    v.sort_unstable();
    v
}

fn is_sub(a: &[(u32, usize)], b: &[(u32, usize)]) -> bool {
    a.iter().all(|x| b.contains(x))
}

/// Drop inter-relation FDs/keys whose LHS is a strict superset of another
/// discovered one with the same origin (and RHS, for FDs). Two partition
/// targets with comparable origin LHSs can both complete at an ancestor,
/// yielding a non-minimal cousin; the paper leaves this implicit.
/// Canonicalized LHS of one inter-relation FD: `(origin, rhs, attrs)`.
type FdSignature = (RelId, usize, Vec<(u32, usize)>);

pub(crate) fn minimize_inter(out: &mut ForestDiscovery) {
    let fd_lists: Vec<FdSignature> = out
        .inter_fds
        .iter()
        .map(|fd| (fd.origin, fd.rhs, attr_list(&fd.lhs_levels)))
        .collect();
    let mut keep_fd = vec![true; fd_lists.len()];
    for i in 0..fd_lists.len() {
        for j in 0..fd_lists.len() {
            if i == j || !keep_fd[i] {
                continue;
            }
            let (oi, ri, ref li) = fd_lists[i];
            let (oj, rj, ref lj) = fd_lists[j];
            if oi == oj
                && ri == rj
                && is_sub(lj, li)
                && (lj.len() < li.len() || j < i)
                && keep_fd[j]
            {
                keep_fd[i] = false;
            }
        }
    }
    let mut it = keep_fd.iter();
    out.inter_fds
        .retain(|_| *it.next().expect("keep mask aligned"));

    let key_lists: Vec<(RelId, Vec<(u32, usize)>)> = out
        .inter_keys
        .iter()
        .map(|k| (k.origin, attr_list(&k.lhs_levels)))
        .collect();
    let mut keep_key = vec![true; key_lists.len()];
    for i in 0..key_lists.len() {
        for j in 0..key_lists.len() {
            if i == j || !keep_key[i] {
                continue;
            }
            let (oi, ref li) = key_lists[i];
            let (oj, ref lj) = key_lists[j];
            if oi == oj && is_sub(lj, li) && (lj.len() < li.len() || j < i) && keep_key[j] {
                keep_key[i] = false;
            }
        }
    }
    let mut it = keep_key.iter();
    out.inter_keys
        .retain(|_| *it.next().expect("keep mask aligned"));
}

/// Process one relation: intra discovery, partition-target checks, target
/// creation. Returns the targets bound for the parent relation (pairs in
/// the parent's tuple space). `intra_threads > 1` precomputes each lattice
/// level's partitions on scoped workers (output is unchanged; see
/// `crate::lattice::precompute_level`).
pub(crate) fn process_relation(
    forest: &Forest,
    rel_id: RelId,
    mut incoming: Vec<PartitionTarget>,
    config: &DiscoveryConfig,
    intra_threads: usize,
) -> RelationOutput {
    let rel = forest.relation(rel_id);
    let n = rel.n_tuples();
    let has_parent = rel.parent.is_some();
    let mut out = RelationOutput {
        local: RelationDiscovery {
            rel: rel_id,
            fds: Vec::new(),
            keys: Vec::new(),
        },
        inter_fds: Vec::new(),
        inter_keys: Vec::new(),
        lattice: RunStats::default(),
        targets: TargetStats::default(),
        outgoing: Vec::new(),
    };

    if n <= 1 {
        // A 0/1-tuple relation (always including the root): the empty set
        // is a key and no FDs are checkable. Incoming targets cannot exist
        // (their pairs would have collapsed on the way in).
        out.local.keys.push(AttrSet::empty());
        debug_assert!(incoming.is_empty());
        return out;
    }

    // Self-reference guard: an incoming target that originated below child
    // relation `c` must not have its LHS extended with this relation's
    // set-valued column aggregating `c` — that cell *contains* the very
    // tuples being compared (and would render as a degenerate path).
    let excluded_col_for = |origin: RelId| -> Option<usize> {
        let mut cur = origin;
        loop {
            let r = forest.relation(cur);
            match r.parent {
                Some(p) if p == rel_id => {
                    return rel.columns.iter().position(|col| col.elem == r.pivot);
                }
                Some(p) => cur = p,
                None => return None,
            }
        }
    };

    // The paper's lines 8–10: every incoming target also propagates with no
    // local attributes (Π_∅ satisfies nothing), letting higher ancestors
    // satisfy it alone.
    if has_parent && config.inter_relation {
        for pt in &incoming {
            match update_target(
                pt,
                rel_id,
                AttrSet::empty(),
                pt.fd_target.clone(),
                pt.key_target.clone(),
                &rel.parent_of,
            ) {
                Some(up) => {
                    out.targets.propagated += 1;
                    out.outgoing.push(up);
                }
                None => out.targets.dropped_impossible += 1,
            }
        }
    }

    let excluded: Vec<Option<usize>> = incoming
        .iter()
        .map(|pt| excluded_col_for(pt.origin))
        .collect();

    let mut cache = PartitionCache::with_budget(config.cache_budget);
    cache.insert(AttrSet::empty(), Partition::universal(n));
    let columns: Vec<&[Option<u64>]> = rel.columns.iter().map(|c| c.cells.as_slice()).collect();
    for (i, col) in columns.iter().enumerate() {
        cache.insert_column(AttrSet::single(i), col);
    }

    let mut stats = RunStats::default();
    // The tiered kernel applies when no incoming targets ride on this
    // relation: target checks scan the full node partition anyway (their
    // `GroupMap` needs it), so relations with incoming targets run the
    // materializing path unchanged.
    let tiered = config.error_only_kernel && incoming.is_empty();
    let inter_targets = has_parent && config.inter_relation;
    // Lazily built tuple → group maps of the single-attribute *base*
    // partitions: a failing edge's partition target is derived from
    // `Π_{A_L}` plus the RHS base map (see `create_target_from_base`),
    // amortizing the old per-edge O(n) product group map per RHS column.
    let mut rhs_maps: Vec<Option<GroupMap>> = if tiered && inter_targets {
        (0..columns.len()).map(|_| None).collect()
    } else {
        Vec::new()
    };
    let mut current: Vec<AttrSet> = (0..columns.len()).map(AttrSet::single).collect();
    let mut level = 1usize;
    while !current.is_empty() {
        // Level k touches partitions of sizes k and k−1 only; evict the
        // rest (bar bases) at each boundary, TANE-style.
        cache.evict_below(level.saturating_sub(2));
        if intra_threads > 1 && level >= 2 {
            precompute_level(
                &mut cache,
                &current,
                &out.local.fds,
                &out.local.keys,
                &config.prune,
                false,
                config.empty_lhs,
                intra_threads,
            );
        }
        let mut next_level: Vec<AttrSet> = Vec::new();
        for &a_set in &current {
            if config.prune.key_prune && out.local.keys.iter().any(|k| k.is_subset_of(a_set)) {
                stats.nodes_key_skipped += 1;
                continue;
            }
            // candidateLHS2: rule 2 off (an intra-non-minimal edge can still
            // seed a minimal inter-relation FD).
            let cands = candidate_lhs(
                a_set,
                &out.local.fds,
                &config.prune,
                false,
                config.empty_lhs,
            );
            if a_set.len() > 1 && cands.is_empty() {
                continue;
            }
            stats.nodes_visited += 1;
            stats.max_level = stats.max_level.max(a_set.len());

            if tiered {
                // Error-only validation: exact candidate errors (O(1) from
                // either cache tier after the frontier pass), one error-only
                // node product with a first-violation early exit, Lemma 2
                // comparisons on scalars. Failing edges build their
                // partition target from the full `Π_{A_L}` plus the RHS
                // *base* group map — never from the node product.
                let known = cache.error_of(a_set);
                let (node_error, cand_errors) = match known {
                    // Node already resident (parallel precompute or a
                    // frontier pass materialized it).
                    Some(e) => (Some(e), None),
                    None => {
                        let mut errs: Vec<usize> = Vec::with_capacity(cands.len());
                        for &al in &cands {
                            errs.push(candidate_error(
                                &mut cache,
                                al,
                                &out.local.fds,
                                &config.prune,
                                false,
                                config.empty_lhs,
                            ));
                        }
                        let bound = errs.iter().copied().min();
                        let ne = match ensure_summary(&mut cache, a_set, &cands, bound) {
                            ErrorOnlyProduct::Exact(s) => Some(s.error),
                            ErrorOnlyProduct::BelowBound => None,
                        };
                        (ne, Some(errs))
                    }
                };
                if node_error == Some(0) {
                    out.local.keys.push(a_set);
                    continue;
                }
                for (idx, &al) in cands.iter().enumerate() {
                    let e = match &cand_errors {
                        Some(errs) => errs[idx],
                        None => candidate_error(
                            &mut cache,
                            al,
                            &out.local.fds,
                            &config.prune,
                            false,
                            config.empty_lhs,
                        ),
                    };
                    let rhs = a_set
                        .minus(al)
                        .max_attr()
                        .expect("al = a_set minus one attribute");
                    if node_error == Some(e) {
                        out.local.fds.push(IntraFd { lhs: al, rhs });
                    } else if inter_targets {
                        if cache.get(al).is_none() {
                            let al_cands = candidate_lhs(
                                al,
                                &out.local.fds,
                                &config.prune,
                                false,
                                config.empty_lhs,
                            );
                            ensure_full(&mut cache, al, &al_cands);
                        }
                        if rhs_maps[rhs].is_none() {
                            let base = cache
                                .get(AttrSet::single(rhs))
                                .expect("base partition resident");
                            rhs_maps[rhs] = Some(GroupMap::new(base));
                        }
                        let pl = cache.get(al).expect("ensured full");
                        let gm = rhs_maps[rhs].as_ref().expect("just built");
                        match create_target_from_base(
                            rel_id,
                            rhs,
                            al,
                            pl,
                            gm,
                            &rel.parent_of,
                            config.max_partition_targets,
                        ) {
                            CreateOutcome::Target(pt) => {
                                out.targets.created += 1;
                                out.outgoing.push(*pt);
                            }
                            CreateOutcome::Impossible => out.targets.dropped_impossible += 1,
                            CreateOutcome::Overflow => out.targets.dropped_overflow += 1,
                        }
                    }
                }
                if a_set.len() <= config.lhs_bound() {
                    let last = a_set.max_attr().expect("non-empty node");
                    for next in last + 1..columns.len() {
                        let bigger = a_set.insert(next);
                        if config.prune.key_prune
                            && out.local.keys.iter().any(|k| k.is_subset_of(bigger))
                        {
                            continue;
                        }
                        next_level.push(bigger);
                    }
                }
                continue;
            }

            ensure(&mut cache, a_set, &cands);
            let pa = cache.get(a_set).expect("ensured");
            if pa.is_key() {
                out.local.keys.push(a_set);
                // Figure 9 lines 18–25 (with the Key/FD branches un-swapped,
                // see DESIGN.md): a local key satisfies every FD target; the
                // key target is satisfied exactly when still valid.
                for (i, pt) in incoming.iter_mut().enumerate() {
                    if excluded[i].is_some_and(|c| a_set.contains(c)) {
                        continue;
                    }
                    emit_for_satisfying_set(
                        pt,
                        rel_id,
                        a_set,
                        pt.key_target.is_some(),
                        &mut out.inter_fds,
                        &mut out.inter_keys,
                    );
                }
                continue;
            }

            // Figure 9 lines 26–33: check incoming targets against Π_A.
            if !incoming.is_empty() {
                let gm = GroupMap::new(pa);
                for (i, pt) in incoming.iter_mut().enumerate() {
                    if excluded[i].is_some_and(|c| a_set.contains(c)) {
                        continue;
                    }
                    if pt.fd_target.satisfied_by(&gm) {
                        let key_sat = pt
                            .key_target
                            .as_ref()
                            .is_some_and(|kt| kt.satisfied_by(&gm));
                        emit_for_satisfying_set(
                            pt,
                            rel_id,
                            a_set,
                            key_sat,
                            &mut out.inter_fds,
                            &mut out.inter_keys,
                        );
                    } else if has_parent && config.inter_relation && !a_set.is_empty() {
                        let remaining = pt.fd_target.unsatisfied_under(&gm);
                        if remaining.len() < pt.fd_target.len() {
                            // Π_A separated some pairs: propagate the extension.
                            let rem_key =
                                pt.key_target.as_ref().map(|kt| kt.unsatisfied_under(&gm));
                            match update_target(
                                pt,
                                rel_id,
                                a_set,
                                remaining,
                                rem_key,
                                &rel.parent_of,
                            ) {
                                Some(up) => {
                                    out.targets.propagated += 1;
                                    out.outgoing.push(up);
                                }
                                None => out.targets.dropped_impossible += 1,
                            }
                        }
                    }
                }
            }

            // Figure 9 lines 34–37: edges — satisfied intra FDs or new targets.
            // Pin `Π_{a_set}` outside the cache while the candidates are
            // refolded: under a byte budget those inserts could otherwise
            // evict it mid-node.
            let pa = cache.take(a_set).expect("ensured");
            for &al in &cands {
                ensure(&mut cache, al, &[]);
                let pl = cache.get(al).expect("just ensured");
                let rhs = a_set
                    .minus(al)
                    .max_attr()
                    .expect("al = a_set minus one attribute");
                if pl.same_as_refining(&pa) {
                    out.local.fds.push(IntraFd { lhs: al, rhs });
                } else if has_parent && config.inter_relation {
                    match create_target(
                        rel_id,
                        rhs,
                        al,
                        pl,
                        &pa,
                        &rel.parent_of,
                        config.max_partition_targets,
                    ) {
                        CreateOutcome::Target(pt) => {
                            out.targets.created += 1;
                            out.outgoing.push(*pt);
                        }
                        CreateOutcome::Impossible => out.targets.dropped_impossible += 1,
                        CreateOutcome::Overflow => out.targets.dropped_overflow += 1,
                    }
                }
            }
            cache.adopt(a_set, pa);

            if a_set.len() <= config.lhs_bound() {
                let last = a_set.max_attr().expect("non-empty node");
                for next in last + 1..columns.len() {
                    let bigger = a_set.insert(next);
                    if config.prune.key_prune
                        && out.local.keys.iter().any(|k| k.is_subset_of(bigger))
                    {
                        continue;
                    }
                    next_level.push(bigger);
                }
            }
        }
        // Tiered kernel, sequential: materialize exactly the partitions the
        // next level will use (product operands; with inter-relation
        // targets, every candidate — failing edges scan their full
        // `Π_{A_L}`) while this level's operands are still resident. With
        // `intra_threads > 1` the speculative precompute materializes
        // everything it touches, so no frontier pass is needed.
        if tiered && intra_threads <= 1 {
            materialize_frontier(
                &mut cache,
                &next_level,
                &out.local.fds,
                &out.local.keys,
                &config.prune,
                false,
                config.empty_lhs,
                inter_targets,
            );
        }
        current = next_level;
        level += 1;
    }

    stats.adopt_cache(&cache.stats());
    out.lattice = stats;
    out
}

/// Emit the inter-relation FD or Key completed by attribute set `a_set` of
/// relation `rel_id` satisfying target `pt`, with per-target minimality
/// (skip if a recorded subset already satisfied it).
fn emit_for_satisfying_set(
    pt: &mut PartitionTarget,
    rel_id: RelId,
    a_set: AttrSet,
    key_satisfied: bool,
    inter_fds: &mut Vec<RawInterFd>,
    inter_keys: &mut Vec<RawInterKey>,
) {
    let fd_covered = pt.satisfied_fd.iter().any(|b| b.is_subset_of(a_set));
    if key_satisfied {
        let key_covered = pt.satisfied_key.iter().any(|b| b.is_subset_of(a_set));
        if !key_covered {
            let mut lhs_levels = pt.lhs_levels.clone();
            if !a_set.is_empty() {
                lhs_levels.push((rel_id, a_set));
            }
            inter_keys.push(RawInterKey {
                origin: pt.origin,
                lhs_levels,
            });
            pt.satisfied_key.push(a_set);
        }
        if !fd_covered {
            pt.satisfied_fd.push(a_set);
        }
    } else if !fd_covered {
        let mut lhs_levels = pt.lhs_levels.clone();
        if !a_set.is_empty() {
            lhs_levels.push((rel_id, a_set));
        }
        inter_fds.push(RawInterFd {
            origin: pt.origin,
            rhs: pt.rhs,
            lhs_levels,
        });
        pt.satisfied_fd.push(a_set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn run(xml: &str) -> (Forest, ForestDiscovery) {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let disc = discover_forest(&forest, &DiscoveryConfig::default());
        (forest, disc)
    }

    /// Paper FD 2 on a two-level document: books under stores, price
    /// determined by (store name, ISBN) but not by ISBN alone.
    #[test]
    fn finds_the_papers_inter_relation_fd() {
        let xml = "<w>\
            <store><name>Borders</name>\
              <book><isbn>1</isbn><price>10</price></book>\
              <book><isbn>2</isbn><price>20</price></book></store>\
            <store><name>Borders</name>\
              <book><isbn>1</isbn><price>10</price></book></store>\
            <store><name>WHSmith</name>\
              <book><isbn>1</isbn><price>12</price></book></store>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/store/book".parse().unwrap())
            .unwrap();
        let store = forest
            .relation_by_path(&"/w/store".parse().unwrap())
            .unwrap();
        // {./isbn} → ./price w.r.t. C_book fails (prices 10 vs 12)…
        let book_rel = forest.relation(book);
        let isbn = book_rel
            .column_by_rel_path(&"./isbn".parse().unwrap())
            .unwrap();
        let price = book_rel
            .column_by_rel_path(&"./price".parse().unwrap())
            .unwrap();
        let book_disc = &disc.relations[book.index()];
        assert!(!book_disc
            .fds
            .iter()
            .any(|fd| fd.rhs == price && fd.lhs == AttrSet::single(isbn)));
        // …but {../name, ./isbn} → ./price holds as an inter-relation FD.
        let store_rel = forest.relation(store);
        let name = store_rel
            .column_by_rel_path(&"./name".parse().unwrap())
            .unwrap();
        let found = disc.inter_fds.iter().any(|fd| {
            fd.origin == book
                && fd.rhs == price
                && fd
                    .lhs_levels
                    .iter()
                    .any(|&(r, a)| r == book && a.contains(isbn))
                && fd
                    .lhs_levels
                    .iter()
                    .any(|&(r, a)| r == store && a.contains(name))
        });
        assert!(found, "missing FD2-style inter FD: {:?}", disc.inter_fds);
    }

    #[test]
    fn intra_fds_found_per_relation() {
        let xml = "<w>\
            <book><isbn>1</isbn><title>A</title></book>\
            <book><isbn>1</isbn><title>A</title></book>\
            <book><isbn>2</isbn><title>B</title></book>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/book".parse().unwrap())
            .unwrap();
        let rel = forest.relation(book);
        let isbn = rel.column_by_rel_path(&"./isbn".parse().unwrap()).unwrap();
        let title = rel.column_by_rel_path(&"./title".parse().unwrap()).unwrap();
        let fds = &disc.relations[book.index()].fds;
        assert!(fds.contains(&IntraFd {
            lhs: AttrSet::single(isbn),
            rhs: title
        }));
        assert!(fds.contains(&IntraFd {
            lhs: AttrSet::single(title),
            rhs: isbn
        }));
    }

    #[test]
    fn intra_keys_found_per_relation() {
        let xml = "<w>\
            <book><isbn>1</isbn><title>A</title></book>\
            <book><isbn>2</isbn><title>A</title></book>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/book".parse().unwrap())
            .unwrap();
        let rel = forest.relation(book);
        let isbn = rel.column_by_rel_path(&"./isbn".parse().unwrap()).unwrap();
        let keys = &disc.relations[book.index()].keys;
        assert!(keys.contains(&AttrSet::single(isbn)));
    }

    /// An inter-relation key: (store name, isbn) identifies books. The
    /// local pair (isbn, price) must not itself be unique, otherwise the
    /// key node absorbs the edge and no partition target is created (a
    /// deliberate property of Figure 8 line 11 — such missed keys can
    /// never indicate redundancy, see DESIGN.md).
    #[test]
    fn finds_inter_relation_keys() {
        let xml = "<w>\
            <store><name>X</name>\
              <book><isbn>1</isbn><price>10</price></book>\
              <book><isbn>2</isbn><price>20</price></book></store>\
            <store><name>Y</name>\
              <book><isbn>1</isbn><price>10</price></book></store>\
            <store><name>Z</name>\
              <book><isbn>1</isbn><price>12</price></book></store>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/store/book".parse().unwrap())
            .unwrap();
        assert!(
            disc.inter_keys.iter().any(|k| k.origin == book),
            "expected an inter-relation key for C_book: {:?}",
            disc.inter_keys
        );
    }

    #[test]
    fn inter_relation_can_be_disabled() {
        let xml = "<w>\
            <store><name>A</name><book><isbn>1</isbn><price>10</price></book>\
              <book><isbn>2</isbn><price>11</price></book></store>\
            <store><name>B</name><book><isbn>1</isbn><price>12</price></book></store>\
            </w>";
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let config = DiscoveryConfig {
            inter_relation: false,
            ..Default::default()
        };
        let disc = discover_forest(&forest, &config);
        assert!(disc.inter_fds.is_empty());
        assert!(disc.inter_keys.is_empty());
        assert_eq!(disc.target_stats.created, 0);
    }

    /// FD 3: ISBN determines the *set* of authors, via the set-valued
    /// column — undiscoverable under the flat notions.
    #[test]
    fn set_element_fd_is_discovered() {
        let xml = "<w>\
            <book><isbn>1</isbn><a>R</a><a>G</a></book>\
            <book><isbn>1</isbn><a>G</a><a>R</a></book>\
            <book><isbn>2</isbn><a>R</a></book>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/book".parse().unwrap())
            .unwrap();
        let rel = forest.relation(book);
        let isbn = rel.column_by_rel_path(&"./isbn".parse().unwrap()).unwrap();
        let a_set = rel.column_by_rel_path(&"./a".parse().unwrap()).unwrap();
        let fds = &disc.relations[book.index()].fds;
        assert!(
            fds.contains(&IntraFd {
                lhs: AttrSet::single(isbn),
                rhs: a_set
            }),
            "FD 3 (isbn → author set) missing: {fds:?}"
        );
    }

    #[test]
    fn root_relation_reports_trivial_key_only() {
        let (forest, disc) = run("<w><b><x>1</x></b><b><x>2</x></b></w>");
        let root = &disc.relations[forest.root().index()];
        assert_eq!(root.keys, vec![AttrSet::empty()]);
        assert!(root.fds.is_empty());
    }

    #[test]
    fn minimize_inter_drops_supersets_and_duplicates() {
        let fd = |attrs: &[(u32, usize)]| RawInterFd {
            origin: RelId(3),
            rhs: 0,
            lhs_levels: attrs
                .iter()
                .map(|&(r, a)| (RelId(r), AttrSet::single(a)))
                .collect(),
        };
        let mut disc = ForestDiscovery {
            relations: Vec::new(),
            inter_fds: vec![
                fd(&[(3, 1), (2, 0)]), // {b1, s0}
                fd(&[(2, 0)]),         // {s0} ⊂ first → first dropped
                fd(&[(3, 1), (2, 0)]), // duplicate of first → dropped
                fd(&[(3, 2), (2, 1)]), // incomparable → kept
            ],
            inter_keys: vec![
                RawInterKey {
                    origin: RelId(3),
                    lhs_levels: vec![(RelId(2), AttrSet::single(0))],
                },
                RawInterKey {
                    origin: RelId(3),
                    lhs_levels: vec![
                        (RelId(3), AttrSet::single(1)),
                        (RelId(2), AttrSet::single(0)),
                    ],
                },
            ],
            lattice_stats: RunStats::default(),
            target_stats: TargetStats::default(),
        };
        minimize_inter(&mut disc);
        assert_eq!(disc.inter_fds.len(), 2, "{:?}", disc.inter_fds);
        assert!(disc.inter_fds.contains(&fd(&[(2, 0)])));
        assert!(disc.inter_fds.contains(&fd(&[(3, 2), (2, 1)])));
        assert_eq!(disc.inter_keys.len(), 1, "superset key dropped");
    }

    #[test]
    fn attr_list_is_canonical() {
        let levels = vec![
            (RelId(3), AttrSet::from_iter([2, 0])),
            (RelId(1), AttrSet::single(5)),
        ];
        assert_eq!(attr_list(&levels), vec![(1, 5), (3, 0), (3, 2)]);
    }

    /// Different RHS must never cross-minimize.
    #[test]
    fn minimize_inter_respects_rhs() {
        let mut disc = ForestDiscovery {
            relations: Vec::new(),
            inter_fds: vec![
                RawInterFd {
                    origin: RelId(3),
                    rhs: 0,
                    lhs_levels: vec![(RelId(2), AttrSet::single(0))],
                },
                RawInterFd {
                    origin: RelId(3),
                    rhs: 1,
                    lhs_levels: vec![
                        (RelId(3), AttrSet::single(2)),
                        (RelId(2), AttrSet::single(0)),
                    ],
                },
            ],
            inter_keys: Vec::new(),
            lattice_stats: RunStats::default(),
            target_stats: TargetStats::default(),
        };
        minimize_inter(&mut disc);
        assert_eq!(disc.inter_fds.len(), 2);
    }

    /// Parallel mode must produce byte-identical results.
    #[test]
    fn parallel_equals_sequential() {
        let xml = "<w>\
            <state><sname>WA</sname>\
              <store><book><isbn>1</isbn><price>10</price></book>\
                <book><isbn>2</isbn><price>30</price></book>\
                <mag><m>1</m></mag><mag><m>2</m></mag></store>\
              <store><book><isbn>1</isbn><price>10</price></book>\
                <mag><m>1</m></mag></store>\
            </state>\
            <state><sname>KY</sname>\
              <store><book><isbn>1</isbn><price>12</price></book>\
                <mag><m>3</m></mag></store>\
            </state>\
            </w>";
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let seq = discover_forest(&forest, &DiscoveryConfig::default());
        let par = discover_forest(
            &forest,
            &DiscoveryConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(seq.inter_fds, par.inter_fds);
        assert_eq!(seq.inter_keys, par.inter_keys);
        for (a, b) in seq.relations.iter().zip(par.relations.iter()) {
            assert_eq!(a.rel, b.rel);
            assert_eq!(a.fds, b.fds);
            assert_eq!(a.keys, b.keys);
        }
        assert_eq!(seq.target_stats, par.target_stats);
    }

    /// Three levels: an FD that needs the grandparent's attribute.
    #[test]
    fn grandparent_attributes_can_complete_an_fd() {
        // price is determined by (state name, isbn): within a state all
        // stores sell at the same price, across states prices differ.
        let xml = "<w>\
            <state><sname>WA</sname>\
              <store><book><isbn>1</isbn><price>10</price></book>\
                <book><isbn>2</isbn><price>30</price></book></store>\
              <store><book><isbn>1</isbn><price>10</price></book></store>\
            </state>\
            <state><sname>KY</sname>\
              <store><book><isbn>1</isbn><price>12</price></book></store>\
            </state>\
            </w>";
        let (forest, disc) = run(xml);
        let book = forest
            .relation_by_path(&"/w/state/store/book".parse().unwrap())
            .unwrap();
        let state = forest
            .relation_by_path(&"/w/state".parse().unwrap())
            .unwrap();
        let found = disc
            .inter_fds
            .iter()
            .any(|fd| fd.origin == book && fd.lhs_levels.iter().any(|&(r, _)| r == state));
        assert!(
            found,
            "state-level completion missing: {:?}",
            disc.inter_fds
        );
    }
}
