//! Public FD and Key types (Definitions 7 and 8).

use std::fmt;

use xfd_xml::Path;

/// Whether an FD's LHS stays inside one relation of the hierarchical
/// representation or spans ancestor relations (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FdScope {
    /// LHS and RHS columns live in the pivot's own relation.
    IntraRelation,
    /// The LHS reaches into ancestor relations (e.g. `../contact/name`).
    InterRelation,
}

/// An XML functional dependency `(C_p, LHS, RHS)` — Definition 7 — written
/// `{P_l1, ..., P_ln} -> P_r w.r.t. C_p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xfd {
    /// The pivot path identifying the tuple class `C_p`.
    pub tuple_class: Path,
    /// LHS paths, relative to the pivot.
    pub lhs: Vec<Path>,
    /// RHS path, relative to the pivot.
    pub rhs: Path,
    /// Intra- or inter-relation.
    pub scope: FdScope,
}

impl Xfd {
    /// Does `self`'s LHS (as a set of paths) contain `other`'s, with equal
    /// tuple class and RHS? Then `self` is implied by (non-minimal w.r.t.)
    /// `other`.
    pub fn is_weakening_of(&self, other: &Xfd) -> bool {
        self.tuple_class == other.tuple_class
            && self.rhs == other.rhs
            && other.lhs.iter().all(|p| self.lhs.contains(p))
    }
}

impl fmt::Display for Xfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(
            f,
            "}} -> {} w.r.t. C_{}",
            self.rhs,
            class_name(&self.tuple_class)
        )
    }
}

/// An XML key `(C_p, LHS)` — Definition 8: the LHS functionally determines
/// `./@key`, i.e. uniquely identifies each tuple of the class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlKey {
    /// The pivot path identifying the tuple class.
    pub tuple_class: Path,
    /// LHS paths, relative to the pivot.
    pub lhs: Vec<Path>,
    /// Intra- or inter-relation.
    pub scope: FdScope,
}

impl fmt::Display for XmlKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key(C_{}: {{", class_name(&self.tuple_class))?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}})")
    }
}

/// Abbreviated tuple-class name: the last label of the pivot path (the
/// paper writes `C_book` for `C_/warehouse/state/store/book`).
pub fn class_name(pivot: &Path) -> String {
    pivot
        .last_label()
        .map(str::to_string)
        .unwrap_or_else(|| pivot.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn fd_displays_like_the_paper() {
        let fd = Xfd {
            tuple_class: p("/warehouse/state/store/book"),
            lhs: vec![p("../contact/name"), p("./ISBN")],
            rhs: p("./price"),
            scope: FdScope::InterRelation,
        };
        assert_eq!(
            fd.to_string(),
            "{../contact/name, ./ISBN} -> ./price w.r.t. C_book"
        );
    }

    #[test]
    fn key_displays_with_class() {
        let k = XmlKey {
            tuple_class: p("/w/book"),
            lhs: vec![p("./ISBN")],
            scope: FdScope::IntraRelation,
        };
        assert_eq!(k.to_string(), "Key(C_book: {./ISBN})");
    }

    #[test]
    fn weakening_detection() {
        let strong = Xfd {
            tuple_class: p("/w/book"),
            lhs: vec![p("./ISBN")],
            rhs: p("./title"),
            scope: FdScope::IntraRelation,
        };
        let weak = Xfd {
            tuple_class: p("/w/book"),
            lhs: vec![p("./ISBN"), p("./price")],
            rhs: p("./title"),
            scope: FdScope::IntraRelation,
        };
        assert!(weak.is_weakening_of(&strong));
        assert!(!strong.is_weakening_of(&weak));
        assert!(strong.is_weakening_of(&strong));
    }
}
