//! Column-level data profiling over the relation forest — the summary
//! statistics dependency miners conventionally ship (distinct counts,
//! null rates, uniqueness, value-length ranges). Feeds the CLI's
//! `profile` subcommand and helps users pick `max_lhs`/support knobs.

use std::collections::HashSet;
use std::fmt::Write as _;

use xfd_partition::{Partition, ProductScratch};
use xfd_relation::{ColumnKind, Forest};

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Relation (tuple class) label.
    pub relation: String,
    /// Column name.
    pub column: String,
    /// Cell semantics.
    pub kind: ColumnKind,
    /// Total tuples.
    pub rows: usize,
    /// Non-⊥ cells.
    pub non_null: usize,
    /// Distinct non-⊥ values.
    pub distinct: usize,
    /// Is the column unique over its non-⊥ cells (a key candidate)?
    pub unique: bool,
    /// Shortest/longest string value (simple columns only).
    pub len_range: Option<(usize, usize)>,
    /// Heap bytes of the column's stripped base partition `Π_{column}` —
    /// the resident floor the discovery cache pays per column, and the
    /// yardstick for picking `--cache-budget`. Unique columns strip to a
    /// near-empty partition (only the leading offset remains).
    pub partition_bytes: usize,
}

impl ColumnProfile {
    /// Null rate in `[0, 1]`.
    pub fn null_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            1.0 - self.non_null as f64 / self.rows as f64
        }
    }

    /// Distinctness (distinct / non-null) in `[0, 1]`; 1.0 = unique.
    pub fn distinctness(&self) -> f64 {
        if self.non_null == 0 {
            1.0
        } else {
            self.distinct as f64 / self.non_null as f64
        }
    }
}

/// Profile every column of the forest.
pub fn profile(forest: &Forest) -> Vec<ColumnProfile> {
    let mut out = Vec::new();
    let mut scratch = ProductScratch::new();
    for rel in &forest.relations {
        for col in &rel.columns {
            let mut distinct: HashSet<u64> = HashSet::new();
            let mut non_null = 0usize;
            let mut len_range: Option<(usize, usize)> = None;
            for cell in col.cells.iter().flatten() {
                non_null += 1;
                distinct.insert(*cell);
                if col.kind == ColumnKind::Simple {
                    let len = forest.dictionary.resolve_str(*cell).len();
                    len_range = Some(match len_range {
                        None => (len, len),
                        Some((lo, hi)) => (lo.min(len), hi.max(len)),
                    });
                }
            }
            out.push(ColumnProfile {
                relation: rel.name.clone(),
                column: col.name.clone(),
                kind: col.kind,
                rows: rel.n_tuples(),
                non_null,
                distinct: distinct.len(),
                unique: distinct.len() == non_null,
                len_range,
                partition_bytes: Partition::from_column_in(&col.cells, &mut scratch).heap_bytes(),
            });
        }
    }
    out
}

/// Render profiles as an aligned text table.
pub fn render(profiles: &[ColumnProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<20} {:>7} {:>9} {:>9} {:>7} {:>7} {:>8}  len",
        "relation", "column", "rows", "non-null", "distinct", "null%", "uniq", "Πbytes"
    );
    for p in profiles {
        let len = match p.len_range {
            Some((lo, hi)) if lo == hi => format!("{lo}"),
            Some((lo, hi)) => format!("{lo}-{hi}"),
            None => "-".into(),
        };
        let _ = writeln!(
            out,
            "{:<16} {:<20} {:>7} {:>9} {:>9} {:>6.1}% {:>7} {:>8}  {}",
            p.relation,
            p.column,
            p.rows,
            p.non_null,
            p.distinct,
            p.null_rate() * 100.0,
            if p.unique { "yes" } else { "no" },
            p.partition_bytes,
            len
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn profiles(xml: &str) -> Vec<ColumnProfile> {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        profile(&forest)
    }

    #[test]
    fn counts_and_rates() {
        let ps = profiles("<w><b><i>1</i><t>A</t></b><b><i>1</i></b><b><i>2</i><t>Bee</t></b></w>");
        let i = ps.iter().find(|p| p.column == "i").unwrap();
        assert_eq!(i.rows, 3);
        assert_eq!(i.non_null, 3);
        assert_eq!(i.distinct, 2);
        assert!(!i.unique);
        assert_eq!(i.null_rate(), 0.0);
        let t = ps.iter().find(|p| p.column == "t").unwrap();
        assert_eq!(t.non_null, 2);
        assert!((t.null_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!(t.unique);
        assert_eq!(t.len_range, Some((1, 3)));
        // `i` has a duplicated value, so its base partition is non-empty;
        // the unique `t` strips to (almost) nothing.
        assert!(i.partition_bytes > t.partition_bytes);
    }

    #[test]
    fn set_columns_are_profiled_too() {
        let ps = profiles("<w><b><a>x</a><a>y</a></b><b><a>y</a><a>x</a></b><b><a>z</a></b></w>");
        let a = ps
            .iter()
            .find(|p| p.column == "a" && p.kind == ColumnKind::SetValue)
            .unwrap();
        assert_eq!(a.rows, 3);
        assert_eq!(a.distinct, 2, "{{x,y}} shared by two books, {{z}} by one");
        assert_eq!(a.len_range, None, "set cells have no string length");
    }

    #[test]
    fn render_aligns_and_includes_every_column() {
        let ps = profiles("<w><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>");
        let text = render(&ps);
        assert!(text.lines().count() > ps.len());
        assert!(text.contains("uniq"));
        assert!(text.contains("100.0%") || text.contains("0.0%"));
    }

    #[test]
    fn empty_columns_have_full_null_rate() {
        // Heterogeneous: second book lacks `t` entirely.
        let ps = profiles("<w><b><t>A</t></b><b><t>B</t></b><b><i>1</i></b></w>");
        let i = ps.iter().find(|p| p.column == "i").unwrap();
        assert!((i.null_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(i.distinctness(), 1.0);
    }
}
