//! Conversion of raw (relation, attribute) results into path-based
//! [`Xfd`]/[`XmlKey`] values, and the *interesting XML FD* filters of
//! Definitions 9–10.
//!
//! By construction of the hierarchical representation most filters are
//! already guaranteed — every non-root relation's pivot path is repeatable
//! (essential tuple class), and all columns except a simple pivot's own `.`
//! column denote proper descendants of the pivot. What remains:
//!
//! * FDs pivoted on the root relation are dropped (not an essential tuple
//!   class; also vacuous, the relation has one tuple);
//! * FDs whose RHS is the pivot itself (`.`) are dropped (Definition 10
//!   requires the RHS to match descendant nodes of the pivot);
//! * trivially, `RHS ∈ LHS` never occurs (the lattice never tests it).

use xfd_partition::AttrSet;
use xfd_relation::{Forest, RelId};
use xfd_xml::Path;

use crate::fd::{FdScope, Xfd, XmlKey};
use crate::lattice::IntraFd;
use crate::xfd::{ForestDiscovery, RawInterFd, RawInterKey};

/// Resolve one column of `rel` to a path relative to `origin`'s pivot.
fn column_path(forest: &Forest, origin: RelId, rel: RelId, col: usize) -> Path {
    let origin_pivot = &forest.relation(origin).pivot_path;
    let r = forest.relation(rel);
    let abs = r.columns[col]
        .rel_path
        .to_absolute(&r.pivot_path)
        .expect("column rel paths never climb past the root");
    abs.relative_to(origin_pivot)
}

/// Convert LHS levels into relative paths (origin-relation attributes
/// first, then ancestors).
fn lhs_paths(forest: &Forest, origin: RelId, levels: &[(RelId, AttrSet)]) -> Vec<Path> {
    let mut out = Vec::new();
    for &(rel, attrs) in levels {
        for a in attrs.iter() {
            out.push(column_path(forest, origin, rel, a));
        }
    }
    out
}

/// Convert an intra-relation FD of `rel` into an [`Xfd`].
pub fn intra_fd_to_xfd(forest: &Forest, rel: RelId, fd: &IntraFd) -> Xfd {
    Xfd {
        tuple_class: forest.relation(rel).pivot_path.clone(),
        lhs: lhs_paths(forest, rel, &[(rel, fd.lhs)]),
        rhs: column_path(forest, rel, rel, fd.rhs),
        scope: FdScope::IntraRelation,
    }
}

/// Convert an intra-relation key of `rel` into an [`XmlKey`].
pub fn intra_key_to_key(forest: &Forest, rel: RelId, lhs: AttrSet) -> XmlKey {
    XmlKey {
        tuple_class: forest.relation(rel).pivot_path.clone(),
        lhs: lhs_paths(forest, rel, &[(rel, lhs)]),
        scope: FdScope::IntraRelation,
    }
}

/// Convert a raw inter-relation FD into an [`Xfd`].
pub fn inter_fd_to_xfd(forest: &Forest, fd: &RawInterFd) -> Xfd {
    Xfd {
        tuple_class: forest.relation(fd.origin).pivot_path.clone(),
        lhs: lhs_paths(forest, fd.origin, &fd.lhs_levels),
        rhs: column_path(forest, fd.origin, fd.origin, fd.rhs),
        scope: FdScope::InterRelation,
    }
}

/// Convert a raw inter-relation key into an [`XmlKey`].
pub fn inter_key_to_key(forest: &Forest, key: &RawInterKey) -> XmlKey {
    XmlKey {
        tuple_class: forest.relation(key.origin).pivot_path.clone(),
        lhs: lhs_paths(forest, key.origin, &key.lhs_levels),
        scope: FdScope::InterRelation,
    }
}

/// Is this FD *interesting* per Definition 10 (given that it comes from
/// our representation, only the root-pivot and RHS-is-pivot checks bite)?
pub fn fd_is_interesting(forest: &Forest, origin: RelId, rhs_col: usize) -> bool {
    let rel = forest.relation(origin);
    if rel.parent.is_none() {
        return false; // root tuple class is not essential
    }
    !rel.columns[rhs_col].rel_path.is_empty() // RHS must not be the pivot `.`
}

/// Split all discovered FDs/keys into interesting and uninteresting,
/// converted to path form.
pub struct Classified {
    /// Interesting FDs (Definition 10).
    pub fds: Vec<Xfd>,
    /// Keys of essential tuple classes.
    pub keys: Vec<XmlKey>,
    /// FDs filtered out by Definition 10 (kept only on request).
    pub uninteresting_fds: Vec<Xfd>,
    /// Keys of non-essential classes (root) or with pivot `.` anomalies.
    pub uninteresting_keys: Vec<XmlKey>,
}

/// Classify a [`ForestDiscovery`].
pub fn classify(forest: &Forest, disc: &ForestDiscovery, keep_uninteresting: bool) -> Classified {
    let mut out = Classified {
        fds: Vec::new(),
        keys: Vec::new(),
        uninteresting_fds: Vec::new(),
        uninteresting_keys: Vec::new(),
    };
    for rd in &disc.relations {
        let essential = forest.relation(rd.rel).parent.is_some();
        for fd in &rd.fds {
            let xfd = intra_fd_to_xfd(forest, rd.rel, fd);
            if essential && fd_is_interesting(forest, rd.rel, fd.rhs) {
                out.fds.push(xfd);
            } else if keep_uninteresting {
                out.uninteresting_fds.push(xfd);
            }
        }
        for &k in &rd.keys {
            let key = intra_key_to_key(forest, rd.rel, k);
            if essential {
                out.keys.push(key);
            } else if keep_uninteresting {
                out.uninteresting_keys.push(key);
            }
        }
    }
    for fd in &disc.inter_fds {
        let xfd = inter_fd_to_xfd(forest, fd);
        if fd_is_interesting(forest, fd.origin, fd.rhs) {
            out.fds.push(xfd);
        } else if keep_uninteresting {
            out.uninteresting_fds.push(xfd);
        }
    }
    for key in &disc.inter_keys {
        out.keys.push(inter_key_to_key(forest, key));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::xfd::discover_forest;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn classified(xml: &str) -> (Forest, Classified) {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let disc = discover_forest(&forest, &DiscoveryConfig::default());
        let c = classify(&forest, &disc, true);
        (forest, c)
    }

    #[test]
    fn paths_render_relative_to_the_tuple_class() {
        let (_, c) = classified(
            "<w>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book>\
               <book><isbn>2</isbn><price>20</price></book></store>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book></store>\
             <store><name>WHSmith</name><book><isbn>1</isbn><price>12</price></book></store>\
             </w>",
        );
        let rendered: Vec<String> = c.fds.iter().map(Xfd::to_string).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s == "{./isbn, ../name} -> ./price w.r.t. C_book"),
            "got: {rendered:#?}"
        );
    }

    #[test]
    fn root_class_results_are_uninteresting() {
        let (_, c) = classified("<w><v>1</v><b><x>1</x></b><b><x>1</x></b></w>");
        // Root-level FDs/keys never appear among interesting results.
        assert!(c.fds.iter().all(|fd| fd.tuple_class.to_string() != "/w"));
        assert!(c.keys.iter().all(|k| k.tuple_class.to_string() != "/w"));
        // But the root's trivial key is retained as uninteresting.
        assert!(c
            .uninteresting_keys
            .iter()
            .any(|k| k.tuple_class.to_string() == "/w"));
    }

    #[test]
    fn set_fd_renders_with_the_set_path() {
        let (_, c) = classified(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a></book>\
             <book><isbn>1</isbn><a>G</a><a>R</a></book>\
             <book><isbn>2</isbn><a>R</a></book>\
             </w>",
        );
        let rendered: Vec<String> = c.fds.iter().map(Xfd::to_string).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s == "{./isbn} -> ./a w.r.t. C_book"),
            "got: {rendered:#?}"
        );
    }

    #[test]
    fn nested_set_columns_render_with_full_relative_path() {
        // A set element under a complex element: the set column's path
        // keeps the intermediate step (./c/ph).
        let (_, c) = classified(
            "<r><s><c><ph>1</ph><ph>2</ph></c><id>a</id></s>\
               <s><c><ph>2</ph><ph>1</ph></c><id>a</id></s>\
               <s><c><ph>3</ph></c><id>b</id></s></r>",
        );
        let rendered: Vec<String> = c.fds.iter().map(Xfd::to_string).collect();
        assert!(
            rendered.iter().any(|s| s == "{./id} -> ./c/ph w.r.t. C_s"),
            "got: {rendered:#?}"
        );
    }

    #[test]
    fn inter_keys_render_with_ancestor_paths() {
        let (_, c) = classified(
            "<w>\
             <store><name>X</name>\
               <book><i>1</i><p>10</p></book><book><i>2</i><p>20</p></book></store>\
             <store><name>Y</name><book><i>1</i><p>10</p></book></store>\
             <store><name>Z</name><book><i>1</i><p>12</p></book></store>\
             </w>",
        );
        let keys: Vec<String> = c.keys.iter().map(XmlKey::to_string).collect();
        assert!(
            keys.iter().any(|k| k == "Key(C_book: {./i, ../name})"),
            "got: {keys:#?}"
        );
    }

    #[test]
    fn fd_scope_is_tracked() {
        let (_, c) = classified(
            "<w>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book>\
               <book><isbn>2</isbn><price>20</price></book></store>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book></store>\
             <store><name>WHSmith</name><book><isbn>1</isbn><price>12</price></book></store>\
             </w>",
        );
        assert!(c
            .fds
            .iter()
            .any(|f| f.scope == crate::fd::FdScope::InterRelation));
        assert!(c
            .fds
            .iter()
            .any(|f| f.scope == crate::fd::FdScope::IntraRelation));
    }

    #[test]
    fn keys_render_for_essential_classes() {
        let (_, c) = classified("<w><book><isbn>1</isbn></book><book><isbn>2</isbn></book></w>");
        let rendered: Vec<String> = c.keys.iter().map(XmlKey::to_string).collect();
        assert!(
            rendered.iter().any(|s| s == "Key(C_book: {./isbn})"),
            "got: {rendered:#?}"
        );
    }
}
