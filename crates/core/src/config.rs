//! Discovery configuration.

use xfd_relation::EncodeConfig;

/// Which lattice pruning rules are active (Section 4.2); the ablation
/// experiment toggles them to measure their value.
#[derive(Debug, Clone, Copy)]
pub struct PruneConfig {
    /// Rule 1: drop edge `(XY, XYA)` once `X → A` is satisfied.
    pub rule1: bool,
    /// Rule 2 (repaired, see DESIGN.md): drop a candidate LHS that contains
    /// an attribute derivable from a discovered FD. Applied only to pure
    /// intra-relation runs (the paper's `candidateLHS2` omits it).
    pub rule2: bool,
    /// Rule 3: stop expanding supersets of discovered keys.
    pub key_prune: bool,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            rule1: true,
            rule2: true,
            key_prune: true,
        }
    }
}

/// Configuration of the full discovery pipeline.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Encoding of the hierarchical representation (set-valued and complex
    /// columns).
    pub encode: EncodeConfig,
    /// Bound on LHS size (lattice level); `None` = unbounded.
    pub max_lhs_size: Option<usize>,
    /// Discover inter-relation FDs/keys via partition targets. Turning this
    /// off yields the intra-relation-only subset (for the ablation).
    pub inter_relation: bool,
    /// Consider empty-LHS edges (`∅ → a`), discovering constant columns and
    /// enabling inter-relation FDs whose LHS has no origin-relation
    /// attribute (e.g. `{../contact/name} -> ./price w.r.t. C_book`).
    pub empty_lhs: bool,
    /// Pruning rules.
    pub prune: PruneConfig,
    /// Cap on live partition targets per relation (guards against
    /// pathological blow-up; overflow is counted in the report).
    pub max_partition_targets: usize,
    /// Keep FDs/keys that Definition 10 classifies as uninteresting
    /// (reported separately for inspection).
    pub keep_uninteresting: bool,
    /// Process independent relations (same relation-tree depth) on scoped
    /// worker threads, and precompute each relation's per-level partitions
    /// on workers. Results are identical to the sequential run.
    pub parallel: bool,
    /// Worker-thread count for the parallel passes: `0` = auto-detect from
    /// the machine, `n` = exactly `n`. Ignored unless [`Self::parallel`].
    pub threads: usize,
    /// Byte budget for resident partitions per relation pass (`None` =
    /// unbounded). Evicted partitions are refolded from the base
    /// single-attribute partitions on demand, so results never change.
    pub cache_budget: Option<usize>,
    /// Use the tiered partition kernel: validation-only lattice nodes are
    /// answered by the error-only product (with early exit) and stored as
    /// 16-byte summaries; full CSR partitions are materialized only for
    /// next-level operands. Results are identical either way — this is the
    /// escape hatch (`--no-error-only-kernel`) for A/B runs.
    pub error_only_kernel: bool,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            encode: EncodeConfig::default(),
            max_lhs_size: None,
            inter_relation: true,
            empty_lhs: true,
            prune: PruneConfig::default(),
            max_partition_targets: 100_000,
            keep_uninteresting: false,
            parallel: false,
            threads: 0,
            cache_budget: None,
            error_only_kernel: true,
        }
    }
}

impl DiscoveryConfig {
    /// Effective LHS-size bound as a number (∞ → `usize::MAX`).
    pub fn lhs_bound(&self) -> usize {
        self.max_lhs_size.unwrap_or(usize::MAX)
    }

    /// Worker threads the parallel passes may use: `1` when parallelism is
    /// off, otherwise the configured count (`0` → machine parallelism).
    pub fn effective_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        crate::intra::resolve_threads(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_everything() {
        let c = DiscoveryConfig::default();
        assert!(c.inter_relation);
        assert!(c.empty_lhs);
        assert!(c.prune.rule1 && c.prune.rule2 && c.prune.key_prune);
        assert_eq!(c.lhs_bound(), usize::MAX);
        assert!(!c.parallel);
        assert_eq!(c.effective_threads(), 1, "sequential unless parallel");
        assert_eq!(c.cache_budget, None);
        assert!(c.error_only_kernel, "tiered kernel is the default");
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let c = DiscoveryConfig {
            parallel: true,
            threads: 3,
            ..Default::default()
        };
        assert_eq!(c.effective_threads(), 3);
        let auto = DiscoveryConfig {
            parallel: true,
            threads: 0,
            ..Default::default()
        };
        assert!(auto.effective_threads() >= 1);
    }

    #[test]
    fn lhs_bound_reflects_setting() {
        let c = DiscoveryConfig {
            max_lhs_size: Some(3),
            ..Default::default()
        };
        assert_eq!(c.lhs_bound(), 3);
    }
}
