//! The Section 4.1 baseline: flatten the document into the single relation
//! of tree tuples (Figure 5) and run a relational, TANE-style FD discovery
//! over it.
//!
//! The experiments use this to reproduce the paper's two criticisms:
//!
//! 1. the flat relation's width equals the *entire* schema and its row
//!    count multiplies across parallel set elements, so the exponential
//!    lattice and the partition sizes blow up together;
//! 2. set-element FDs (Constraints 3–4) are not expressible — the baseline
//!    reports FD 3 as *violated* (two authors of one book share an ISBN
//!    but differ in value), exactly the semantic failure of Section 2.3.

use std::fmt;
use std::time::{Duration, Instant};

use xfd_partition::AttrSet;
use xfd_relation::{flatten, FlatError, FlatRelation};
use xfd_schema::Schema;
use xfd_xml::DataTree;

use crate::intra::{discover_intra, IntraOptions, RunStats};

/// Baseline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Unnesting exceeded the row cap.
    Flatten(FlatError),
    /// The schema has more than 128 elements — beyond the bitset the
    /// lattice uses (and far beyond where the baseline is practical).
    TooWide {
        /// Number of schema elements.
        columns: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Flatten(e) => write!(f, "{e}"),
            BaselineError::TooWide { columns } => {
                write!(
                    f,
                    "flat relation has {columns} columns; the baseline supports at most 64"
                )
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// A baseline FD in schema-path form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatFd {
    /// LHS absolute schema paths.
    pub lhs: Vec<String>,
    /// RHS absolute schema path.
    pub rhs: String,
}

impl fmt::Display for FlatFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}} -> {}", self.lhs.join(", "), self.rhs)
    }
}

/// Output of the baseline run.
#[derive(Debug)]
pub struct BaselineResult {
    /// Minimal FDs over the flat relation.
    pub fds: Vec<FlatFd>,
    /// Minimal keys (as path lists).
    pub keys: Vec<Vec<String>>,
    /// Rows in the flat relation.
    pub rows: usize,
    /// Columns in the flat relation.
    pub columns: usize,
    /// Lattice counters.
    pub stats: RunStats,
    /// Time spent flattening.
    pub flatten_time: Duration,
    /// Time spent in discovery.
    pub discover_time: Duration,
}

/// Options for the baseline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineOptions {
    /// Row cap for unnesting.
    pub max_rows: usize,
    /// LHS size bound.
    pub max_lhs: usize,
    /// Consider `∅ → a` edges.
    pub empty_lhs: bool,
}

impl Default for BaselineOptions {
    fn default() -> Self {
        BaselineOptions {
            max_rows: 1_000_000,
            max_lhs: usize::MAX,
            empty_lhs: true,
        }
    }
}

/// Run the flat baseline end to end.
pub fn discover_flat(
    tree: &DataTree,
    schema: &Schema,
    options: &BaselineOptions,
) -> Result<BaselineResult, BaselineError> {
    let t0 = Instant::now();
    let flat: FlatRelation =
        flatten(tree, schema, options.max_rows).map_err(BaselineError::Flatten)?;
    let flatten_time = t0.elapsed();
    if flat.n_cols() > 64 {
        return Err(BaselineError::TooWide {
            columns: flat.n_cols(),
        });
    }
    let columns: Vec<&[Option<u64>]> = (0..flat.n_cols()).map(|c| flat.column_cells(c)).collect();
    let t1 = Instant::now();
    let res = discover_intra(
        &columns,
        flat.n_rows(),
        &IntraOptions {
            max_lhs: options.max_lhs,
            empty_lhs: options.empty_lhs,
            ..Default::default()
        },
    );
    let discover_time = t1.elapsed();

    let path_of = |a: usize| flat.column_names[a].clone();
    let set_paths = |s: AttrSet| s.iter().map(path_of).collect::<Vec<_>>();
    Ok(BaselineResult {
        fds: res
            .fds
            .iter()
            .map(|fd| FlatFd {
                lhs: set_paths(fd.lhs),
                rhs: path_of(fd.rhs),
            })
            .collect(),
        keys: res.keys.iter().map(|&k| set_paths(k)).collect(),
        rows: flat.n_rows(),
        columns: flat.n_cols(),
        stats: res.stats,
        flatten_time,
        discover_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    #[test]
    fn baseline_finds_plain_fds() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>2</isbn><title>B</title></book>\
             </w>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let res = discover_flat(&t, &s, &BaselineOptions::default()).unwrap();
        assert!(res
            .fds
            .iter()
            .any(|fd| fd.rhs == "/w/book/title" && fd.lhs == vec!["/w/book/isbn".to_string()]));
    }

    /// The Section 2.3 semantic failure: under the flat notion,
    /// `ISBN → author` is violated by multi-author books even though the
    /// set-based Constraint 3 holds.
    #[test]
    fn baseline_misses_set_element_fd() {
        let t = parse(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a></book>\
             <book><isbn>1</isbn><a>G</a><a>R</a></book>\
             <book><isbn>2</isbn><a>R</a></book>\
             </w>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let res = discover_flat(&t, &s, &BaselineOptions::default()).unwrap();
        assert!(
            !res.fds
                .iter()
                .any(|fd| fd.rhs == "/w/book/a" && fd.lhs == vec!["/w/book/isbn".to_string()]),
            "flat baseline must NOT find isbn→author: {:#?}",
            res.fds
        );
    }

    #[test]
    fn row_cap_propagates() {
        let t = parse("<r><a>1</a><a>2</a><b>x</b><b>y</b></r>").unwrap();
        let s = infer_schema(&t);
        let err = discover_flat(
            &t,
            &s,
            &BaselineOptions {
                max_rows: 2,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, BaselineError::Flatten(_)));
    }

    #[test]
    fn flat_dimensions_are_reported() {
        let t = parse("<r><a>1</a><a>2</a><b>x</b><b>y</b><b>z</b></r>").unwrap();
        let s = infer_schema(&t);
        let res = discover_flat(&t, &s, &BaselineOptions::default()).unwrap();
        assert_eq!(res.rows, 6);
        assert_eq!(res.columns, 3); // r, a, b
    }
}
