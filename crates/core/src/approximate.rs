//! Approximate XML FDs — an extension for *dirty* casually-designed data.
//!
//! Real casually-authored XML (the paper's motivating scenario) often
//! contains a handful of entry errors that break an otherwise-intended
//! dependency; exact discovery then reports nothing. Following the `g₃`
//! error measure of Kivinen & Mannila (as used by TANE), an FD
//! `LHS → RHS` holds *approximately at error ε* iff removing at most
//! `ε·n` tuples makes it exact:
//!
//! ```text
//! g₃(LHS → RHS) = 1 − (Σ over groups g of Π_LHS: max |g ∩ g'| over
//!                      groups g' of Π_{LHS∪RHS}) / n
//! ```
//!
//! Tuples with ⊥ in the LHS are exempt (they agree with nothing, strong
//! satisfaction), and a ⊥ RHS counts as violating (Definition 7 requires a
//! non-null RHS), consistent with the exact semantics.

use std::collections::HashMap;

use xfd_partition::{AttrSet, GroupMap, Partition};
use xfd_relation::{Forest, RelId};

use crate::config::DiscoveryConfig;
use crate::fd::Xfd;
use crate::interesting::{fd_is_interesting, intra_fd_to_xfd};
use crate::lattice::IntraFd;

/// An approximately-satisfied FD with its `g₃` error.
#[derive(Debug, Clone)]
pub struct ApproxFd {
    /// LHS attribute set.
    pub lhs: AttrSet,
    /// RHS attribute index.
    pub rhs: usize,
    /// The `g₃` error in `[0, 1)`; 0 means exactly satisfied.
    pub error: f64,
}

/// Compute `g₃` for `Π_LHS` vs `Π_{LHS∪RHS}` over `n` tuples.
///
/// Both partitions are stripped; a tuple of a `Π_LHS` group that is a
/// stripped singleton of the product (unique or ⊥ RHS) can only "keep"
/// itself, which falls out of the max-subgroup computation naturally.
pub fn g3_error(pl: &Partition, pa: &Partition, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let gm = GroupMap::new(pa);
    let mut removed = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for g in pl.groups() {
        counts.clear();
        let mut singles = 0usize;
        for &t in g {
            match gm.group_of(t) {
                Some(sub) => *counts.entry(sub).or_insert(0) += 1,
                None => singles += 1,
            }
        }
        let keep = counts
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(usize::from(singles > 0));
        removed += g.len() - keep;
    }
    removed as f64 / n as f64
}

/// Error-only `g₃` kernel: count the tuples `g₃` removes by bucketing each
/// `Π_LHS` group with the RHS *base* group-map — no product partition is
/// materialized. Within one LHS group, tuples sharing an RHS base group are
/// exactly the tuples sharing a product group (they agree on both sides),
/// and product-stripped singletons land in `singles` or a size-1 bucket,
/// neither of which can raise `keep` above 1 — so the count matches
/// [`g3_error`]'s numerator exactly.
///
/// With `budget = Some(b)` the scan stops as soon as `removed > b` and
/// returns `None` (the FD already exceeds the error threshold implying
/// `b`); otherwise `Some(removed)`.
pub fn g3_removed(pl: &Partition, rhs_gm: &GroupMap, budget: Option<usize>) -> Option<usize> {
    let mut removed = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for g in pl.groups() {
        counts.clear();
        let mut singles = 0usize;
        for &t in g {
            match rhs_gm.group_of(t) {
                Some(sub) => *counts.entry(sub).or_insert(0) += 1,
                None => singles += 1,
            }
        }
        let keep = counts
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(usize::from(singles > 0));
        removed += g.len() - keep;
        if let Some(b) = budget {
            if removed > b {
                return None;
            }
        }
    }
    Some(removed)
}

/// Discover minimal approximate FDs (error ≤ `epsilon`) over one table.
///
/// Exactly-satisfied FDs are included with error 0. Minimality is with
/// respect to the same RHS: a superset LHS is only reported if no reported
/// subset exists.
pub fn discover_approximate(
    columns: &[&[Option<u64>]],
    n_tuples: usize,
    epsilon: f64,
    max_lhs: usize,
) -> Vec<ApproxFd> {
    let m = columns.len();
    if n_tuples <= 1 || m == 0 {
        return Vec::new();
    }
    let singles: Vec<Partition> = columns.iter().map(|c| Partition::from_column(c)).collect();
    let single_gms: Vec<GroupMap> = singles.iter().map(GroupMap::new).collect();
    // Early-exit budget for the error-only kernel. The `+ 1` absorbs the
    // float rounding of `ε·n`: a candidate is cut off only when its removal
    // count is strictly beyond anything `removed/n ≤ ε` could accept, so
    // results are bit-identical to the materializing path.
    let budget = (epsilon * n_tuples as f64).floor() as usize + 1;
    let mut out: Vec<ApproxFd> = Vec::new();
    // Level-wise enumeration of LHS sets (smallest first ensures minimal
    // LHSs are recorded before their supersets are considered).
    let mut level: Vec<(AttrSet, Partition)> =
        vec![(AttrSet::empty(), Partition::universal(n_tuples))];
    for _ in 0..=max_lhs.min(m) {
        let mut next: Vec<(AttrSet, Partition)> = Vec::new();
        for (lhs, pl) in &level {
            for (rhs, rhs_gm) in single_gms.iter().enumerate() {
                if lhs.contains(rhs) {
                    continue;
                }
                if out.iter().any(|f| f.rhs == rhs && f.lhs.is_subset_of(*lhs)) {
                    continue; // a subset already (approximately) determines rhs
                }
                if let Some(removed) = g3_removed(pl, rhs_gm, Some(budget)) {
                    let err = removed as f64 / n_tuples as f64;
                    if err <= epsilon {
                        out.push(ApproxFd {
                            lhs: *lhs,
                            rhs,
                            error: err,
                        });
                    }
                }
            }
            // Expand canonically (append attributes beyond the max).
            let start = lhs.max_attr().map_or(0, |a| a + 1);
            for (a, single) in singles.iter().enumerate().skip(start) {
                // Skip expansion if every RHS is already determined by a
                // subset — no minimal FD can come from this branch.
                let bigger = lhs.insert(a);
                if (0..m).all(|rhs| {
                    bigger.contains(rhs)
                        || out
                            .iter()
                            .any(|f| f.rhs == rhs && f.lhs.is_subset_of(bigger))
                }) {
                    continue;
                }
                let pb = pl.product(single);
                next.push((bigger, pb));
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    out
}

/// Approximate discovery over every essential relation of a forest
/// (intra-relation only — approximate partition-target propagation is out
/// of scope), reporting interesting FDs with their errors.
pub fn discover_approximate_forest(
    forest: &Forest,
    config: &DiscoveryConfig,
    epsilon: f64,
) -> Vec<(Xfd, f64)> {
    let mut out = Vec::new();
    for rel in &forest.relations {
        if rel.parent.is_none() || rel.n_tuples() <= 1 {
            continue;
        }
        let columns: Vec<&[Option<u64>]> = rel.columns.iter().map(|c| c.cells.as_slice()).collect();
        let found = discover_approximate(
            &columns,
            rel.n_tuples(),
            epsilon,
            config.lhs_bound().min(columns.len()),
        );
        for f in found {
            if !fd_is_interesting(forest, rel.id, f.rhs) {
                continue;
            }
            let rid: RelId = rel.id;
            out.push((
                intra_fd_to_xfd(
                    forest,
                    rid,
                    &IntraFd {
                        lhs: f.lhs,
                        rhs: f.rhs,
                    },
                ),
                f.error,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    #[test]
    fn exact_fds_have_zero_error() {
        let lhs = [Some(1u64), Some(1), Some(2)];
        let rhs = [Some(9u64), Some(9), Some(8)];
        let pl = Partition::from_column(&lhs);
        let pa = pl.product(&Partition::from_column(&rhs));
        assert_eq!(g3_error(&pl, &pa, 3), 0.0);
    }

    #[test]
    fn one_violation_in_ten_gives_error_point_one() {
        let lhs: Vec<Option<u64>> = (0..10).map(|_| Some(1u64)).collect();
        let mut rhs: Vec<Option<u64>> = (0..10).map(|_| Some(5u64)).collect();
        rhs[7] = Some(6); // one dissenter
        let pl = Partition::from_column(&lhs);
        let pa = pl.product(&Partition::from_column(&rhs));
        let err = g3_error(&pl, &pa, 10);
        assert!((err - 0.1).abs() < 1e-9, "{err}");
    }

    #[test]
    fn null_rhs_counts_as_violation() {
        let lhs = [Some(1u64), Some(1), Some(1)];
        let pl = Partition::from_column(&lhs);
        // RHS values 5, 5, ⊥ paired with the constant LHS.
        let paired = [Some(15u64), Some(15), None];
        let pa = Partition::from_column(&paired);
        let err = g3_error(&pl, &pa, 3);
        assert!((err - (1.0 / 3.0)).abs() < 1e-9, "{err}");
    }

    #[test]
    fn g3_removed_matches_materialized_g3() {
        // Deterministic mixed columns: nulls, repeated values, and
        // per-column-unique values (stripped singletons of the base).
        let n = 40usize;
        let cols: Vec<Vec<Option<u64>>> = (0..4u64)
            .map(|c| {
                (0..n as u64)
                    .map(|i| match (i * 7 + c * 3) % 11 {
                        0 => None,
                        v => Some(v % (3 + c) + i / 20 * 100),
                    })
                    .collect()
            })
            .collect();
        let parts: Vec<Partition> = cols.iter().map(|c| Partition::from_column(c)).collect();
        for pl in &parts {
            for pr in &parts {
                let pa = pl.product(pr);
                let gm = GroupMap::new(pr);
                let removed = g3_removed(pl, &gm, None).expect("no budget, no exit");
                let err = g3_error(pl, &pa, n);
                assert!(
                    (removed as f64 / n as f64 - err).abs() < 1e-12,
                    "kernel {removed}/{n} vs materialized {err}"
                );
                // The early exit fires exactly when the count exceeds the
                // budget, never sooner and never later.
                for b in 0..=removed + 1 {
                    let got = g3_removed(pl, &gm, Some(b));
                    if removed > b {
                        assert_eq!(got, None, "budget {b} must cut off {removed}");
                    } else {
                        assert_eq!(got, Some(removed), "budget {b} must stay exact");
                    }
                }
            }
        }
    }

    #[test]
    fn discover_approximate_finds_noisy_fd() {
        // a0 → a1 with one corrupted row out of 12.
        let a0: Vec<Option<u64>> = (0..12).map(|i| Some(i as u64 % 4)).collect();
        let mut a1: Vec<Option<u64>> = (0..12).map(|i| Some(i as u64 % 4 + 100)).collect();
        a1[5] = Some(999);
        let exact = discover_approximate(&[&a0, &a1], 12, 0.0, 2);
        assert!(
            !exact
                .iter()
                .any(|f| f.rhs == 1 && f.lhs == AttrSet::single(0)),
            "corrupted FD must fail exactly"
        );
        let approx = discover_approximate(&[&a0, &a1], 12, 0.1, 2);
        let f = approx
            .iter()
            .find(|f| f.rhs == 1 && f.lhs == AttrSet::single(0))
            .expect("approximate a0→a1");
        assert!((f.error - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let a0 = [Some(1u64), Some(1), Some(2), Some(2)];
        let a1 = [Some(5u64), Some(6), Some(5), Some(6)];
        let a2 = [Some(9u64), Some(9), Some(8), Some(8)]; // a0 → a2 exact
        let found = discover_approximate(&[&a0, &a1, &a2], 4, 0.0, 3);
        assert!(found
            .iter()
            .any(|f| f.rhs == 2 && f.lhs == AttrSet::single(0)));
        assert!(
            !found
                .iter()
                .any(|f| f.rhs == 2 && f.lhs == AttrSet::from_iter([0, 1])),
            "superset of a satisfied LHS must be suppressed"
        );
    }

    #[test]
    fn forest_level_approximate_discovery() {
        // title determined by isbn except one typo'd book.
        let t = parse(
            "<w>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A!</t></book>\
             <book><i>2</i><t>B</t></book>\
             </w>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let cfg = DiscoveryConfig::default();
        let exact = discover_approximate_forest(&forest, &cfg, 0.0);
        assert!(!exact
            .iter()
            .any(|(fd, _)| fd.to_string() == "{./i} -> ./t w.r.t. C_book"));
        let approx = discover_approximate_forest(&forest, &cfg, 0.25);
        let (_, err) = approx
            .iter()
            .find(|(fd, _)| fd.to_string() == "{./i} -> ./t w.r.t. C_book")
            .expect("approximate isbn→title");
        assert!((err - 0.2).abs() < 1e-9, "{err}");
    }
}
