//! Approximate XML FDs — an extension for *dirty* casually-designed data.
//!
//! Real casually-authored XML (the paper's motivating scenario) often
//! contains a handful of entry errors that break an otherwise-intended
//! dependency; exact discovery then reports nothing. Following the `g₃`
//! error measure of Kivinen & Mannila (as used by TANE), an FD
//! `LHS → RHS` holds *approximately at error ε* iff removing at most
//! `ε·n` tuples makes it exact:
//!
//! ```text
//! g₃(LHS → RHS) = 1 − (Σ over groups g of Π_LHS: max |g ∩ g'| over
//!                      groups g' of Π_{LHS∪RHS}) / n
//! ```
//!
//! Tuples with ⊥ in the LHS are exempt (they agree with nothing, strong
//! satisfaction), and a ⊥ RHS counts as violating (Definition 7 requires a
//! non-null RHS), consistent with the exact semantics.

use std::collections::HashMap;

use xfd_partition::{AttrSet, GroupMap, Partition};
use xfd_relation::{Forest, RelId};

use crate::config::DiscoveryConfig;
use crate::fd::Xfd;
use crate::interesting::{fd_is_interesting, intra_fd_to_xfd};
use crate::lattice::IntraFd;

/// An approximately-satisfied FD with its `g₃` error.
#[derive(Debug, Clone)]
pub struct ApproxFd {
    /// LHS attribute set.
    pub lhs: AttrSet,
    /// RHS attribute index.
    pub rhs: usize,
    /// The `g₃` error in `[0, 1)`; 0 means exactly satisfied.
    pub error: f64,
}

/// Compute `g₃` for `Π_LHS` vs `Π_{LHS∪RHS}` over `n` tuples.
///
/// Both partitions are stripped; a tuple of a `Π_LHS` group that is a
/// stripped singleton of the product (unique or ⊥ RHS) can only "keep"
/// itself, which falls out of the max-subgroup computation naturally.
pub fn g3_error(pl: &Partition, pa: &Partition, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let gm = GroupMap::new(pa);
    let mut removed = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for g in pl.groups() {
        counts.clear();
        let mut singles = 0usize;
        for &t in g {
            match gm.group_of(t) {
                Some(sub) => *counts.entry(sub).or_insert(0) += 1,
                None => singles += 1,
            }
        }
        let keep = counts
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(usize::from(singles > 0));
        removed += g.len() - keep;
    }
    removed as f64 / n as f64
}

/// Discover minimal approximate FDs (error ≤ `epsilon`) over one table.
///
/// Exactly-satisfied FDs are included with error 0. Minimality is with
/// respect to the same RHS: a superset LHS is only reported if no reported
/// subset exists.
pub fn discover_approximate(
    columns: &[&[Option<u64>]],
    n_tuples: usize,
    epsilon: f64,
    max_lhs: usize,
) -> Vec<ApproxFd> {
    let m = columns.len();
    if n_tuples <= 1 || m == 0 {
        return Vec::new();
    }
    let singles: Vec<Partition> = columns.iter().map(|c| Partition::from_column(c)).collect();
    let mut out: Vec<ApproxFd> = Vec::new();
    // Level-wise enumeration of LHS sets (smallest first ensures minimal
    // LHSs are recorded before their supersets are considered).
    let mut level: Vec<(AttrSet, Partition)> =
        vec![(AttrSet::empty(), Partition::universal(n_tuples))];
    for _ in 0..=max_lhs.min(m) {
        let mut next: Vec<(AttrSet, Partition)> = Vec::new();
        for (lhs, pl) in &level {
            for (rhs, single) in singles.iter().enumerate() {
                if lhs.contains(rhs) {
                    continue;
                }
                if out.iter().any(|f| f.rhs == rhs && f.lhs.is_subset_of(*lhs)) {
                    continue; // a subset already (approximately) determines rhs
                }
                let pa = pl.product(single);
                let err = g3_error(pl, &pa, n_tuples);
                if err <= epsilon {
                    out.push(ApproxFd {
                        lhs: *lhs,
                        rhs,
                        error: err,
                    });
                }
            }
            // Expand canonically (append attributes beyond the max).
            let start = lhs.max_attr().map_or(0, |a| a + 1);
            for (a, single) in singles.iter().enumerate().skip(start) {
                // Skip expansion if every RHS is already determined by a
                // subset — no minimal FD can come from this branch.
                let bigger = lhs.insert(a);
                if (0..m).all(|rhs| {
                    bigger.contains(rhs)
                        || out
                            .iter()
                            .any(|f| f.rhs == rhs && f.lhs.is_subset_of(bigger))
                }) {
                    continue;
                }
                let pb = pl.product(single);
                next.push((bigger, pb));
            }
        }
        if next.is_empty() {
            break;
        }
        level = next;
    }
    out
}

/// Approximate discovery over every essential relation of a forest
/// (intra-relation only — approximate partition-target propagation is out
/// of scope), reporting interesting FDs with their errors.
pub fn discover_approximate_forest(
    forest: &Forest,
    config: &DiscoveryConfig,
    epsilon: f64,
) -> Vec<(Xfd, f64)> {
    let mut out = Vec::new();
    for rel in &forest.relations {
        if rel.parent.is_none() || rel.n_tuples() <= 1 {
            continue;
        }
        let columns: Vec<&[Option<u64>]> = rel.columns.iter().map(|c| c.cells.as_slice()).collect();
        let found = discover_approximate(
            &columns,
            rel.n_tuples(),
            epsilon,
            config.lhs_bound().min(columns.len()),
        );
        for f in found {
            if !fd_is_interesting(forest, rel.id, f.rhs) {
                continue;
            }
            let rid: RelId = rel.id;
            out.push((
                intra_fd_to_xfd(
                    forest,
                    rid,
                    &IntraFd {
                        lhs: f.lhs,
                        rhs: f.rhs,
                    },
                ),
                f.error,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    #[test]
    fn exact_fds_have_zero_error() {
        let lhs = [Some(1u64), Some(1), Some(2)];
        let rhs = [Some(9u64), Some(9), Some(8)];
        let pl = Partition::from_column(&lhs);
        let pa = pl.product(&Partition::from_column(&rhs));
        assert_eq!(g3_error(&pl, &pa, 3), 0.0);
    }

    #[test]
    fn one_violation_in_ten_gives_error_point_one() {
        let lhs: Vec<Option<u64>> = (0..10).map(|_| Some(1u64)).collect();
        let mut rhs: Vec<Option<u64>> = (0..10).map(|_| Some(5u64)).collect();
        rhs[7] = Some(6); // one dissenter
        let pl = Partition::from_column(&lhs);
        let pa = pl.product(&Partition::from_column(&rhs));
        let err = g3_error(&pl, &pa, 10);
        assert!((err - 0.1).abs() < 1e-9, "{err}");
    }

    #[test]
    fn null_rhs_counts_as_violation() {
        let lhs = [Some(1u64), Some(1), Some(1)];
        let pl = Partition::from_column(&lhs);
        // RHS values 5, 5, ⊥ paired with the constant LHS.
        let paired = [Some(15u64), Some(15), None];
        let pa = Partition::from_column(&paired);
        let err = g3_error(&pl, &pa, 3);
        assert!((err - (1.0 / 3.0)).abs() < 1e-9, "{err}");
    }

    #[test]
    fn discover_approximate_finds_noisy_fd() {
        // a0 → a1 with one corrupted row out of 12.
        let a0: Vec<Option<u64>> = (0..12).map(|i| Some(i as u64 % 4)).collect();
        let mut a1: Vec<Option<u64>> = (0..12).map(|i| Some(i as u64 % 4 + 100)).collect();
        a1[5] = Some(999);
        let exact = discover_approximate(&[&a0, &a1], 12, 0.0, 2);
        assert!(
            !exact
                .iter()
                .any(|f| f.rhs == 1 && f.lhs == AttrSet::single(0)),
            "corrupted FD must fail exactly"
        );
        let approx = discover_approximate(&[&a0, &a1], 12, 0.1, 2);
        let f = approx
            .iter()
            .find(|f| f.rhs == 1 && f.lhs == AttrSet::single(0))
            .expect("approximate a0→a1");
        assert!((f.error - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let a0 = [Some(1u64), Some(1), Some(2), Some(2)];
        let a1 = [Some(5u64), Some(6), Some(5), Some(6)];
        let a2 = [Some(9u64), Some(9), Some(8), Some(8)]; // a0 → a2 exact
        let found = discover_approximate(&[&a0, &a1, &a2], 4, 0.0, 3);
        assert!(found
            .iter()
            .any(|f| f.rhs == 2 && f.lhs == AttrSet::single(0)));
        assert!(
            !found
                .iter()
                .any(|f| f.rhs == 2 && f.lhs == AttrSet::from_iter([0, 1])),
            "superset of a satisfied LHS must be suppressed"
        );
    }

    #[test]
    fn forest_level_approximate_discovery() {
        // title determined by isbn except one typo'd book.
        let t = parse(
            "<w>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A</t></book>\
             <book><i>1</i><t>A!</t></book>\
             <book><i>2</i><t>B</t></book>\
             </w>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let cfg = DiscoveryConfig::default();
        let exact = discover_approximate_forest(&forest, &cfg, 0.0);
        assert!(!exact
            .iter()
            .any(|(fd, _)| fd.to_string() == "{./i} -> ./t w.r.t. C_book"));
        let approx = discover_approximate_forest(&forest, &cfg, 0.25);
        let (_, err) = approx
            .iter()
            .find(|(fd, _)| fd.to_string() == "{./i} -> ./t w.r.t. C_book")
            .expect("approximate isbn→title");
        assert!((err - 0.2).abs() < 1e-9, "{err}");
    }
}
