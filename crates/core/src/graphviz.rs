//! Graphviz (DOT) export of the relation forest and the discovered FD
//! structure — for documentation, demos, and schema-review meetings.

use std::fmt::Write as _;

use xfd_relation::{ColumnKind, Forest};

use crate::driver::DiscoveryReport;

/// Render the relation forest (hierarchical representation) as a DOT
/// digraph: one record-shaped node per relation listing its columns, with
/// parent → child edges.
pub fn forest_to_dot(forest: &Forest) -> String {
    let mut out = String::from("digraph forest {\n  node [shape=record, fontsize=10];\n");
    for rel in &forest.relations {
        let mut cols = String::from("@key|parent");
        for c in &rel.columns {
            let marker = match c.kind {
                ColumnKind::Simple => "",
                ColumnKind::Complex => " (rcd)",
                ColumnKind::SetValue => " {set}",
            };
            let _ = write!(cols, "|{}{}", c.name.replace('|', "/"), marker);
        }
        let _ = writeln!(
            out,
            "  r{} [label=\"{{R_{} ({} tuples)|{}}}\"];",
            rel.id.0,
            rel.name,
            rel.n_tuples(),
            cols
        );
        if let Some(parent) = rel.parent {
            let _ = writeln!(out, "  r{} -> r{};", parent.0, rel.id.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Render the discovered FDs as a DOT digraph: one node per path (within
/// its tuple class cluster), an edge LHS → RHS per FD; redundancy-
/// indicating FDs are highlighted.
pub fn fds_to_dot(report: &DiscoveryReport) -> String {
    let mut out = String::from("digraph fds {\n  node [fontsize=10];\n  rankdir=LR;\n");
    let mut classes: Vec<String> = report
        .fds
        .iter()
        .map(|fd| fd.tuple_class.to_string())
        .collect();
    classes.sort();
    classes.dedup();
    let esc = |s: &str| s.replace('"', "\\\"");
    for (ci, class) in classes.iter().enumerate() {
        let _ = writeln!(
            out,
            "  subgraph cluster{ci} {{\n    label=\"C_{}\";",
            esc(class)
        );
        let mut nodes: Vec<String> = Vec::new();
        for fd in report
            .fds
            .iter()
            .filter(|f| &f.tuple_class.to_string() == class)
        {
            for p in fd.lhs.iter().chain(std::iter::once(&fd.rhs)) {
                let name = p.to_string();
                if !nodes.contains(&name) {
                    nodes.push(name);
                }
            }
        }
        for (ni, n) in nodes.iter().enumerate() {
            let _ = writeln!(out, "    c{ci}n{ni} [label=\"{}\"];", esc(n));
        }
        for fd in report
            .fds
            .iter()
            .filter(|f| &f.tuple_class.to_string() == class)
        {
            let redundant = report.redundancies.iter().any(|r| &r.fd == fd);
            let rhs_idx = nodes
                .iter()
                .position(|n| *n == fd.rhs.to_string())
                .expect("rhs node");
            for p in &fd.lhs {
                let lhs_idx = nodes
                    .iter()
                    .position(|n| *n == p.to_string())
                    .expect("lhs node");
                let _ = writeln!(
                    out,
                    "    c{ci}n{lhs_idx} -> c{ci}n{rhs_idx}{};",
                    if redundant {
                        " [color=red, penwidth=2]"
                    } else {
                        ""
                    }
                );
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::driver::discover;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn sample() -> (Forest, crate::driver::RunOutcome) {
        let t = parse(
            "<w><store><name>X</name>\
               <book><i>1</i><t>A</t></book><book><i>1</i><t>A</t></book>\
               <book><i>2</i><t>B</t></book></store></w>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let report = discover(&t, &DiscoveryConfig::default());
        (forest, report)
    }

    #[test]
    fn forest_dot_lists_relations_and_edges() {
        let (forest, _) = sample();
        let dot = forest_to_dot(&forest);
        assert!(dot.starts_with("digraph forest {"));
        assert!(dot.contains("R_book"));
        assert!(dot.contains("{set}"), "set columns are marked");
        assert!(dot.contains("->"), "parent edges exist");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn fd_dot_highlights_redundancies() {
        let (_, report) = sample();
        let dot = fds_to_dot(&report);
        assert!(dot.contains("subgraph cluster0"));
        assert!(
            dot.contains("color=red"),
            "redundancy-indicating FDs highlighted:\n{dot}"
        );
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
