//! Verifying a *given* XML FD or Key against a document — the complement
//! of discovery (Definition 7 checking, with witnesses).
//!
//! FD expressions use the same syntax the system prints:
//!
//! ```text
//! {./ISBN, ../contact/name} -> ./price w.r.t. C_book
//! {./ISBN} -> ./title w.r.t. C_/warehouse/state/store/book
//! ```
//!
//! The tuple class may be a full pivot path or a `C_<label>` shorthand
//! resolved against the forest (it must be unambiguous).

use std::fmt;
use std::str::FromStr;

use xfd_partition::AttrSet;
use xfd_relation::{Forest, RelId};
use xfd_xml::{NodeId, Path};

use crate::redundancy::lhs_group_members;

/// A parsed-but-unresolved FD expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSpec {
    /// LHS paths relative to the pivot.
    pub lhs: Vec<Path>,
    /// RHS path relative to the pivot.
    pub rhs: Path,
    /// The tuple class: a full pivot path or a bare label.
    pub class: ClassRef,
}

/// How the tuple class was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassRef {
    /// `C_/warehouse/state/store/book`.
    Path(Path),
    /// `C_book` — resolved against the forest (must be unambiguous).
    Label(String),
}

/// Parse failure for an FD expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdParseError(pub String);

impl fmt::Display for FdParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid FD expression: {}", self.0)
    }
}

impl std::error::Error for FdParseError {}

impl FromStr for FdSpec {
    type Err = FdParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || FdParseError(s.to_string());
        let s = s.trim();
        let open = s.find('{').ok_or_else(err)?;
        let close = s.find('}').ok_or_else(err)?;
        if open != 0 || close < open {
            return Err(err());
        }
        let lhs_body = &s[open + 1..close];
        let mut lhs = Vec::new();
        for part in lhs_body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            lhs.push(part.parse::<Path>().map_err(|_| err())?);
        }
        let rest = s[close + 1..].trim();
        let rest = rest.strip_prefix("->").ok_or_else(err)?.trim();
        let wrt = rest.find("w.r.t.").ok_or_else(err)?;
        let rhs = rest[..wrt].trim().parse::<Path>().map_err(|_| err())?;
        let class_str = rest[wrt + "w.r.t.".len()..].trim();
        let class_str = class_str.strip_prefix("C_").unwrap_or(class_str);
        let class = if class_str.starts_with('/') {
            ClassRef::Path(class_str.parse::<Path>().map_err(|_| err())?)
        } else if !class_str.is_empty() {
            ClassRef::Label(class_str.to_string())
        } else {
            return Err(err());
        };
        Ok(FdSpec { lhs, rhs, class })
    }
}

/// Why verification could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// No relation matches the tuple class.
    UnknownClass(String),
    /// Several relations share the shorthand label.
    AmbiguousClass(String),
    /// An LHS path does not denote a column of the class's relation or an
    /// ancestor relation.
    UnknownLhsPath(Path),
    /// The RHS path does not denote a column of the class's relation.
    UnknownRhsPath(Path),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownClass(c) => write!(f, "unknown tuple class {c:?}"),
            VerifyError::AmbiguousClass(c) => {
                write!(
                    f,
                    "tuple class label {c:?} is ambiguous; use the full pivot path"
                )
            }
            VerifyError::UnknownLhsPath(p) => write!(f, "LHS path {p} is not a known element"),
            VerifyError::UnknownRhsPath(p) => {
                write!(f, "RHS path {p} is not an element below the pivot")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// A violating pair of pivot nodes (node keys of the document).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// First pivot node.
    pub node1: NodeId,
    /// Second pivot node.
    pub node2: NodeId,
}

/// Verification outcome.
#[derive(Debug, Clone)]
pub struct FdReport {
    /// Does the FD hold (Definition 7)?
    pub holds: bool,
    /// True when it holds but no two tuples ever agreed on the LHS — the
    /// FD is also a Key (and can indicate no redundancy).
    pub lhs_is_key: bool,
    /// Up to `max_witnesses` violating pivot-node pairs.
    pub violations: Vec<Violation>,
    /// Number of tuples inspected.
    pub tuples: usize,
}

fn resolve_class(forest: &Forest, class: &ClassRef) -> Result<RelId, VerifyError> {
    match class {
        ClassRef::Path(p) => forest
            .relation_by_path(p)
            .ok_or_else(|| VerifyError::UnknownClass(p.to_string())),
        ClassRef::Label(l) => {
            let matches: Vec<RelId> = forest
                .relations
                .iter()
                .filter(|r| &r.name == l)
                .map(|r| r.id)
                .collect();
            match matches.as_slice() {
                [] => Err(VerifyError::UnknownClass(l.clone())),
                [one] => Ok(*one),
                _ => Err(VerifyError::AmbiguousClass(l.clone())),
            }
        }
    }
}

/// Locate the `(relation, column)` a pivot-relative path denotes, searching
/// the origin relation and its ancestors.
fn resolve_column(forest: &Forest, origin: RelId, path: &Path) -> Option<(RelId, usize)> {
    let origin_pivot = &forest.relation(origin).pivot_path;
    let abs = path.to_absolute(origin_pivot)?;
    let mut cur = Some(origin);
    while let Some(rel_id) = cur {
        let rel = forest.relation(rel_id);
        for (c, col) in rel.columns.iter().enumerate() {
            let col_abs = col.rel_path.to_absolute(&rel.pivot_path)?;
            if col_abs == abs {
                return Some((rel_id, c));
            }
        }
        cur = rel.parent;
    }
    None
}

/// Verify an FD expression against an encoded forest.
pub fn verify_fd(
    forest: &Forest,
    spec: &FdSpec,
    max_witnesses: usize,
) -> Result<FdReport, VerifyError> {
    let origin = resolve_class(forest, &spec.class)?;
    let mut levels: Vec<(RelId, AttrSet)> = Vec::new();
    for p in &spec.lhs {
        let (rel, col) = resolve_column(forest, origin, p)
            .ok_or_else(|| VerifyError::UnknownLhsPath(p.clone()))?;
        match levels.iter_mut().find(|(r, _)| *r == rel) {
            Some((_, set)) => *set = set.insert(col),
            None => levels.push((rel, AttrSet::single(col))),
        }
    }
    let (rhs_rel, rhs_col) = resolve_column(forest, origin, &spec.rhs)
        .ok_or_else(|| VerifyError::UnknownRhsPath(spec.rhs.clone()))?;
    if rhs_rel != origin {
        return Err(VerifyError::UnknownRhsPath(spec.rhs.clone()));
    }

    let rel = forest.relation(origin);
    let rhs_cells = &rel.columns[rhs_col].cells;
    let groups = lhs_group_members(forest, origin, &levels);
    let mut violations = Vec::new();
    let mut lhs_is_key = true;
    'outer: for g in &groups {
        if g.len() < 2 {
            continue;
        }
        lhs_is_key = false;
        // All members must share a non-null RHS.
        let first = g[0] as usize;
        for &t in &g[1..] {
            let bad = rhs_cells[first].is_none() || rhs_cells[first] != rhs_cells[t as usize];
            if bad {
                violations.push(Violation {
                    node1: rel.node_keys[first],
                    node2: rel.node_keys[t as usize],
                });
                if violations.len() >= max_witnesses {
                    break 'outer;
                }
            }
        }
    }
    Ok(FdReport {
        holds: violations.is_empty(),
        lhs_is_key,
        violations,
        tuples: rel.n_tuples(),
    })
}

/// Key-verification outcome.
#[derive(Debug, Clone)]
pub struct KeyReport {
    /// Does `(C, LHS)` satisfy Definition 8?
    pub holds: bool,
    /// Up to `max_witnesses` pairs of tuples agreeing on the LHS.
    pub violations: Vec<Violation>,
    /// Number of tuples inspected.
    pub tuples: usize,
}

/// Verify an XML Key `(class, lhs)` — Definition 8: no two tuples of the
/// class agree on all LHS paths.
pub fn verify_key(
    forest: &Forest,
    class: &ClassRef,
    lhs: &[Path],
    max_witnesses: usize,
) -> Result<KeyReport, VerifyError> {
    let origin = resolve_class(forest, class)?;
    let mut levels: Vec<(RelId, AttrSet)> = Vec::new();
    for p in lhs {
        let (rel, col) = resolve_column(forest, origin, p)
            .ok_or_else(|| VerifyError::UnknownLhsPath(p.clone()))?;
        match levels.iter_mut().find(|(r, _)| *r == rel) {
            Some((_, set)) => *set = set.insert(col),
            None => levels.push((rel, AttrSet::single(col))),
        }
    }
    let rel = forest.relation(origin);
    let groups = lhs_group_members(forest, origin, &levels);
    let mut violations = Vec::new();
    'outer: for g in &groups {
        for w in g.windows(2) {
            violations.push(Violation {
                node1: rel.node_keys[w[0] as usize],
                node2: rel.node_keys[w[1] as usize],
            });
            if violations.len() >= max_witnesses {
                break 'outer;
            }
        }
    }
    Ok(KeyReport {
        holds: violations.is_empty(),
        violations,
        tuples: rel.n_tuples(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn forest(xml: &str) -> Forest {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        encode(&t, &schema, &EncodeConfig::default())
    }

    #[test]
    fn fd_spec_parses_our_own_display_syntax() {
        let spec: FdSpec = "{./ISBN, ../contact/name} -> ./price w.r.t. C_book"
            .parse()
            .unwrap();
        assert_eq!(spec.lhs.len(), 2);
        assert_eq!(spec.rhs.to_string(), "./price");
        assert_eq!(spec.class, ClassRef::Label("book".into()));
        let spec2: FdSpec = "{./a} -> ./b w.r.t. C_/w/store/book".parse().unwrap();
        assert_eq!(
            spec2.class,
            ClassRef::Path("/w/store/book".parse().unwrap())
        );
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for s in [
            "",
            "./a -> ./b w.r.t. C_x",
            "{./a} ./b w.r.t. C_x",
            "{./a} -> ./b",
            "{./a} -> ./b w.r.t. C_",
            "{//a} -> ./b w.r.t. C_x",
        ] {
            assert!(s.parse::<FdSpec>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn verify_holding_fd() {
        let f = forest(
            "<w><book><i>1</i><t>A</t></book><book><i>1</i><t>A</t></book>\
                <book><i>2</i><t>B</t></book></w>",
        );
        let spec: FdSpec = "{./i} -> ./t w.r.t. C_book".parse().unwrap();
        let report = verify_fd(&f, &spec, 10).unwrap();
        assert!(report.holds);
        assert!(!report.lhs_is_key);
        assert_eq!(report.tuples, 3);
    }

    #[test]
    fn verify_violated_fd_reports_witnesses() {
        let f = forest("<w><book><i>1</i><t>A</t></book><book><i>1</i><t>DIFFERENT</t></book></w>");
        let spec: FdSpec = "{./i} -> ./t w.r.t. C_book".parse().unwrap();
        let report = verify_fd(&f, &spec, 10).unwrap();
        assert!(!report.holds);
        assert_eq!(report.violations.len(), 1);
        // Witnesses are the two book nodes (pre-order keys 1 and 6).
        assert_ne!(report.violations[0].node1, report.violations[0].node2);
    }

    #[test]
    fn verify_inter_relation_fd() {
        let f = forest(
            "<w>\
             <store><name>X</name><book><i>1</i><p>10</p></book>\
               <book><i>2</i><p>20</p></book></store>\
             <store><name>X</name><book><i>1</i><p>10</p></book></store>\
             <store><name>Y</name><book><i>1</i><p>12</p></book></store>\
             </w>",
        );
        let good: FdSpec = "{./i, ../name} -> ./p w.r.t. C_book".parse().unwrap();
        assert!(verify_fd(&f, &good, 10).unwrap().holds);
        let bad: FdSpec = "{./i} -> ./p w.r.t. C_book".parse().unwrap();
        assert!(!verify_fd(&f, &bad, 10).unwrap().holds);
    }

    #[test]
    fn verify_set_element_fd() {
        let f = forest(
            "<w><book><i>1</i><a>R</a><a>G</a></book>\
                <book><i>1</i><a>G</a><a>R</a></book></w>",
        );
        let spec: FdSpec = "{./i} -> ./a w.r.t. C_book".parse().unwrap();
        assert!(verify_fd(&f, &spec, 10).unwrap().holds, "set semantics");
    }

    #[test]
    fn null_rhs_violates() {
        let f = forest("<w><book><i>1</i><t>A</t></book><book><i>1</i></book></w>");
        let spec: FdSpec = "{./i} -> ./t w.r.t. C_book".parse().unwrap();
        assert!(!verify_fd(&f, &spec, 10).unwrap().holds);
    }

    #[test]
    fn key_lhs_is_flagged() {
        let f = forest("<w><book><i>1</i><t>A</t></book><book><i>2</i><t>A</t></book></w>");
        let spec: FdSpec = "{./i} -> ./t w.r.t. C_book".parse().unwrap();
        let report = verify_fd(&f, &spec, 10).unwrap();
        assert!(report.holds);
        assert!(report.lhs_is_key, "no two tuples agree on the LHS");
    }

    #[test]
    fn verify_key_detects_duplicates() {
        let f = forest("<w><book><i>1</i></book><book><i>1</i></book><book><i>2</i></book></w>");
        let lhs = vec!["./i".parse().unwrap()];
        let report = verify_key(&f, &ClassRef::Label("book".into()), &lhs, 5).unwrap();
        assert!(!report.holds);
        assert_eq!(report.violations.len(), 1);
        let f2 = forest("<w><book><i>1</i></book><book><i>2</i></book></w>");
        let report2 = verify_key(&f2, &ClassRef::Label("book".into()), &lhs, 5).unwrap();
        assert!(report2.holds);
    }

    #[test]
    fn verify_key_with_ancestor_paths() {
        let f = forest(
            "<w><store><n>X</n><book><i>1</i></book><book><i>2</i></book></store>\
                <store><n>Y</n><book><i>1</i></book></store></w>",
        );
        let lhs = vec!["./i".parse().unwrap(), "../n".parse().unwrap()];
        let report = verify_key(&f, &ClassRef::Label("book".into()), &lhs, 5).unwrap();
        assert!(report.holds, "isbn+store name identifies books here");
        let weak = verify_key(&f, &ClassRef::Label("book".into()), &lhs[..1], 5).unwrap();
        assert!(!weak.holds);
    }

    #[test]
    fn errors_are_informative() {
        let f = forest("<w><book><i>1</i></book><book><i>2</i></book></w>");
        let unknown_class: FdSpec = "{./i} -> ./t w.r.t. C_zzz".parse().unwrap();
        assert!(matches!(
            verify_fd(&f, &unknown_class, 1),
            Err(VerifyError::UnknownClass(_))
        ));
        let unknown_lhs: FdSpec = "{./nope} -> ./i w.r.t. C_book".parse().unwrap();
        assert!(matches!(
            verify_fd(&f, &unknown_lhs, 1),
            Err(VerifyError::UnknownLhsPath(_))
        ));
        let bad_rhs: FdSpec = "{./i} -> ../name w.r.t. C_book".parse().unwrap();
        assert!(matches!(
            verify_fd(&f, &bad_rhs, 1),
            Err(VerifyError::UnknownRhsPath(_))
        ));
    }
}
