//! The *path-based* XML FD semantics of Vincent et al. (\[24\] in the
//! paper) — implemented as a checker so Section 2.3's comparison of the
//! three notions is executable (see `tests/section23.rs`).
//!
//! An FD is `{P_x1, ..., P_xn} → P_y` over **absolute** paths. Semantics
//! (paper Section 2.3): for any two distinct nodes `y1, y2` matching
//! `P_y`, if for every `P_xi` the x-nodes *associated* with `y1` and `y2`
//! are non-empty and value-equal, then `y1` and `y2` are value-equal.
//! An x-node is associated with a y-node when both descend from the same
//! node at `q_i` = the longest common prefix of `P_xi` and `P_y` ("book is
//! chosen because its path is the longest common prefix of both title and
//! ISBN").
//!
//! Association can match several x-nodes (e.g. the two authors of one
//! book). Following the path-based literature, two y-nodes *agree* on
//! `P_xi` when their associated x-node sets **intersect** on value — one
//! node at a time, never as a set. That per-node comparison is exactly
//! what makes the notion unable to express set semantics (the Section 2.3
//! verdicts this module's tests reproduce): for `{ISBN} → author` the two
//! author nodes of one book are distinct `y` nodes with identical
//! associated ISBNs, so the FD demands all of a book's authors be equal;
//! and for Constraint 4 a single shared author already counts as
//! agreement even when the full author sets differ.

use xfd_xml::{DataTree, EqClasses, NodeId, Path};

/// Outcome of a path-based FD check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathFdReport {
    /// Does the FD hold under the path-based semantics?
    pub holds: bool,
    /// A witnessing pair of `P_y` nodes when violated.
    pub witness: Option<(NodeId, NodeId)>,
}

/// The node at path `prefix` above `node` (its ancestor whose depth equals
/// the prefix length), if the prefix is on `node`'s path.
fn ancestor_at(tree: &DataTree, node: NodeId, prefix_len: usize) -> Option<NodeId> {
    let mut chain = Vec::new();
    let mut cur = Some(node);
    while let Some(c) = cur {
        chain.push(c);
        cur = tree.parent(c);
    }
    chain.reverse(); // root..node
    chain.get(prefix_len.checked_sub(1)?).copied()
}

/// Check `{lhs} → rhs` (absolute paths) under the path-based semantics.
pub fn path_fd_holds(tree: &DataTree, lhs: &[Path], rhs: &Path) -> PathFdReport {
    let classes = EqClasses::compute(tree);
    let y_nodes = rhs.resolve_all(tree);
    // Precompute per LHS path: the common-prefix length and the associated
    // x-class-multiset per y node.
    let assoc: Vec<Vec<Vec<u32>>> = lhs
        .iter()
        .map(|px| {
            let q = px.common_prefix(rhs);
            let qlen = q.len();
            // Relative path from q to the x nodes.
            let x_rel = px.relative_to(&q);
            y_nodes
                .iter()
                .map(|&y| {
                    let Some(anchor) = ancestor_at(tree, y, qlen) else {
                        return Vec::new();
                    };
                    let mut vals: Vec<u32> = x_rel
                        .resolve_from(tree, anchor)
                        .iter()
                        .map(|&x| classes.class_of(x).0)
                        .collect();
                    vals.sort_unstable();
                    vals
                })
                .collect()
        })
        .collect();

    for i in 0..y_nodes.len() {
        for j in i + 1..y_nodes.len() {
            let lhs_agree = (0..lhs.len()).all(|k| {
                let a = &assoc[k][i];
                let b = &assoc[k][j];
                // Intersection agreement (both sorted): some associated
                // x-node of y_i is value-equal to one of y_j's.
                let (mut x, mut y) = (0usize, 0usize);
                let mut intersects = false;
                while x < a.len() && y < b.len() {
                    match a[x].cmp(&b[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            intersects = true;
                            break;
                        }
                    }
                }
                intersects
            });
            if lhs_agree && !classes.node_value_eq(y_nodes[i], y_nodes[j]) {
                return PathFdReport {
                    holds: false,
                    witness: Some((y_nodes[i], y_nodes[j])),
                };
            }
        }
    }
    PathFdReport {
        holds: true,
        witness: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_datagen::warehouse_figure1;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    /// FD 1 under \[24\]: {.../book/ISBN} → .../book/title — SATISFIED on
    /// Figure 1 ("the FD is satisfied in Figure 1 because for any two
    /// titles, if their associated ISBNs share the same value, they have
    /// the same value as well").
    #[test]
    fn constraint_1_holds_under_path_semantics() {
        let t = warehouse_figure1();
        let report = path_fd_holds(
            &t,
            &[p("/warehouse/state/store/book/ISBN")],
            &p("/warehouse/state/store/book/title"),
        );
        assert!(report.holds, "{report:?}");
    }

    /// Constraint 3 under \[24\]: {.../ISBN} → .../author — VIOLATED
    /// ("book 30 has two authors of different values and the two authors
    /// are clearly associated with the same ISBN value").
    #[test]
    fn constraint_3_is_violated_under_path_semantics() {
        let t = warehouse_figure1();
        let report = path_fd_holds(
            &t,
            &[p("/warehouse/state/store/book/ISBN")],
            &p("/warehouse/state/store/book/author"),
        );
        assert!(!report.holds);
        let (a, b) = report.witness.expect("witness pair");
        // The witnesses are two authors of one multi-author book.
        assert_eq!(t.label(a), "author");
        assert_eq!(t.label(b), "author");
    }

    /// Constraint 2 under \[24\] (multi-hierarchy LHS through the store
    /// ancestor): association via the common store/book prefixes works.
    #[test]
    fn constraint_2_holds_under_path_semantics() {
        let t = warehouse_figure1();
        let report = path_fd_holds(
            &t,
            &[
                p("/warehouse/state/store/contact/name"),
                p("/warehouse/state/store/book/ISBN"),
            ],
            &p("/warehouse/state/store/book/price"),
        );
        assert!(report.holds, "{report:?}");
    }

    /// A genuine violation with a clean witness.
    #[test]
    fn violations_produce_witnesses() {
        let t = xfd_xml::parse("<w><b><i>1</i><t>A</t></b><b><i>1</i><t>B</t></b></w>").unwrap();
        let report = path_fd_holds(&t, &[p("/w/b/i")], &p("/w/b/t"));
        assert!(!report.holds);
        assert!(report.witness.is_some());
    }

    /// Missing associated nodes exempt the pair (strong satisfaction).
    #[test]
    fn empty_association_exempts() {
        let t = xfd_xml::parse(
            "<w><b><t>A</t></b><b><t>B</t></b></w>", // no ISBNs at all
        )
        .unwrap();
        let report = path_fd_holds(&t, &[p("/w/b/i")], &p("/w/b/t"));
        assert!(report.holds, "no associated LHS nodes → vacuous");
    }
}
