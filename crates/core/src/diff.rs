//! Constraint drift: compare the discovery reports of two document
//! versions. FDs that disappear signal data-quality regressions (a
//! once-clean dependency now violated); FDs that appear signal newly
//! introduced (possibly accidental) structure; redundancy growth
//! quantifies accumulating duplication.

use std::fmt;

use crate::driver::DiscoveryReport;
use crate::fd::{Xfd, XmlKey};

/// The differences between two reports (`old` → `new`).
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// FDs present in `old` but not `new` — constraints that broke.
    pub lost_fds: Vec<Xfd>,
    /// FDs present in `new` but not `old`.
    pub gained_fds: Vec<Xfd>,
    /// Keys that broke.
    pub lost_keys: Vec<XmlKey>,
    /// Keys that appeared.
    pub gained_keys: Vec<XmlKey>,
    /// Total redundant values in `old`.
    pub redundant_before: usize,
    /// Total redundant values in `new`.
    pub redundant_after: usize,
}

impl ReportDiff {
    /// No drift at all?
    pub fn is_empty(&self) -> bool {
        self.lost_fds.is_empty()
            && self.gained_fds.is_empty()
            && self.lost_keys.is_empty()
            && self.gained_keys.is_empty()
    }
}

impl fmt::Display for ReportDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            writeln!(f, "no constraint drift")?;
        }
        for fd in &self.lost_fds {
            writeln!(f, "- FD broke:    {fd}")?;
        }
        for fd in &self.gained_fds {
            writeln!(f, "+ FD appeared: {fd}")?;
        }
        for k in &self.lost_keys {
            writeln!(f, "- key broke:    {k}")?;
        }
        for k in &self.gained_keys {
            writeln!(f, "+ key appeared: {k}")?;
        }
        writeln!(
            f,
            "redundant values: {} -> {}",
            self.redundant_before, self.redundant_after
        )
    }
}

/// Compute the drift between two reports. An FD counts as *retained* when
/// the new report contains it exactly or a stronger version (same class
/// and RHS with an LHS subset) — minimality can shift the reported LHS
/// without the constraint actually breaking.
pub fn diff_reports(old: &DiscoveryReport, new: &DiscoveryReport) -> ReportDiff {
    let retained_in = |fd: &Xfd, report: &DiscoveryReport| {
        report
            .fds
            .iter()
            .any(|other| fd == other || fd.is_weakening_of(other))
    };
    let key_retained_in = |key: &XmlKey, report: &DiscoveryReport| {
        report.keys.iter().any(|other| {
            key.tuple_class == other.tuple_class && other.lhs.iter().all(|p| key.lhs.contains(p))
        })
    };
    ReportDiff {
        lost_fds: old
            .fds
            .iter()
            .filter(|fd| !retained_in(fd, new))
            .cloned()
            .collect(),
        gained_fds: new
            .fds
            .iter()
            .filter(|fd| !retained_in(fd, old))
            .cloned()
            .collect(),
        lost_keys: old
            .keys
            .iter()
            .filter(|k| !key_retained_in(k, new))
            .cloned()
            .collect(),
        gained_keys: new
            .keys
            .iter()
            .filter(|k| !key_retained_in(k, old))
            .cloned()
            .collect(),
        redundant_before: old.redundancies.iter().map(|r| r.redundant_values).sum(),
        redundant_after: new.redundancies.iter().map(|r| r.redundant_values).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::driver::discover;
    use xfd_xml::parse;

    fn report(xml: &str) -> crate::driver::RunOutcome {
        discover(&parse(xml).unwrap(), &DiscoveryConfig::default())
    }

    #[test]
    fn identical_documents_have_no_drift() {
        let xml = "<w><b><i>1</i><t>A</t></b><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>";
        let d = diff_reports(&report(xml), &report(xml));
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn broken_fd_is_reported_as_lost() {
        let old =
            report("<w><b><i>1</i><t>A</t></b><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>");
        let new = report(
            "<w><b><i>1</i><t>A</t></b><b><i>1</i><t>OOPS</t></b><b><i>2</i><t>B</t></b></w>",
        );
        let d = diff_reports(&old, &new);
        assert!(
            d.lost_fds
                .iter()
                .any(|fd| fd.to_string() == "{./i} -> ./t w.r.t. C_b"),
            "{d}"
        );
    }

    #[test]
    fn strengthened_lhs_is_not_drift() {
        // Old: {i, x} → t minimal; new: {i} → t (stronger). Retained.
        let old = report(
            "<w><b><i>1</i><x>p</x><t>A</t></b><b><i>1</i><x>q</x><t>B</t></b>\
                <b><i>2</i><x>p</x><t>C</t></b><b><i>2</i><x>q</x><t>D</t></b></w>",
        );
        let new = report(
            "<w><b><i>1</i><x>p</x><t>A</t></b><b><i>1</i><x>q</x><t>A</t></b>\
                <b><i>2</i><x>p</x><t>C</t></b><b><i>2</i><x>q</x><t>C</t></b></w>",
        );
        let d = diff_reports(&old, &new);
        // Whatever composite FDs old had with class C_b and rhs ./t must
        // not be *lost* if {./i} → ./t now holds.
        assert!(
            !d.lost_fds
                .iter()
                .any(|fd| fd.rhs.to_string() == "./t" && fd.lhs.len() == 2),
            "{d}"
        );
    }

    #[test]
    fn redundancy_totals_are_tracked() {
        let old = report("<w><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>");
        let new =
            report("<w><b><i>1</i><t>A</t></b><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>");
        let d = diff_reports(&old, &new);
        assert!(d.redundant_after > d.redundant_before, "{d}");
    }

    #[test]
    fn display_lists_changes() {
        let old =
            report("<w><b><i>1</i><t>A</t></b><b><i>1</i><t>A</t></b><b><i>2</i><t>B</t></b></w>");
        let new =
            report("<w><b><i>1</i><t>A</t></b><b><i>1</i><t>X</t></b><b><i>2</i><t>B</t></b></w>");
        let text = diff_reports(&old, &new).to_string();
        assert!(text.contains("FD broke"), "{text}");
        assert!(text.contains("redundant values:"), "{text}");
    }
}
