//! Wire codec for cluster-dispatched relation passes.
//!
//! A coordinator ships a [`crate::memo::WaveTask`] (relation id, memo
//! fingerprint, incoming partition targets) to a worker process holding a
//! byte-identical forest; the worker runs `process_relation` and ships the
//! [`RelationOutput`] back. Both directions use this module: little-endian
//! fixed-width integers, length-prefixed sequences, no framing (the
//! transport frames). `RelationOutput` stays crate-private — the cluster
//! layer only ever sees encoded bytes, via
//! [`crate::memo::run_task`] / [`crate::memo::PassRunner`].
//!
//! Decoding is strict and panic-free: truncation, trailing bytes and
//! values that would later violate an invariant (a degenerate pair `a = a`
//! would panic `PairSet::insert`) are all typed errors. A decode error on
//! the coordinator merely forces the pass to recompute in process.

use xfd_partition::{AttrSet, PairSet};
use xfd_relation::{ComplexColumnMode, OrderMode, RelId, SetColumnMode};

use crate::config::{DiscoveryConfig, PruneConfig};
use crate::intra::RunStats;
use crate::lattice::IntraFd;
use crate::target::PartitionTarget;
use crate::xfd::{RawInterFd, RawInterKey, RelationDiscovery, RelationOutput, TargetStats};

/// Why a wire blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The blob ends before the advertised content does.
    Truncated,
    /// Bytes remain after the last field.
    TrailingBytes,
    /// A tag or enum discriminant is out of range.
    BadTag(&'static str),
    /// A value violates a structural invariant (e.g. a pair `a = a`).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire blob truncated"),
            WireError::TrailingBytes => write!(f, "wire blob has trailing bytes"),
            WireError::BadTag(what) => write!(f, "wire blob has an invalid {what}"),
            WireError::BadValue(what) => write!(f, "wire blob has an out-of-range {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte reader over a wire blob; every read is bounds-checked.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = <[u8; 4]>::try_from(self.take(4)?).map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, WireError> {
        let b = <[u8; 16]>::try_from(self.take(16)?).map_err(|_| WireError::Truncated)?;
        Ok(u128::from_le_bytes(b))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::BadValue("usize"))
    }

    /// A sequence length, sanity-bounded by the bytes that remain (each
    /// element needs at least `min_elem_bytes`), so a corrupt length can
    /// never drive a huge allocation.
    pub(crate) fn len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        let remaining = self.bytes.len().saturating_sub(self.pos);
        if n > remaining / min_elem_bytes.max(1) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::BadTag("bool")),
        }
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_opt_usize(out: &mut Vec<u8>, v: Option<usize>) {
    match v {
        None => out.push(0),
        Some(n) => {
            out.push(1);
            put_usize(out, n);
        }
    }
}

fn opt_usize(r: &mut Reader<'_>) -> Result<Option<usize>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.usize()?)),
        _ => Err(WireError::BadTag("option")),
    }
}

/// Serialize a full [`DiscoveryConfig`]. The coordinator resolves
/// `threads` before encoding (see the cluster crate), so auto-detection
/// never runs twice; everything else ships verbatim — the worker's pass
/// must read exactly the configuration the coordinator fingerprinted.
pub fn encode_config(config: &DiscoveryConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(match config.encode.set_columns {
        SetColumnMode::None => 0,
        SetColumnMode::SimpleOnly => 1,
        SetColumnMode::All => 2,
    });
    out.push(match config.encode.complex_columns {
        ComplexColumnMode::NodeKey => 0,
        ComplexColumnMode::ValueClass => 1,
        ComplexColumnMode::Omit => 2,
    });
    out.push(match config.encode.order {
        OrderMode::Unordered => 0,
        OrderMode::Ordered => 1,
    });
    put_bool(&mut out, config.encode.numeric_values);
    put_opt_usize(&mut out, config.max_lhs_size);
    put_bool(&mut out, config.inter_relation);
    put_bool(&mut out, config.empty_lhs);
    put_bool(&mut out, config.prune.rule1);
    put_bool(&mut out, config.prune.rule2);
    put_bool(&mut out, config.prune.key_prune);
    put_usize(&mut out, config.max_partition_targets);
    put_bool(&mut out, config.keep_uninteresting);
    put_bool(&mut out, config.parallel);
    put_usize(&mut out, config.threads);
    put_opt_usize(&mut out, config.cache_budget);
    put_bool(&mut out, config.error_only_kernel);
    out
}

/// Decode a configuration encoded by [`encode_config`].
pub fn decode_config(bytes: &[u8]) -> Result<DiscoveryConfig, WireError> {
    let mut r = Reader::new(bytes);
    let set_columns = match r.u8()? {
        0 => SetColumnMode::None,
        1 => SetColumnMode::SimpleOnly,
        2 => SetColumnMode::All,
        _ => return Err(WireError::BadTag("set-column mode")),
    };
    let complex_columns = match r.u8()? {
        0 => ComplexColumnMode::NodeKey,
        1 => ComplexColumnMode::ValueClass,
        2 => ComplexColumnMode::Omit,
        _ => return Err(WireError::BadTag("complex-column mode")),
    };
    let order = match r.u8()? {
        0 => OrderMode::Unordered,
        1 => OrderMode::Ordered,
        _ => return Err(WireError::BadTag("order mode")),
    };
    let numeric_values = r.bool()?;
    let config = DiscoveryConfig {
        encode: xfd_relation::EncodeConfig {
            set_columns,
            complex_columns,
            order,
            numeric_values,
        },
        max_lhs_size: opt_usize(&mut r)?,
        inter_relation: r.bool()?,
        empty_lhs: r.bool()?,
        prune: PruneConfig {
            rule1: r.bool()?,
            rule2: r.bool()?,
            key_prune: r.bool()?,
        },
        max_partition_targets: r.usize()?,
        keep_uninteresting: r.bool()?,
        parallel: r.bool()?,
        threads: r.usize()?,
        cache_budget: opt_usize(&mut r)?,
        error_only_kernel: r.bool()?,
    };
    r.finish()?;
    Ok(config)
}

fn attrset_from_bits(bits: u128) -> AttrSet {
    let mut s = AttrSet::empty();
    let mut rest = bits;
    while rest != 0 {
        let i = rest.trailing_zeros() as usize;
        s = s.insert(i);
        rest &= rest - 1;
    }
    s
}

fn put_pairs(out: &mut Vec<u8>, pairs: &PairSet) {
    put_usize(out, pairs.len());
    for &(a, b) in pairs.pairs() {
        put_u32(out, a);
        put_u32(out, b);
    }
}

fn read_pairs(r: &mut Reader<'_>) -> Result<PairSet, WireError> {
    let n = r.len(8)?;
    let mut set = PairSet::new();
    for _ in 0..n {
        let a = r.u32()?;
        let b = r.u32()?;
        if a == b {
            return Err(WireError::BadValue("pair"));
        }
        set.insert(a, b);
    }
    Ok(set)
}

fn put_lhs_levels(out: &mut Vec<u8>, levels: &[(RelId, AttrSet)]) {
    put_usize(out, levels.len());
    for &(rel, set) in levels {
        put_u32(out, rel.0);
        put_u128(out, set.bits());
    }
}

fn read_lhs_levels(r: &mut Reader<'_>) -> Result<Vec<(RelId, AttrSet)>, WireError> {
    let n = r.len(20)?;
    let mut levels = Vec::with_capacity(n);
    for _ in 0..n {
        let rel = RelId(r.u32()?);
        let set = attrset_from_bits(r.u128()?);
        levels.push((rel, set));
    }
    Ok(levels)
}

pub(crate) fn put_target(out: &mut Vec<u8>, t: &PartitionTarget) {
    put_u32(out, t.origin.0);
    put_usize(out, t.rhs);
    put_lhs_levels(out, &t.lhs_levels);
    put_pairs(out, &t.fd_target);
    match &t.key_target {
        None => out.push(0),
        Some(kt) => {
            out.push(1);
            put_pairs(out, kt);
        }
    }
    put_usize(out, t.satisfied_fd.len());
    for &s in &t.satisfied_fd {
        put_u128(out, s.bits());
    }
    put_usize(out, t.satisfied_key.len());
    for &s in &t.satisfied_key {
        put_u128(out, s.bits());
    }
}

pub(crate) fn read_target(r: &mut Reader<'_>) -> Result<PartitionTarget, WireError> {
    let origin = RelId(r.u32()?);
    let rhs = r.usize()?;
    let lhs_levels = read_lhs_levels(r)?;
    let fd_target = read_pairs(r)?;
    let key_target = match r.u8()? {
        0 => None,
        1 => Some(read_pairs(r)?),
        _ => return Err(WireError::BadTag("key target")),
    };
    let n_fd = r.len(16)?;
    let mut satisfied_fd = Vec::with_capacity(n_fd);
    for _ in 0..n_fd {
        satisfied_fd.push(attrset_from_bits(r.u128()?));
    }
    let n_key = r.len(16)?;
    let mut satisfied_key = Vec::with_capacity(n_key);
    for _ in 0..n_key {
        satisfied_key.push(attrset_from_bits(r.u128()?));
    }
    Ok(PartitionTarget {
        origin,
        rhs,
        lhs_levels,
        fd_target,
        key_target,
        satisfied_fd,
        satisfied_key,
    })
}

fn put_run_stats(out: &mut Vec<u8>, s: &RunStats) {
    put_usize(out, s.nodes_visited);
    put_usize(out, s.nodes_key_skipped);
    put_usize(out, s.products);
    put_usize(out, s.partitions_built);
    put_usize(out, s.max_level);
    put_usize(out, s.cache_hits);
    put_usize(out, s.cache_misses);
    put_usize(out, s.evictions);
    put_usize(out, s.peak_resident_bytes);
    put_usize(out, s.products_error_only);
    put_usize(out, s.products_materialized);
    put_usize(out, s.early_exits);
    put_usize(out, s.summary_hits);
}

fn read_run_stats(r: &mut Reader<'_>) -> Result<RunStats, WireError> {
    Ok(RunStats {
        nodes_visited: r.usize()?,
        nodes_key_skipped: r.usize()?,
        products: r.usize()?,
        partitions_built: r.usize()?,
        max_level: r.usize()?,
        cache_hits: r.usize()?,
        cache_misses: r.usize()?,
        evictions: r.usize()?,
        peak_resident_bytes: r.usize()?,
        products_error_only: r.usize()?,
        products_materialized: r.usize()?,
        early_exits: r.usize()?,
        summary_hits: r.usize()?,
    })
}

/// Serialize one relation pass's full output.
pub(crate) fn encode_output(out: &RelationOutput) -> Vec<u8> {
    let mut b = Vec::with_capacity(256);
    put_u32(&mut b, out.local.rel.0);
    put_usize(&mut b, out.local.fds.len());
    for fd in &out.local.fds {
        put_u128(&mut b, fd.lhs.bits());
        put_usize(&mut b, fd.rhs);
    }
    put_usize(&mut b, out.local.keys.len());
    for &k in &out.local.keys {
        put_u128(&mut b, k.bits());
    }
    put_usize(&mut b, out.inter_fds.len());
    for fd in &out.inter_fds {
        put_u32(&mut b, fd.origin.0);
        put_usize(&mut b, fd.rhs);
        put_lhs_levels(&mut b, &fd.lhs_levels);
    }
    put_usize(&mut b, out.inter_keys.len());
    for key in &out.inter_keys {
        put_u32(&mut b, key.origin.0);
        put_lhs_levels(&mut b, &key.lhs_levels);
    }
    put_run_stats(&mut b, &out.lattice);
    put_usize(&mut b, out.targets.created);
    put_usize(&mut b, out.targets.propagated);
    put_usize(&mut b, out.targets.dropped_impossible);
    put_usize(&mut b, out.targets.dropped_overflow);
    put_usize(&mut b, out.outgoing.len());
    for t in &out.outgoing {
        put_target(&mut b, t);
    }
    b
}

/// Decode a relation-pass output encoded by [`encode_output`].
pub(crate) fn decode_output(bytes: &[u8]) -> Result<RelationOutput, WireError> {
    let mut r = Reader::new(bytes);
    let rel = RelId(r.u32()?);
    let n_fds = r.len(24)?;
    let mut fds = Vec::with_capacity(n_fds);
    for _ in 0..n_fds {
        let lhs = attrset_from_bits(r.u128()?);
        let rhs = r.usize()?;
        fds.push(IntraFd { lhs, rhs });
    }
    let n_keys = r.len(16)?;
    let mut keys = Vec::with_capacity(n_keys);
    for _ in 0..n_keys {
        keys.push(attrset_from_bits(r.u128()?));
    }
    let n_inter_fds = r.len(20)?;
    let mut inter_fds = Vec::with_capacity(n_inter_fds);
    for _ in 0..n_inter_fds {
        let origin = RelId(r.u32()?);
        let rhs = r.usize()?;
        let lhs_levels = read_lhs_levels(&mut r)?;
        inter_fds.push(RawInterFd {
            origin,
            rhs,
            lhs_levels,
        });
    }
    let n_inter_keys = r.len(12)?;
    let mut inter_keys = Vec::with_capacity(n_inter_keys);
    for _ in 0..n_inter_keys {
        let origin = RelId(r.u32()?);
        let lhs_levels = read_lhs_levels(&mut r)?;
        inter_keys.push(RawInterKey { origin, lhs_levels });
    }
    let lattice = read_run_stats(&mut r)?;
    let targets = TargetStats {
        created: r.usize()?,
        propagated: r.usize()?,
        dropped_impossible: r.usize()?,
        dropped_overflow: r.usize()?,
    };
    let n_outgoing = r.len(20)?;
    let mut outgoing = Vec::with_capacity(n_outgoing);
    for _ in 0..n_outgoing {
        outgoing.push(read_target(&mut r)?);
    }
    r.finish()?;
    Ok(RelationOutput {
        local: RelationDiscovery { rel, fds, keys },
        inter_fds,
        inter_keys,
        lattice,
        targets,
        outgoing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips() {
        let configs = [
            DiscoveryConfig::default(),
            DiscoveryConfig {
                encode: xfd_relation::EncodeConfig {
                    set_columns: SetColumnMode::SimpleOnly,
                    complex_columns: ComplexColumnMode::ValueClass,
                    order: OrderMode::Ordered,
                    numeric_values: true,
                },
                max_lhs_size: Some(3),
                inter_relation: false,
                empty_lhs: false,
                prune: PruneConfig {
                    rule1: false,
                    rule2: true,
                    key_prune: false,
                },
                max_partition_targets: 7,
                keep_uninteresting: true,
                parallel: true,
                threads: 4,
                cache_budget: Some(1 << 20),
                error_only_kernel: false,
            },
        ];
        for config in &configs {
            let bytes = encode_config(config);
            let back = decode_config(&bytes).expect("round-trip");
            assert_eq!(format!("{config:?}"), format!("{back:?}"));
        }
        assert!(decode_config(&[]).is_err());
        let mut trailing = encode_config(&DiscoveryConfig::default());
        trailing.push(0);
        assert_eq!(
            decode_config(&trailing).err(),
            Some(WireError::TrailingBytes)
        );
    }

    #[test]
    fn output_roundtrips_and_rejects_corruption() {
        let mut fd_target = PairSet::new();
        fd_target.insert(3, 1);
        fd_target.insert(2, 7);
        let mut key_target = PairSet::new();
        key_target.insert(0, 9);
        let out = RelationOutput {
            local: RelationDiscovery {
                rel: RelId(2),
                fds: vec![IntraFd {
                    lhs: AttrSet::single(1).insert(3),
                    rhs: 2,
                }],
                keys: vec![AttrSet::single(0)],
            },
            inter_fds: vec![RawInterFd {
                origin: RelId(4),
                rhs: 1,
                lhs_levels: vec![(RelId(4), AttrSet::single(2)), (RelId(2), AttrSet::empty())],
            }],
            inter_keys: vec![RawInterKey {
                origin: RelId(4),
                lhs_levels: vec![(RelId(4), AttrSet::single(0))],
            }],
            lattice: RunStats {
                nodes_visited: 10,
                nodes_key_skipped: 1,
                products: 5,
                partitions_built: 6,
                max_level: 2,
                cache_hits: 3,
                cache_misses: 4,
                evictions: 0,
                peak_resident_bytes: 999,
                products_error_only: 7,
                products_materialized: 5,
                early_exits: 2,
                summary_hits: 8,
            },
            targets: TargetStats {
                created: 2,
                propagated: 1,
                dropped_impossible: 0,
                dropped_overflow: 0,
            },
            outgoing: vec![PartitionTarget {
                origin: RelId(2),
                rhs: 0,
                lhs_levels: vec![(RelId(2), AttrSet::single(1))],
                fd_target,
                key_target: Some(key_target),
                satisfied_fd: vec![AttrSet::single(4)],
                satisfied_key: vec![],
            }],
        };
        let bytes = encode_output(&out);
        let back = decode_output(&bytes).expect("round-trip");
        assert_eq!(back.local.rel, out.local.rel);
        assert_eq!(back.local.fds, out.local.fds);
        assert_eq!(back.local.keys, out.local.keys);
        assert_eq!(back.inter_fds, out.inter_fds);
        assert_eq!(back.inter_keys, out.inter_keys);
        assert_eq!(back.lattice, out.lattice);
        assert_eq!(back.targets, out.targets);
        assert_eq!(back.outgoing.len(), out.outgoing.len());
        assert_eq!(
            back.outgoing[0].fd_target.pairs(),
            out.outgoing[0].fd_target.pairs()
        );
        assert_eq!(back.outgoing[0].satisfied_fd, out.outgoing[0].satisfied_fd);
        // Re-encoding the decoded output is byte-identical (PairSet
        // normalization happened on the first encode already).
        assert_eq!(encode_output(&back), bytes);
        // Every strict prefix errors; none panics.
        for cut in 0..bytes.len() {
            assert!(decode_output(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // Single-byte corruption never panics.
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0xff;
            let _ = decode_output(&dirty);
        }
    }
}
