//! XML data redundancy (Definition 11): a satisfied *interesting* XML FD
//! `(C_p, LHS, RHS)` such that `(C_p, LHS)` is **not** an XML Key. Every
//! LHS group with two or more tuples then stores its RHS value redundantly.
//!
//! Rather than cross-referencing the discovered key list (which is bounded
//! by the same search budget as the FDs), the analyzer recomputes the LHS
//! grouping directly from the relations — exact, and it also yields the
//! redundancy *magnitude* (how many RHS values are stored redundantly).

use std::collections::HashMap;

use xfd_partition::AttrSet;
use xfd_relation::{Forest, RelId};

use crate::fd::Xfd;
use crate::interesting::{fd_is_interesting, inter_fd_to_xfd, intra_fd_to_xfd};
use crate::xfd::ForestDiscovery;

/// One redundancy finding.
#[derive(Debug, Clone)]
pub struct Redundancy {
    /// The satisfied interesting FD whose LHS fails to be a key.
    pub fd: Xfd,
    /// Number of LHS groups with ≥ 2 tuples.
    pub groups: usize,
    /// Σ (|group| − 1): how many tuples store an RHS value that is already
    /// determined by another tuple.
    pub redundant_values: usize,
    /// Up to three example RHS values that are stored redundantly
    /// (rendered; set-valued cells show their cardinality).
    pub examples: Vec<String>,
}

/// Map each tuple of `origin` to its ancestor tuple in `target` (which must
/// be `origin` itself or one of its ancestors in the relation tree).
fn ancestor_map(forest: &Forest, origin: RelId, target: RelId) -> Vec<u32> {
    let n = forest.relation(origin).n_tuples();
    let mut map: Vec<u32> = (0..n as u32).collect();
    let mut cur = origin;
    while cur != target {
        let rel = forest.relation(cur);
        let parent = rel.parent.expect("target must be an ancestor of origin");
        for m in &mut map {
            *m = rel.parent_of[*m as usize];
        }
        cur = parent;
    }
    map
}

/// Group the origin relation's tuples by the joined LHS values; returns
/// `(groups_with_2_plus, redundant_values)`.
///
/// Agreement follows the semantics the discovery algorithm implements
/// (see DESIGN.md, "node-identity semantics for ancestor attributes"):
/// a ⊥ cell agrees with nothing *except* the same underlying node — two
/// tuples sharing the ancestor tuple that carries the ⊥ agree on it
/// (that is exactly what `updatePT`'s pair-collapse rule assumes). In
/// encoding terms a ⊥ cell contributes `(⊥, ancestor-tuple-id)` to the
/// grouping key; for origin-level attributes the ancestor is the tuple
/// itself, which reproduces plain strong satisfaction.
pub fn lhs_grouping(forest: &Forest, origin: RelId, levels: &[(RelId, AttrSet)]) -> (usize, usize) {
    let members = lhs_group_members(forest, origin, levels);
    let groups = members.iter().filter(|g| g.len() >= 2).count();
    let redundant = members
        .iter()
        .filter(|g| g.len() >= 2)
        .map(|g| g.len() - 1)
        .sum();
    (groups, redundant)
}

/// The actual LHS groups (tuple indices of the origin relation), under the
/// same agreement semantics as [`lhs_grouping`]. Singleton groups included.
pub fn lhs_group_members(
    forest: &Forest,
    origin: RelId,
    levels: &[(RelId, AttrSet)],
) -> Vec<Vec<u32>> {
    let n = forest.relation(origin).n_tuples();
    let mut keys: Vec<Vec<u64>> = vec![Vec::new(); n];
    for &(lrel, attrs) in levels {
        let amap = ancestor_map(forest, origin, lrel);
        let rel = forest.relation(lrel);
        for a in attrs.iter() {
            let cells = &rel.columns[a].cells;
            for (t, key) in keys.iter_mut().enumerate() {
                match cells[amap[t] as usize] {
                    Some(v) => {
                        key.push(0);
                        key.push(v);
                    }
                    None => {
                        key.push(1);
                        key.push(u64::from(amap[t]));
                    }
                }
            }
        }
    }
    let mut groups: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
    for (t, key) in keys.into_iter().enumerate() {
        groups.entry(key).or_default().push(t as u32);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Up to three rendered RHS example values from the ≥2-sized LHS groups.
fn rhs_examples(
    forest: &Forest,
    origin: RelId,
    levels: &[(RelId, AttrSet)],
    rhs: usize,
) -> Vec<String> {
    use xfd_relation::ColumnKind;
    let rel = forest.relation(origin);
    let col = &rel.columns[rhs];
    let mut out = Vec::new();
    for g in lhs_group_members(forest, origin, levels) {
        if g.len() < 2 {
            continue;
        }
        if let Some(v) = col.cells[g[0] as usize] {
            let rendered = match col.kind {
                ColumnKind::Simple => {
                    format!("{:?}", forest.dictionary.resolve_str(v))
                }
                ColumnKind::Complex => format!("#{v}"),
                ColumnKind::SetValue => {
                    format!(
                        "a set of {} values",
                        forest.dictionary.resolve_multiset(v).len()
                    )
                }
            };
            let entry = format!("{rendered} ×{}", g.len());
            if !out.contains(&entry) {
                out.push(entry);
            }
            if out.len() == 3 {
                break;
            }
        }
    }
    out
}

/// Find every redundancy indicated by the discovered interesting FDs.
pub fn analyze(forest: &Forest, disc: &ForestDiscovery) -> Vec<Redundancy> {
    let mut out = Vec::new();
    for rd in &disc.relations {
        if forest.relation(rd.rel).parent.is_none() {
            continue;
        }
        for fd in &rd.fds {
            if !fd_is_interesting(forest, rd.rel, fd.rhs) {
                continue;
            }
            let levels = [(rd.rel, fd.lhs)];
            let (groups, redundant_values) = lhs_grouping(forest, rd.rel, &levels);
            if groups > 0 {
                out.push(Redundancy {
                    fd: intra_fd_to_xfd(forest, rd.rel, fd),
                    groups,
                    redundant_values,
                    examples: rhs_examples(forest, rd.rel, &levels, fd.rhs),
                });
            }
        }
    }
    for fd in &disc.inter_fds {
        if !fd_is_interesting(forest, fd.origin, fd.rhs) {
            continue;
        }
        let (groups, redundant_values) = lhs_grouping(forest, fd.origin, &fd.lhs_levels);
        if groups > 0 {
            out.push(Redundancy {
                fd: inter_fd_to_xfd(forest, fd),
                groups,
                redundant_values,
                examples: rhs_examples(forest, fd.origin, &fd.lhs_levels, fd.rhs),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscoveryConfig;
    use crate::xfd::discover_forest;
    use xfd_relation::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn redundancies(xml: &str) -> Vec<Redundancy> {
        let t = parse(xml).unwrap();
        let schema = infer_schema(&t);
        let forest = encode(&t, &schema, &EncodeConfig::default());
        let disc = discover_forest(&forest, &DiscoveryConfig::default());
        analyze(&forest, &disc)
    }

    #[test]
    fn examples_show_the_duplicated_values() {
        let reds = redundancies(
            "<w>\
             <book><isbn>1</isbn><title>DBMS</title></book>\
             <book><isbn>1</isbn><title>DBMS</title></book>\
             <book><isbn>2</isbn><title>TCP</title></book>\
             </w>",
        );
        let r = reds
            .iter()
            .find(|r| r.fd.to_string() == "{./isbn} -> ./title w.r.t. C_book")
            .unwrap();
        assert_eq!(r.examples, vec!["\"DBMS\" ×2".to_string()]);
    }

    #[test]
    fn duplicate_titles_for_one_isbn_are_redundant() {
        let reds = redundancies(
            "<w>\
             <book><isbn>1</isbn><title>DBMS</title></book>\
             <book><isbn>1</isbn><title>DBMS</title></book>\
             <book><isbn>1</isbn><title>DBMS</title></book>\
             <book><isbn>2</isbn><title>TCP</title></book>\
             </w>",
        );
        let r = reds
            .iter()
            .find(|r| r.fd.to_string() == "{./isbn} -> ./title w.r.t. C_book")
            .expect("isbn→title redundancy");
        assert_eq!(r.groups, 1);
        assert_eq!(r.redundant_values, 2, "two extra copies of the title");
    }

    #[test]
    fn key_lhs_produces_no_redundancy() {
        let reds = redundancies(
            "<w>\
             <book><isbn>1</isbn><title>A</title></book>\
             <book><isbn>2</isbn><title>A</title></book>\
             </w>",
        );
        assert!(
            reds.iter()
                .all(|r| !r.fd.to_string().starts_with("{./isbn}")),
            "isbn is a key here, no redundancy: {:?}",
            reds.iter().map(|r| r.fd.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn inter_relation_redundancy_counts_cross_store_duplicates() {
        // Same chain (name), same isbn, same price at two stores: the price
        // is stored redundantly (the paper's Borders example).
        let reds = redundancies(
            "<w>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book>\
               <book><isbn>2</isbn><price>20</price></book></store>\
             <store><name>Borders</name><book><isbn>1</isbn><price>10</price></book></store>\
             <store><name>WHSmith</name><book><isbn>1</isbn><price>12</price></book></store>\
             </w>",
        );
        let r = reds
            .iter()
            .find(|r| r.fd.to_string() == "{./isbn, ../name} -> ./price w.r.t. C_book")
            .expect("FD2-style redundancy");
        assert_eq!(r.groups, 1);
        assert_eq!(r.redundant_values, 1);
    }

    #[test]
    fn set_element_redundancy_for_fd3() {
        // The author *set* is stored redundantly for a repeated ISBN.
        let reds = redundancies(
            "<w>\
             <book><isbn>1</isbn><a>R</a><a>G</a><title>T</title></book>\
             <book><isbn>1</isbn><a>G</a><a>R</a><title>T</title></book>\
             <book><isbn>2</isbn><a>R</a><title>U</title></book>\
             </w>",
        );
        assert!(
            reds.iter()
                .any(|r| r.fd.to_string() == "{./isbn} -> ./a w.r.t. C_book"),
            "{:?}",
            reds.iter().map(|r| r.fd.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn null_lhs_tuples_do_not_group() {
        let reds = redundancies(
            "<w>\
             <book><title>A</title></book>\
             <book><title>A</title></book>\
             <book><isbn>2</isbn><title>B</title></book>\
             </w>",
        );
        // {./isbn} → ./title: books without isbn have ⊥ LHS — they never
        // agree, so no redundancy via isbn.
        assert!(reds
            .iter()
            .all(|r| !r.fd.to_string().starts_with("{./isbn}")));
    }
}
