//! Determinism properties of the lattice passes: intra-relation discovery
//! and the full forest pass must be bit-identical across thread counts and
//! partition-cache byte budgets.

use discoverxfd::intra::{discover_intra, IntraOptions};
use discoverxfd::xfd::discover_forest;
use discoverxfd::DiscoveryConfig;
use proptest::prelude::*;
use xfd_datagen as datagen;
use xfd_relation::{encode, EncodeConfig};
use xfd_schema::infer_schema;

/// A random table at maximum shape (5 columns × 24 rows) over a small
/// value domain with nulls; tests slice it down to a random `cols × rows`
/// sub-table so FDs, keys and deep lattice levels all occur.
fn table() -> impl Strategy<Value = Vec<Vec<Option<u64>>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![5 => (0u64..4).prop_map(Some), 1 => Just(None)],
            24usize..25,
        ),
        5usize..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Speculative per-level precompute (any thread count) and byte-budget
    /// eviction never change discovered FDs, keys, or the nodes visited.
    #[test]
    fn intra_parallel_and_budget_match_sequential(
        full in table(),
        n_cols in 2usize..6,
        n in 1usize..25,
    ) {
        let refs: Vec<&[Option<u64>]> = full[..n_cols].iter().map(|c| &c[..n]).collect();
        let seq = discover_intra(&refs, n, &IntraOptions::default());
        for opts in [
            IntraOptions { threads: 2, ..Default::default() },
            IntraOptions { threads: 0, ..Default::default() },
            IntraOptions { cache_budget: Some(512), ..Default::default() },
            IntraOptions { threads: 3, cache_budget: Some(2048), ..Default::default() },
        ] {
            let got = discover_intra(&refs, n, &opts);
            prop_assert_eq!(&got.fds, &seq.fds, "FDs drifted under {:?}", opts);
            prop_assert_eq!(&got.keys, &seq.keys, "keys drifted under {:?}", opts);
            prop_assert_eq!(got.stats.nodes_visited, seq.stats.nodes_visited);
        }
    }

    /// Full forest discovery (inter-relation targets included) is
    /// result-identical between the sequential pass, wave parallelism and
    /// intra-relation level parallelism, across random generated forests.
    #[test]
    fn forest_parallel_matches_sequential(which in 0u8..3, seed in 0u64..1000) {
        let tree = match which {
            0 => datagen::warehouse_scaled(&datagen::WarehouseSpec {
                states: 2,
                stores_per_state: 2,
                books_per_store: 4,
                seed,
                ..Default::default()
            }),
            1 => datagen::dblp_like(&datagen::DblpSpec {
                articles: 6,
                inproceedings: 4,
                seed,
                ..Default::default()
            }),
            _ => datagen::mondial_like(&datagen::MondialSpec {
                countries: 3,
                provinces: 2,
                cities: 2,
                seed,
            }),
        };
        let schema = infer_schema(&tree);
        let forest = encode(&tree, &schema, &EncodeConfig::default());
        let seq = discover_forest(&forest, &DiscoveryConfig::default());
        for (threads, cache_budget) in [(2, None), (0, None), (3, Some(8192))] {
            let par = discover_forest(&forest, &DiscoveryConfig {
                parallel: true,
                threads,
                cache_budget,
                ..Default::default()
            });
            prop_assert_eq!(&par.inter_fds, &seq.inter_fds);
            prop_assert_eq!(&par.inter_keys, &seq.inter_keys);
            prop_assert_eq!(par.relations.len(), seq.relations.len());
            for (a, b) in seq.relations.iter().zip(par.relations.iter()) {
                prop_assert_eq!(a.rel, b.rel);
                prop_assert_eq!(&a.fds, &b.fds);
                prop_assert_eq!(&a.keys, &b.keys);
            }
            prop_assert_eq!(&par.target_stats, &seq.target_stats);
        }
    }
}
