//! End-to-end tests: a real server on an ephemeral port, raw TCP clients.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use xfd_server::{Server, ServerConfig, ServerHandle};

/// A parsed raw HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn spawn_server(
    mut config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Send raw request bytes, read the full `Connection: close` response.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

// The helpers ask for `Connection: close` so `read_to_end` framing works;
// keep-alive reuse has dedicated tests below.
fn get(addr: SocketAddr, path: &str) -> Reply {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    request_with_body(addr, "POST", path, body)
}

fn put(addr: SocketAddr, path: &str) -> Reply {
    request_with_body(addr, "PUT", path, "")
}

fn delete(addr: SocketAddr, path: &str) -> Reply {
    request_with_body(addr, "DELETE", path, "")
}

fn request_with_body(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    raw_request(
        addr,
        format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The one volatile field in the JSON report is the total wall time;
/// replace its value so byte comparison is meaningful.
fn normalize_total_ms(s: &str) -> String {
    let Some(start) = s.find("\"total_ms\": ") else {
        return s.to_string();
    };
    let value_start = start + "\"total_ms\": ".len();
    let value_len = s[value_start..]
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(0);
    format!("{}X{}", &s[..value_start], &s[value_start + value_len..])
}

const BOOKSTORE: &str = "<shop>\
    <book><isbn>1</isbn><title>DBMS</title><author>R</author></book>\
    <book><isbn>1</isbn><title>DBMS</title><author>G</author></book>\
    <book><isbn>2</isbn><title>TCP/IP</title><author>S</author></book>\
  </shop>";

#[test]
fn healthz_and_metrics_respond() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\": \"ok\"}\n");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("discoverxfd_uptime_seconds"));
    assert!(metrics
        .body
        .contains("# TYPE discoverxfd_queue_depth gauge"));
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn discover_matches_the_batch_pipeline_byte_for_byte() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let reply = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("X-Cache"), Some("miss"));
    assert_eq!(reply.header("Content-Type"), Some("application/json"));

    let tree = xfd_xml::parse(BOOKSTORE).unwrap();
    let outcome = discoverxfd::discover(&tree, &discoverxfd::DiscoveryConfig::default());
    let expected = discoverxfd::report::render_json(&outcome);
    assert_eq!(
        normalize_total_ms(&reply.body),
        normalize_total_ms(&expected)
    );
    // The report is not degenerate: the isbn redundancy is in there.
    assert!(reply.body.contains("isbn"));
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn chunked_discover_matches_content_length_and_shares_the_cache() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let plain = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(plain.status, 200, "{}", plain.body);
    assert_eq!(plain.header("X-Cache"), Some("miss"));

    // The same document, chunked across two frames: the digest is computed
    // over the decoded bytes, so this hits the result cache parse-free.
    let (a, b) = BOOKSTORE.split_at(BOOKSTORE.len() / 2);
    let mut raw = Vec::from(
        &b"POST /v1/discover HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"[..],
    );
    for part in [a, b] {
        raw.extend_from_slice(format!("{:x}\r\n", part.len()).as_bytes());
        raw.extend_from_slice(part.as_bytes());
        raw.extend_from_slice(b"\r\n");
    }
    raw.extend_from_slice(b"0\r\n\r\n");
    let chunked = raw_request(addr, &raw);
    assert_eq!(chunked.status, 200, "{}", chunked.body);
    assert_eq!(chunked.header("X-Cache"), Some("hit"));
    assert_eq!(chunked.body, plain.body);

    let metrics = get(addr, "/metrics");
    assert!(
        metrics.body.contains("discoverxfd_parse_free_hits_total 1"),
        "{}",
        metrics.body
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn repeated_documents_are_served_from_the_result_cache() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let first = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Cache"), Some("miss"));
    let second = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    // A different config must not hit the same cache entry.
    let other = post(addr, "/v1/discover?max-lhs=1", BOOKSTORE);
    assert_eq!(other.status, 200);
    assert_eq!(other.header("X-Cache"), Some("miss"));

    let metrics = get(addr, "/metrics").body;
    assert!(
        metrics.contains("discoverxfd_result_cache_hits_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("discoverxfd_runs_total 2"), "{metrics}");
    // Nothing in the smoke traffic may have panicked a worker.
    assert!(
        metrics.contains("discoverxfd_worker_panics_total 0"),
        "{metrics}"
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn async_jobs_poll_to_completion_and_results_are_fetchable() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let accepted = post(addr, "/v1/jobs", BOOKSTORE);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id: u64 = field_u64(&accepted.body, "\"job\": ");
    let result_path = field_str(&accepted.body, "\"result\": \"");

    let deadline = Instant::now() + Duration::from_secs(30);
    let final_status = loop {
        let poll = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(poll.status, 200, "{}", poll.body);
        if poll.body.contains("\"status\": \"done\"") {
            break poll;
        }
        assert!(
            !poll.body.contains("\"status\": \"failed\""),
            "{}",
            poll.body
        );
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(final_status.body.contains("\"result\": \"/v1/results/"));

    let result = get(addr, &result_path);
    assert_eq!(result.status, 200);
    let sync = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(sync.header("X-Cache"), Some("hit"));
    assert_eq!(result.body, sync.body);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn saturated_queue_sheds_load_with_retry_after() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    // A document big enough that one run occupies the single worker while
    // the flood arrives.
    let spec = xfd_datagen::XmarkSpec::with_scale(1.0);
    let doc = xfd_xml::to_xml_string(&xfd_datagen::xmark_like(&spec));

    // Vary a config knob per request: distinct digests (no cache hits),
    // identical parse/discovery work.
    let mut statuses = Vec::new();
    let mut retry_after_seen = false;
    for i in 0..12 {
        let reply = post(
            addr,
            &format!("/v1/jobs?cache-budget={}", 50_000_000 + i),
            &doc,
        );
        if reply.status == 503 {
            retry_after_seen |= reply.header("Retry-After").is_some();
        }
        statuses.push(reply.status);
    }
    assert!(
        statuses.contains(&202),
        "at least one job accepted: {statuses:?}"
    );
    assert!(
        statuses.contains(&503),
        "backpressure must shed some of the flood: {statuses:?}"
    );
    assert!(retry_after_seen, "503 responses carry Retry-After");
    let metrics = get(addr, "/metrics").body;
    assert!(
        metrics.contains("discoverxfd_http_rejected_total{reason=\"queue_full\"}"),
        "{metrics}"
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slow_discoveries_time_out_with_a_pollable_job() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        request_timeout: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let spec = xfd_datagen::XmarkSpec::with_scale(1.0);
    let doc = xfd_xml::to_xml_string(&xfd_datagen::xmark_like(&spec));
    let reply = post(addr, "/v1/discover", &doc);
    assert_eq!(reply.status, 504, "{}", reply.body);
    let job_id: u64 = field_u64(&reply.body, "\"job\": ");

    // The job keeps running in the background; poll it to completion.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let poll = get(addr, &format!("/v1/jobs/{job_id}"));
        if poll.body.contains("\"status\": \"done\"") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job never finished: {}",
            poll.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_clean_errors() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        max_body_bytes: 512,
        ..ServerConfig::default()
    });

    // Unknown endpoint and wrong methods.
    assert_eq!(get(addr, "/nope").status, 404);
    let wrong = delete(addr, "/healthz");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("Allow"), Some("GET"));
    assert_eq!(get(addr, "/v1/discover").status, 405);

    // Body framing.
    let no_length = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(no_length.status, 411);
    let huge = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 1024\r\n\r\n",
    );
    assert_eq!(huge.status, 413);
    // Chunked bodies are decoded now; an empty one is just invalid XML.
    let chunked_empty = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(chunked_empty.status, 400);
    assert!(
        chunked_empty.body.contains("invalid XML"),
        "{}",
        chunked_empty.body
    );
    // Other transfer codings stay unimplemented.
    let gzipped = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nTransfer-Encoding: gzip\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(gzipped.status, 501);
    // Chunked payloads obey the same size cap as Content-Length bodies.
    let mut oversized = Vec::from(
        &b"POST /v1/discover HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n400\r\n"[..],
    );
    oversized.extend(std::iter::repeat_n(b'x', 0x400));
    oversized.extend_from_slice(b"\r\n0\r\n\r\n");
    assert_eq!(raw_request(addr, &oversized).status, 413);

    // Bad content.
    let bad_xml = post(addr, "/v1/discover", "<open><unclosed>");
    assert_eq!(bad_xml.status, 400);
    assert!(bad_xml.body.contains("invalid XML"), "{}", bad_xml.body);
    let bad_param = post(addr, "/v1/discover?bogus=1", "<a/>");
    assert_eq!(bad_param.status, 400);
    assert!(bad_param.body.contains("bogus"), "{}", bad_param.body);
    let bad_value = post(addr, "/v1/discover?max-lhs=many", "<a/>");
    assert_eq!(bad_value.status, 400);

    // Bad identifiers.
    assert_eq!(get(addr, "/v1/jobs/notanumber").status, 400);
    assert_eq!(get(addr, "/v1/jobs/123456").status, 404);
    assert_eq!(get(addr, "/v1/results/deadbeef").status, 400);
    assert_eq!(
        get(addr, &format!("/v1/results/{}", "0".repeat(32))).status,
        404
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_queued_jobs_before_exit() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    // Queue several jobs, then immediately request shutdown.
    let mut jobs = Vec::new();
    for i in 0..3 {
        let reply = post(
            addr,
            &format!("/v1/jobs?cache-budget={}", 10_000_000 + i),
            BOOKSTORE,
        );
        assert_eq!(reply.status, 202, "{}", reply.body);
        jobs.push(field_u64(&reply.body, "\"job\": "));
    }
    handle.shutdown();
    // run() returning means: accept loop stopped, queue closed, workers
    // drained every accepted job, all threads joined.
    join.join().unwrap().unwrap();
    // And the server really is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Accepting sockets may linger in the OS backlog; a write/read must
            // fail or return nothing.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    );
}

/// Read one framed (`Content-Length`) response off a keep-alive
/// connection without waiting for EOF.
fn read_framed_reply(reader: &mut impl std::io::BufRead) -> Reply {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read head line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    let length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .expect("framed response has Content-Length")
        .1
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    Reply {
        status,
        headers,
        body: String::from_utf8(body).expect("utf-8 body"),
    }
}

#[test]
fn keep_alive_reuses_one_connection_for_many_requests() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);

    for _ in 0..3 {
        writer
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let reply = read_framed_reply(&mut reader);
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("Connection"), Some("keep-alive"));
        assert_eq!(reply.body, "{\"status\": \"ok\"}\n");
    }

    // A POST whose body is fully consumed also keeps the connection.
    writer
        .write_all(
            format!(
                "POST /v1/discover HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{BOOKSTORE}",
                BOOKSTORE.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let reply = read_framed_reply(&mut reader);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("Connection"), Some("keep-alive"));

    // An explicit close is honored: the response says close and the
    // server EOFs the connection.
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let reply = read_framed_reply(&mut reader);
    assert_eq!(reply.header("Connection"), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closed after Connection: close");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn keep_alive_request_cap_closes_the_connection() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        keep_alive_max_requests: 2,
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = std::io::BufReader::new(stream);
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    assert_eq!(
        read_framed_reply(&mut reader).header("Connection"),
        Some("keep-alive")
    );
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let second = read_framed_reply(&mut reader);
    assert_eq!(
        second.header("Connection"),
        Some("close"),
        "request cap reached"
    );
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    handle.shutdown();
    join.join().unwrap().unwrap();
}

fn corpus_server(
    tag: &str,
) -> (
    std::path::PathBuf,
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let root = std::env::temp_dir().join(format!("xfd-e2e-corpus-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (addr, handle, join) = spawn_server(ServerConfig {
        corpus_root: Some(root.clone()),
        ..ServerConfig::default()
    });
    (root, addr, handle, join)
}

const D1: &str = "<shop><book><isbn>1</isbn><title>A</title><price>7</price></book>\
    <book><isbn>1</isbn><title>A</title><price>7</price></book></shop>";
const D2: &str = "<shop><book><isbn>2</isbn><title>B</title><price>9</price></book></shop>";

#[test]
fn corpus_lifecycle_over_http() {
    let (root, addr, handle, join) = corpus_server("lifecycle");

    assert_eq!(put(addr, "/v1/corpora/shop").status, 201);
    assert_eq!(put(addr, "/v1/corpora/shop").status, 409);

    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d1", D1).status, 201);
    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d2", D2).status, 201);
    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d1", D1).status, 409);
    assert_eq!(
        post(addr, "/v1/corpora/shop/docs?name=bad", "<open>").status,
        400
    );

    let status = get(addr, "/v1/corpora/shop");
    assert_eq!(status.status, 200, "{}", status.body);
    assert!(
        status.body.contains("\"d1\"") && status.body.contains("\"d2\""),
        "{}",
        status.body
    );

    let report = post(addr, "/v1/corpora/shop/discover", "");
    assert_eq!(report.status, 200, "{}", report.body);
    assert_eq!(report.header("X-Corpus-Docs"), Some("2"));
    // Byte-identical to the batch pipeline over the same documents.
    let trees = [xfd_xml::parse(D1).unwrap(), xfd_xml::parse(D2).unwrap()];
    let refs: Vec<&xfd_xml::DataTree> = trees.iter().collect();
    let outcome = discoverxfd::discover_collection(&refs, &discoverxfd::DiscoveryConfig::default());
    // The memoized corpus pipeline reports its own memo counters (which
    // the one-shot batch baseline leaves at zero), so compare everything
    // before the wall-clock/memo tail of the stats object.
    let stable = |s: &str| s.split("\"total_ms\"").next().unwrap_or(s).to_string();
    assert_eq!(
        stable(&report.body),
        stable(&discoverxfd::report::render_json(&outcome))
    );

    assert_eq!(get(addr, "/v1/corpora/ghost").status, 404);
    assert_eq!(delete(addr, "/v1/corpora/shop/docs/d2").status, 200);
    assert_eq!(delete(addr, "/v1/corpora/shop/docs/d2").status, 404);
    assert_eq!(delete(addr, "/v1/corpora/shop").status, 200);
    assert_eq!(get(addr, "/v1/corpora/shop").status, 404);

    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corpora_persist_across_restarts_with_identical_reports() {
    let (root, addr, handle, join) = corpus_server("restart");
    assert_eq!(put(addr, "/v1/corpora/shop").status, 201);
    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d1", D1).status, 201);
    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d2", D2).status, 201);
    let warm = post(addr, "/v1/corpora/shop/discover", "");
    assert_eq!(warm.status, 200);
    handle.shutdown();
    join.join().unwrap().unwrap();

    // A fresh server over the same root sees the same corpus and produces
    // a byte-identical report from a cold memo.
    let (addr, handle, join) = spawn_server(ServerConfig {
        corpus_root: Some(root.clone()),
        ..ServerConfig::default()
    });
    let cold = post(addr, "/v1/corpora/shop/discover", "");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(
        normalize_total_ms(&cold.body),
        normalize_total_ms(&warm.body)
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn traversal_shaped_names_never_touch_the_filesystem() {
    let (root, addr, handle, join) = corpus_server("traversal");
    // First segment decodes to a forbidden name → 400 before any fs access.
    for path in [
        "/v1/corpora/..",
        "/v1/corpora/%2e%2e",
        "/v1/corpora/.hidden",
        "/v1/corpora/caf%C3%A9",
        "/v1/corpora/a%20b",
    ] {
        assert_eq!(put(addr, path).status, 400, "{path}");
        assert_eq!(get(addr, path).status, 400, "{path}");
    }
    // Document names go through the same guard.
    assert_eq!(put(addr, "/v1/corpora/ok").status, 201);
    for doc in ["..", "%2e%2e%2fx", "a%2fb", "caf%C3%A9"] {
        let r = post(addr, &format!("/v1/corpora/ok/docs?name={doc}"), "<a/>");
        assert_eq!(r.status, 400, "{doc}");
    }
    // Digest lookups reject traversal-shaped ids the same way.
    assert_eq!(get(addr, "/v1/results/%2e%2e%2fsecret").status, 400);
    // Only the corpus created through the guard exists on disk.
    let entries: Vec<String> = std::fs::read_dir(&root)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(entries, vec!["ok"]);
    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn ndjson_discover_streams_one_line_per_relation() {
    let (root, addr, handle, join) = corpus_server("ndjson");
    assert_eq!(put(addr, "/v1/corpora/shop").status, 201);
    assert_eq!(post(addr, "/v1/corpora/shop/docs?name=d1", D1).status, 201);

    let stream_request = "POST /v1/corpora/shop/discover HTTP/1.1\r\nHost: t\r\n\
         Accept: application/x-ndjson\r\nContent-Length: 0\r\n\r\n";
    let reply = raw_request(addr, stream_request.as_bytes());
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("Content-Type"), Some("application/x-ndjson"));
    assert_eq!(reply.header("Connection"), Some("close"));
    let lines: Vec<&str> = reply.body.lines().collect();
    assert!(lines.len() >= 2, "progress lines + summary: {:?}", lines);
    for line in &lines[..lines.len() - 1] {
        assert!(line.starts_with("{\"relation\": "), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
    let summary = lines.last().unwrap();
    assert!(summary.contains("\"done\": true"), "{summary}");
    assert!(summary.contains("\"docs\": 1"), "{summary}");

    // Streaming again replays every relation from the memo.
    let reply = raw_request(addr, stream_request.as_bytes());
    for line in reply
        .body
        .lines()
        .filter(|l| l.starts_with("{\"relation\""))
    {
        assert!(line.contains("\"cached\": true"), "{line}");
    }

    // A missing corpus still gets a clean framed error.
    let missing = raw_request(
        addr,
        b"POST /v1/corpora/ghost/discover HTTP/1.1\r\nHost: t\r\n\
          Accept: application/x-ndjson\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(missing.status, 404);
    handle.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

fn field_u64(json: &str, prefix: &str) -> u64 {
    let start = json.find(prefix).expect(prefix) + prefix.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

fn field_str(json: &str, prefix: &str) -> String {
    let start = json.find(prefix).expect(prefix) + prefix.len();
    json[start..].chars().take_while(|&c| c != '"').collect()
}
