//! End-to-end tests: a real server on an ephemeral port, raw TCP clients.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use xfd_server::{Server, ServerConfig, ServerHandle};

/// A parsed raw HTTP response.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn spawn_server(
    mut config: ServerConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    config.addr = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

/// Send raw request bytes, read the full `Connection: close` response.
fn raw_request(addr: SocketAddr, raw: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("head/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header colon");
            (k.trim().to_string(), v.trim().to_string())
        })
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    raw_request(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The one volatile field in the JSON report is the total wall time;
/// replace its value so byte comparison is meaningful.
fn normalize_total_ms(s: &str) -> String {
    let Some(start) = s.find("\"total_ms\": ") else {
        return s.to_string();
    };
    let value_start = start + "\"total_ms\": ".len();
    let value_len = s[value_start..]
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .unwrap_or(0);
    format!("{}X{}", &s[..value_start], &s[value_start + value_len..])
}

const BOOKSTORE: &str = "<shop>\
    <book><isbn>1</isbn><title>DBMS</title><author>R</author></book>\
    <book><isbn>1</isbn><title>DBMS</title><author>G</author></book>\
    <book><isbn>2</isbn><title>TCP/IP</title><author>S</author></book>\
  </shop>";

#[test]
fn healthz_and_metrics_respond() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\": \"ok\"}\n");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("discoverxfd_uptime_seconds"));
    assert!(metrics
        .body
        .contains("# TYPE discoverxfd_queue_depth gauge"));
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn discover_matches_the_batch_pipeline_byte_for_byte() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let reply = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert_eq!(reply.header("X-Cache"), Some("miss"));
    assert_eq!(reply.header("Content-Type"), Some("application/json"));

    let tree = xfd_xml::parse(BOOKSTORE).unwrap();
    let outcome = discoverxfd::discover(&tree, &discoverxfd::DiscoveryConfig::default());
    let expected = discoverxfd::report::render_json(&outcome);
    assert_eq!(
        normalize_total_ms(&reply.body),
        normalize_total_ms(&expected)
    );
    // The report is not degenerate: the isbn redundancy is in there.
    assert!(reply.body.contains("isbn"));
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn repeated_documents_are_served_from_the_result_cache() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let first = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(first.status, 200);
    assert_eq!(first.header("X-Cache"), Some("miss"));
    let second = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("X-Cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    // A different config must not hit the same cache entry.
    let other = post(addr, "/v1/discover?max-lhs=1", BOOKSTORE);
    assert_eq!(other.status, 200);
    assert_eq!(other.header("X-Cache"), Some("miss"));

    let metrics = get(addr, "/metrics").body;
    assert!(
        metrics.contains("discoverxfd_result_cache_hits_total 1"),
        "{metrics}"
    );
    assert!(metrics.contains("discoverxfd_runs_total 2"), "{metrics}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn async_jobs_poll_to_completion_and_results_are_fetchable() {
    let (addr, handle, join) = spawn_server(ServerConfig::default());
    let accepted = post(addr, "/v1/jobs", BOOKSTORE);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id: u64 = field_u64(&accepted.body, "\"job\": ");
    let result_path = field_str(&accepted.body, "\"result\": \"");

    let deadline = Instant::now() + Duration::from_secs(30);
    let final_status = loop {
        let poll = get(addr, &format!("/v1/jobs/{job_id}"));
        assert_eq!(poll.status, 200, "{}", poll.body);
        if poll.body.contains("\"status\": \"done\"") {
            break poll;
        }
        assert!(
            !poll.body.contains("\"status\": \"failed\""),
            "{}",
            poll.body
        );
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(final_status.body.contains("\"result\": \"/v1/results/"));

    let result = raw_request(
        addr,
        format!("GET {result_path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
    );
    assert_eq!(result.status, 200);
    let sync = post(addr, "/v1/discover", BOOKSTORE);
    assert_eq!(sync.header("X-Cache"), Some("hit"));
    assert_eq!(result.body, sync.body);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn saturated_queue_sheds_load_with_retry_after() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    // A document big enough that one run occupies the single worker while
    // the flood arrives.
    let spec = xfd_datagen::XmarkSpec::with_scale(1.0);
    let doc = xfd_xml::to_xml_string(&xfd_datagen::xmark_like(&spec));

    // Vary a config knob per request: distinct digests (no cache hits),
    // identical parse/discovery work.
    let mut statuses = Vec::new();
    let mut retry_after_seen = false;
    for i in 0..12 {
        let reply = post(
            addr,
            &format!("/v1/jobs?cache-budget={}", 50_000_000 + i),
            &doc,
        );
        if reply.status == 503 {
            retry_after_seen |= reply.header("Retry-After").is_some();
        }
        statuses.push(reply.status);
    }
    assert!(
        statuses.contains(&202),
        "at least one job accepted: {statuses:?}"
    );
    assert!(
        statuses.contains(&503),
        "backpressure must shed some of the flood: {statuses:?}"
    );
    assert!(retry_after_seen, "503 responses carry Retry-After");
    let metrics = get(addr, "/metrics").body;
    assert!(
        metrics.contains("discoverxfd_http_rejected_total{reason=\"queue_full\"}"),
        "{metrics}"
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn slow_discoveries_time_out_with_a_pollable_job() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        request_timeout: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let spec = xfd_datagen::XmarkSpec::with_scale(1.0);
    let doc = xfd_xml::to_xml_string(&xfd_datagen::xmark_like(&spec));
    let reply = post(addr, "/v1/discover", &doc);
    assert_eq!(reply.status, 504, "{}", reply.body);
    let job_id: u64 = field_u64(&reply.body, "\"job\": ");

    // The job keeps running in the background; poll it to completion.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let poll = get(addr, &format!("/v1/jobs/{job_id}"));
        if poll.body.contains("\"status\": \"done\"") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "job never finished: {}",
            poll.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn malformed_requests_get_clean_errors() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        max_body_bytes: 512,
        ..ServerConfig::default()
    });

    // Unknown endpoint and wrong methods.
    assert_eq!(get(addr, "/nope").status, 404);
    let wrong = raw_request(addr, b"DELETE /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("Allow"), Some("GET"));
    assert_eq!(get(addr, "/v1/discover").status, 405);

    // Body framing.
    let no_length = raw_request(addr, b"POST /v1/discover HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(no_length.status, 411);
    let huge = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nHost: t\r\nContent-Length: 1024\r\n\r\n",
    );
    assert_eq!(huge.status, 413);
    let chunked = raw_request(
        addr,
        b"POST /v1/discover HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(chunked.status, 501);

    // Bad content.
    let bad_xml = post(addr, "/v1/discover", "<open><unclosed>");
    assert_eq!(bad_xml.status, 400);
    assert!(bad_xml.body.contains("invalid XML"), "{}", bad_xml.body);
    let bad_param = post(addr, "/v1/discover?bogus=1", "<a/>");
    assert_eq!(bad_param.status, 400);
    assert!(bad_param.body.contains("bogus"), "{}", bad_param.body);
    let bad_value = post(addr, "/v1/discover?max-lhs=many", "<a/>");
    assert_eq!(bad_value.status, 400);

    // Bad identifiers.
    assert_eq!(get(addr, "/v1/jobs/notanumber").status, 400);
    assert_eq!(get(addr, "/v1/jobs/123456").status, 404);
    assert_eq!(get(addr, "/v1/results/deadbeef").status, 400);
    assert_eq!(
        get(addr, &format!("/v1/results/{}", "0".repeat(32))).status,
        404
    );
    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_queued_jobs_before_exit() {
    let (addr, handle, join) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    // Queue several jobs, then immediately request shutdown.
    let mut jobs = Vec::new();
    for i in 0..3 {
        let reply = post(
            addr,
            &format!("/v1/jobs?cache-budget={}", 10_000_000 + i),
            BOOKSTORE,
        );
        assert_eq!(reply.status, 202, "{}", reply.body);
        jobs.push(field_u64(&reply.body, "\"job\": "));
    }
    handle.shutdown();
    // run() returning means: accept loop stopped, queue closed, workers
    // drained every accepted job, all threads joined.
    join.join().unwrap().unwrap();
    // And the server really is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Accepting sockets may linger in the OS backlog; a write/read must
            // fail or return nothing.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).map(|n| n == 0).unwrap_or(true)
        }
    );
}

fn field_u64(json: &str, prefix: &str) -> u64 {
    let start = json.find(prefix).expect(prefix) + prefix.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

fn field_str(json: &str, prefix: &str) -> String {
    let start = json.find(prefix).expect(prefix) + prefix.len();
    json[start..].chars().take_while(|&c| c != '"').collect()
}
