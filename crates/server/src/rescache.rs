//! Byte-budgeted, sharded result cache keyed by content digest.
//!
//! Mirrors the shape of `xfd-partition`'s partition cache: fixed shard
//! array of mutexed maps, a per-shard byte budget carved from the total,
//! least-recently-used eviction (every hit bumps the entry's sequence to
//! the shard clock, so a hot report survives a stream of one-shot
//! documents flowing through), and monotonic hit/miss/eviction counters
//! that feed `/metrics`. The LRU bookkeeping is a single `u64` store per
//! hit under the shard lock the lookup already holds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xfd_hash::FxHashMap;

use crate::sync::lock_recover;

const N_SHARDS: usize = 8;

struct Entry {
    body: Arc<String>,
    seq: u64,
}

struct Shard {
    map: FxHashMap<u128, Entry>,
    resident_bytes: usize,
    clock: u64,
}

/// Cache counters, all monotonic except `resident_bytes`/`entries`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResultCacheStats {
    /// Lookups that found a report.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay within budget.
    pub evictions: u64,
    /// Bytes of report text currently resident.
    pub resident_bytes: u64,
    /// Reports currently resident.
    pub entries: u64,
}

/// Sharded digest-keyed cache of rendered JSON reports.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache bounded by `budget_bytes` of report text overall.
    pub fn new(budget_bytes: usize) -> Self {
        let shards = (0..N_SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    map: FxHashMap::default(),
                    resident_bytes: 0,
                    clock: 0,
                })
            })
            .collect();
        ResultCache {
            shards,
            budget_per_shard: (budget_bytes / N_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, digest: u128) -> &Mutex<Shard> {
        // High bits select the shard; FNV's low bits already key the map.
        // xfdlint:allow(panic_freedom, reason = "index is `% N_SHARDS` into a vec constructed with exactly N_SHARDS shards")
        &self.shards[(digest >> 125) as usize % N_SHARDS]
    }

    /// Look up a report, counting the hit or miss. A hit refreshes the
    /// entry's recency so eviction is least-recently-used.
    pub fn get(&self, digest: u128) -> Option<Arc<String>> {
        let mut shard = lock_recover(self.shard_for(digest));
        shard.clock += 1;
        let now = shard.clock;
        match shard.map.get_mut(&digest) {
            Some(entry) => {
                entry.seq = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.body))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a report, evicting least-recently-used entries in the shard
    /// while over budget. A single report larger than the shard budget is
    /// not cached.
    pub fn put(&self, digest: u128, body: Arc<String>) {
        if body.len() > self.budget_per_shard {
            return;
        }
        let mut shard = lock_recover(self.shard_for(digest));
        if let Some(old) = shard.map.remove(&digest) {
            shard.resident_bytes = shard.resident_bytes.saturating_sub(old.body.len());
        }
        while shard.resident_bytes + body.len() > self.budget_per_shard && !shard.map.is_empty() {
            let coldest = shard.map.iter().min_by_key(|(_, e)| e.seq).map(|(&k, _)| k);
            match coldest.and_then(|k| shard.map.remove(&k)) {
                Some(evicted) => {
                    shard.resident_bytes = shard.resident_bytes.saturating_sub(evicted.body.len());
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // The map was checked non-empty, so a missing minimum can
                // only mean the guard recovered from a poisoned state with
                // drifted accounting; stop evicting rather than spin.
                None => break,
            }
        }
        shard.clock += 1;
        let seq = shard.clock;
        shard.resident_bytes += body.len();
        shard.map.insert(digest, Entry { body, seq });
    }

    /// Current counters.
    pub fn stats(&self) -> ResultCacheStats {
        let mut resident_bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let shard = lock_recover(shard);
            resident_bytes += shard.resident_bytes as u64;
            entries += shard.map.len() as u64;
        }
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn get_after_put_hits() {
        let cache = ResultCache::new(1 << 20);
        assert!(cache.get(42).is_none());
        cache.put(42, body("{\"report\":1}"));
        assert_eq!(
            cache.get(42).as_deref().map(|s| s.as_str()),
            Some("{\"report\":1}")
        );
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_bytes, 12);
    }

    #[test]
    fn reinserting_a_digest_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(1 << 20);
        cache.put(7, body("aaaa"));
        cache.put(7, body("bb"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_bytes, 2);
        assert_eq!(cache.get(7).unwrap().as_str(), "bb");
    }

    #[test]
    fn budget_overflow_evicts_least_recently_used() {
        // One shard holds at most budget/8 bytes; use digests that land in
        // the same shard (identical top bits).
        let cache = ResultCache::new(8 * 10);
        let d = |i: u128| i; // top 3 bits zero → all in shard 0
        cache.put(d(1), body("aaaa")); // 4 bytes
        cache.put(d(2), body("bbbb")); // 8 bytes total
        cache.put(d(3), body("cccc")); // would be 12 → evict LRU (1)
        assert!(cache.get(d(1)).is_none());
        assert!(cache.get(d(2)).is_some());
        assert!(cache.get(d(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn a_hit_refreshes_recency() {
        let cache = ResultCache::new(8 * 10);
        let d = |i: u128| i;
        cache.put(d(1), body("aaaa"));
        cache.put(d(2), body("bbbb"));
        // Touch 1 so 2 becomes the LRU entry, then overflow the shard.
        assert!(cache.get(d(1)).is_some());
        cache.put(d(3), body("cccc"));
        assert!(cache.get(d(1)).is_some(), "recently-read entry survives");
        assert!(cache.get(d(2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(d(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinsertion_also_counts_as_a_touch() {
        let cache = ResultCache::new(8 * 10);
        let d = |i: u128| i;
        cache.put(d(1), body("aaaa"));
        cache.put(d(2), body("bbbb"));
        cache.put(d(1), body("AAAA")); // refresh 1 by overwrite
        cache.put(d(3), body("cccc"));
        assert!(cache.get(d(1)).is_some());
        assert!(cache.get(d(2)).is_none());
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = ResultCache::new(8 * 4);
        cache.put(1, body("way too large for a 4-byte shard"));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn shards_spread_the_key_space() {
        let cache = ResultCache::new(1 << 20);
        for i in 0u128..64 {
            cache.put(i << 121, body("x"));
        }
        assert_eq!(cache.stats().entries, 64);
    }
}
