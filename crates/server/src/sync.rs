//! Poison-tolerant lock helpers.
//!
//! A `std` mutex is *poisoned* when a thread panics while holding it; every
//! later `lock()` then returns `Err`, and the idiomatic `.unwrap()` converts
//! one contained panic into a panic in every thread that ever touches the
//! lock — exactly the cascade the serve mode's `catch_unwind` containment is
//! supposed to prevent.
//!
//! Recovery via [`PoisonError::into_inner`] is sound for the structures the
//! server guards with these helpers (queues, counters, caches, job tables):
//! each critical section leaves the collection itself valid between
//! individual operations (std collections never tear), so the worst a
//! mid-section panic can leave behind is drifted *accounting* — a cache
//! size counter slightly off, a metrics sample missing. For a cache or a
//! gauge that is strictly preferable to a process-wide cascade. Durable
//! state is NOT protected this way: corpus handles detect poisoning and are
//! evicted and reopened from the WAL instead (see `CorpusRegistry`).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait` with the same poison recovery as [`lock_recover`].
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` with poison recovery; the boolean is
/// `timed_out()`.
pub fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, t)) => (g, t.timed_out()),
        Err(poisoned) => {
            let (g, t) = poisoned.into_inner();
            (g, t.timed_out())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// Poison `m` by panicking a thread that holds it.
    fn poison<T: Send + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock cannot be poisoned");
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let m = Arc::new(Mutex::new(vec![1, 2]));
        poison(&m);
        assert!(m.lock().is_err(), "mutex should be poisoned");
        let mut guard = lock_recover(&m);
        guard.push(3);
        assert_eq!(*guard, vec![1, 2, 3]);
    }

    #[test]
    fn wait_timeout_recover_reports_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = lock_recover(&m);
        let (_guard, timed_out) = wait_timeout_recover(&cv, guard, Duration::from_millis(5));
        assert!(timed_out);
    }
}
