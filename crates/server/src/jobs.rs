//! Job table: identifiers, lifecycle state, and completion waits for the
//! asynchronous `/v1/jobs` API.
//!
//! Jobs move `Queued → Running → Done | Failed`. The table keeps a bounded
//! history of finished jobs (old completed records are pruned once the
//! table exceeds a cap) so a polling client has a window to collect its
//! result; the canonical long-term home of a result is the digest-keyed
//! result cache, which the job record points into.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::digest::format_digest;
use crate::http::json_escape;
use crate::sync::{lock_recover, wait_timeout_recover};

/// Finished-job history cap; oldest completed records are pruned past it.
const MAX_FINISHED: usize = 256;

/// Lifecycle state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is running discovery.
    Running,
    /// Finished successfully; result available.
    Done,
    /// Finished with an error message.
    Failed(String),
}

impl JobStatus {
    /// Stable lowercase name used in JSON and metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed(_))
    }
}

/// One job's record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Monotonic job id.
    pub id: u64,
    /// Content digest of the request (body + config).
    pub digest: u128,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Rendered JSON report once `Done`.
    pub result: Option<Arc<String>>,
    /// When the job was accepted.
    pub created: Instant,
    /// When the job finished, if it has.
    pub finished_at: Option<Instant>,
}

impl JobRecord {
    /// JSON status document served by `GET /v1/jobs/{id}`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!(
            "{{\"job\": {}, \"status\": \"{}\", \"digest\": \"{}\"",
            self.id,
            self.status.name(),
            format_digest(self.digest)
        ));
        match &self.status {
            JobStatus::Done => {
                out.push_str(&format!(
                    ", \"result\": \"/v1/results/{}\"",
                    format_digest(self.digest)
                ));
            }
            JobStatus::Failed(message) => {
                out.push_str(&format!(", \"error\": \"{}\"", json_escape(message)));
            }
            _ => {}
        }
        out.push_str("}\n");
        out
    }
}

struct Inner {
    jobs: HashMap<u64, JobRecord>,
    /// Completed ids in finish order, for pruning oldest-first.
    finished_order: VecDeque<u64>,
}

/// Concurrent job table shared by the HTTP layer and the worker pool.
pub struct JobTable {
    next_id: AtomicU64,
    inner: Mutex<Inner>,
    /// Signaled on any job completion; synchronous `/v1/discover` waits here.
    completed: Condvar,
}

impl Default for JobTable {
    fn default() -> Self {
        Self::new()
    }
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable {
            next_id: AtomicU64::new(1),
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                finished_order: VecDeque::new(),
            }),
            completed: Condvar::new(),
        }
    }

    /// Register a new queued job and return its id.
    pub fn create(&self, digest: u128) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = JobRecord {
            id,
            digest,
            status: JobStatus::Queued,
            result: None,
            created: Instant::now(),
            finished_at: None,
        };
        lock_recover(&self.inner).jobs.insert(id, record);
        id
    }

    /// Snapshot a job's record.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        lock_recover(&self.inner).jobs.get(&id).cloned()
    }

    /// Mark a job running.
    pub fn mark_running(&self, id: u64) {
        if let Some(job) = lock_recover(&self.inner).jobs.get_mut(&id) {
            job.status = JobStatus::Running;
        }
    }

    /// Mark a job done with its rendered result.
    pub fn mark_done(&self, id: u64, result: Arc<String>) {
        self.finish(id, JobStatus::Done, Some(result));
    }

    /// Mark a job failed.
    pub fn mark_failed(&self, id: u64, message: String) {
        self.finish(id, JobStatus::Failed(message), None);
    }

    fn finish(&self, id: u64, status: JobStatus, result: Option<Arc<String>>) {
        let mut inner = lock_recover(&self.inner);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.status = status;
            job.result = result;
            job.finished_at = Some(Instant::now());
            inner.finished_order.push_back(id);
        }
        // Prune the oldest finished records beyond the history cap.
        while inner.finished_order.len() > MAX_FINISHED {
            if let Some(oldest) = inner.finished_order.pop_front() {
                inner.jobs.remove(&oldest);
            }
        }
        drop(inner);
        self.completed.notify_all();
    }

    /// Block until job `id` finishes or `deadline` passes; returns the
    /// final record, or `None` on timeout / unknown id.
    pub fn wait_finished(&self, id: u64, deadline: Instant) -> Option<JobRecord> {
        let mut inner = lock_recover(&self.inner);
        loop {
            match inner.jobs.get(&id) {
                Some(job) if job.status.finished() => return Some(job.clone()),
                Some(_) => {}
                None => return None,
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, timed_out) = wait_timeout_recover(&self.completed, inner, deadline - now);
            inner = guard;
            if timed_out {
                let job = inner.jobs.get(&id).cloned();
                return job.filter(|j| j.status.finished());
            }
        }
    }

    /// Jobs currently queued or running (for `/metrics`).
    pub fn inflight(&self) -> u64 {
        lock_recover(&self.inner)
            .jobs
            .values()
            .filter(|j| !j.status.finished())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration as StdDuration;

    #[test]
    fn lifecycle_round_trip() {
        let table = JobTable::new();
        let id = table.create(0xabc);
        assert_eq!(table.get(id).unwrap().status, JobStatus::Queued);
        table.mark_running(id);
        assert_eq!(table.get(id).unwrap().status, JobStatus::Running);
        table.mark_done(id, Arc::new("{}".into()));
        let job = table.get(id).unwrap();
        assert_eq!(job.status, JobStatus::Done);
        assert_eq!(job.result.as_deref().map(|s| s.as_str()), Some("{}"));
        assert!(job.finished_at.is_some());
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let table = JobTable::new();
        let a = table.create(1);
        let b = table.create(2);
        assert!(b > a);
    }

    #[test]
    fn unknown_job_is_none() {
        let table = JobTable::new();
        assert!(table.get(999).is_none());
        assert!(table
            .wait_finished(999, Instant::now() + StdDuration::from_millis(10))
            .is_none());
    }

    #[test]
    fn wait_finished_returns_once_a_worker_completes() {
        let table = Arc::new(JobTable::new());
        let id = table.create(5);
        let t2 = Arc::clone(&table);
        let worker = std::thread::spawn(move || {
            std::thread::sleep(StdDuration::from_millis(30));
            t2.mark_done(id, Arc::new("{\"ok\":true}".into()));
        });
        let job = table
            .wait_finished(id, Instant::now() + StdDuration::from_secs(5))
            .expect("finished before deadline");
        assert_eq!(job.status, JobStatus::Done);
        worker.join().unwrap();
    }

    #[test]
    fn wait_finished_times_out_on_stuck_jobs() {
        let table = JobTable::new();
        let id = table.create(5);
        let start = Instant::now();
        let got = table.wait_finished(id, Instant::now() + StdDuration::from_millis(50));
        assert!(got.is_none());
        assert!(start.elapsed() >= StdDuration::from_millis(45));
    }

    #[test]
    fn finished_history_is_pruned_but_inflight_jobs_survive() {
        let table = JobTable::new();
        let stuck = table.create(0);
        let mut finished_ids = Vec::new();
        for i in 0..(MAX_FINISHED + 20) {
            let id = table.create(i as u128 + 1);
            table.mark_done(id, Arc::new("{}".into()));
            finished_ids.push(id);
        }
        // Oldest finished records are gone, newest remain, and the stuck
        // (never-finished) job is untouched by pruning.
        assert!(table.get(finished_ids[0]).is_none());
        assert!(table.get(*finished_ids.last().unwrap()).is_some());
        assert!(table.get(stuck).is_some());
        assert_eq!(table.inflight(), 1);
    }

    #[test]
    fn render_json_covers_each_status() {
        let table = JobTable::new();
        let id = table.create(0x1f);
        let queued = table.get(id).unwrap().render_json();
        assert!(queued.contains("\"status\": \"queued\""), "{queued}");
        table.mark_failed(id, "boom \"quote\"".into());
        let failed = table.get(id).unwrap().render_json();
        assert!(failed.contains("\"status\": \"failed\""), "{failed}");
        assert!(failed.contains("\\\"quote\\\""), "{failed}");
        let id2 = table.create(0x2f);
        table.mark_done(id2, Arc::new("{}".into()));
        let done = table.get(id2).unwrap().render_json();
        assert!(done.contains("\"result\": \"/v1/results/"), "{done}");
    }
}
