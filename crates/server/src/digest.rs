//! Content digests for the result cache.
//!
//! The implementation lives in `xfd_hash::content` so the corpus store can
//! share the exact same 128-bit dual-lane FNV-1a digest (manifest segment
//! digests must match what this server computes). This module re-exports
//! it under the historical server path.

pub use xfd_hash::content::{format_digest, parse_digest, ContentDigest, DigestReader};
