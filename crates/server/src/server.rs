//! The discovery daemon: listener, router, worker pool, and shutdown.
//!
//! Request flow for `POST /v1/discover` and `POST /v1/jobs`:
//!
//! 1. the connection thread parses the head, builds a [`DiscoveryConfig`]
//!    from query parameters, and streams the body through a digesting
//!    reader straight into the incremental XML parser — the raw document is
//!    never buffered whole;
//! 2. the content digest (config fingerprint + body bytes) is checked
//!    against the result cache; a hit answers immediately (`X-Cache: hit`);
//! 3. on a miss, a job is registered and pushed onto the bounded queue; a
//!    full queue sheds the request with `503` + `Retry-After` instead of
//!    buffering unbounded work;
//! 4. worker threads pop jobs, run `core::driver` discovery (panics are
//!    contained per job), render the JSON report once, and publish it to
//!    the cache, the job table, and the metrics registry.
//!
//! Shutdown (SIGTERM/SIGINT or [`ServerHandle::shutdown`]) stops the
//! accept loop, closes the queue — which rejects new work but lets workers
//! drain what is already queued — and joins every thread before `run`
//! returns.

use std::io::{BufReader, Read};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use discoverxfd::report::render_json;
use discoverxfd::{discover, DiscoveryConfig};
use xfd_xml::parse_reader;

use crate::digest::{format_digest, parse_digest, ContentDigest, DigestReader};
use crate::http::{read_request, HttpError, Limits, Request, Response};
use crate::jobs::{JobStatus, JobTable};
use crate::metrics::{GaugeSnapshot, Metrics};
use crate::queue::{JobQueue, PushError};
use crate::rescache::ResultCache;

/// Global flag set by the signal handler; polled by every accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: set a flag, nothing else.
    SIGNALLED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Route SIGTERM and SIGINT into a graceful drain. Call once from the
/// binary before [`Server::run`]; in-process test servers skip this and
/// use [`ServerHandle::shutdown`] instead.
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (port `0` picks an ephemeral
    /// port; see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads running discovery; `0` = one per available core.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `503`.
    pub queue_depth: usize,
    /// Byte budget of the rendered-report cache.
    pub result_cache_budget: usize,
    /// Largest accepted request body.
    pub max_body_bytes: u64,
    /// Deadline for synchronous `/v1/discover` requests; slower runs get
    /// `504` with a job id to poll.
    pub request_timeout: Duration,
    /// Base discovery configuration; query parameters override per request.
    pub discovery: DiscoveryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".into(),
            workers: 0,
            queue_depth: 64,
            result_cache_budget: 32 << 20,
            max_body_bytes: 64 << 20,
            request_timeout: Duration::from_secs(30),
            discovery: DiscoveryConfig::default(),
        }
    }
}

/// A unit of discovery work flowing from connection threads to workers.
struct Job {
    id: u64,
    digest: u128,
    tree: xfd_xml::DataTree,
    config: DiscoveryConfig,
}

struct ServerState {
    config: ServerConfig,
    queue: JobQueue<Job>,
    jobs: JobTable,
    cache: ResultCache,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }

    fn gauges(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            queue_depth: self.queue.depth() as u64,
            queue_capacity: self.queue.capacity() as u64,
            jobs_inflight: self.jobs.inflight(),
            cache: self.cache.stats(),
        }
    }
}

/// Remote control for a running server (shut it down from another thread).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Ask the server to drain and exit; `run` returns once workers and
    /// connections have finished.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener (nonblocking, so the accept loop can poll the
    /// shutdown flag) and set up queue, cache, job table, and metrics.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            queue: JobQueue::new(config.queue_depth),
            jobs: JobTable::new(),
            cache: ResultCache::new(config.result_cache_budget),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The actual bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until shutdown is requested, then drain and join everything.
    pub fn run(self) -> std::io::Result<()> {
        let worker_count = if self.state.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            self.state.config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let state = Arc::clone(&self.state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("xfd-worker-{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }

        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    connections.push(
                        std::thread::Builder::new()
                            .name("xfd-conn".into())
                            .spawn(move || handle_connection(&state, stream))?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    connections.retain(|c| !c.is_finished());
                    // The poll interval is the idle-accept latency floor;
                    // 1 ms keeps tail latency flat at negligible idle cost.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no new connections or jobs; queued jobs still complete.
        self.state.queue.close();
        for c in connections {
            let _ = c.join();
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Worker: pop jobs until the queue closes and drains, containing any
/// panic from the discovery pipeline to the job that caused it.
fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        state.jobs.mark_running(job.id);
        let run = catch_unwind(AssertUnwindSafe(|| {
            let outcome = discover(&job.tree, &job.config);
            let body = render_json(&outcome);
            (outcome, body)
        }));
        match run {
            Ok((outcome, body)) => {
                let body = Arc::new(body);
                state.metrics.observe_outcome(&outcome);
                state.cache.put(job.digest, Arc::clone(&body));
                state.jobs.mark_done(job.id, body);
                state.metrics.observe_job_finished("done");
            }
            Err(_) => {
                state
                    .jobs
                    .mark_failed(job.id, "discovery panicked on this document".into());
                state.metrics.observe_job_finished("failed");
            }
        }
    }
}

/// Per-connection: parse one request, route it, write one response, close.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.request_timeout));
    let _ = stream.set_write_timeout(Some(state.config.request_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;

    let (endpoint, response) = match read_request(&mut reader, &Limits::default()) {
        Ok(request) => route(state, &request, &mut reader),
        Err(HttpError::ConnectionClosed) => return,
        Err(e) => ("bad_request", error_response(&e)),
    };
    state.metrics.observe_request(endpoint, response.status);
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn error_response(e: &HttpError) -> Response {
    let status = match e {
        HttpError::BadRequest(_) => 400,
        HttpError::UriTooLong => 414,
        HttpError::HeadersTooLarge => 431,
        HttpError::NotImplemented(_) => 501,
        HttpError::ConnectionClosed => 400,
        HttpError::Io(ioe) if ioe.kind() == std::io::ErrorKind::WouldBlock => 408,
        HttpError::Io(ioe) if ioe.kind() == std::io::ErrorKind::TimedOut => 408,
        HttpError::Io(_) => 400,
    };
    Response::error(status, &e.to_string())
}

/// Dispatch on method + path; returns the endpoint label used in metrics.
fn route(state: &ServerState, request: &Request, body: &mut impl Read) -> (&'static str, Response) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            "/healthz",
            Response::json(200, "{\"status\": \"ok\"}\n".as_bytes().to_vec()),
        ),
        ("GET", "/metrics") => (
            "/metrics",
            Response::text(200, state.metrics.render(&state.gauges()).into_bytes()),
        ),
        ("POST", "/v1/discover") => ("/v1/discover", discover_sync(state, request, body)),
        ("POST", "/v1/jobs") => ("/v1/jobs", submit_job(state, request, body)),
        ("GET", path) if path.starts_with("/v1/jobs/") => (
            "/v1/jobs/{id}",
            job_status(state, &path["/v1/jobs/".len()..]),
        ),
        ("GET", path) if path.starts_with("/v1/results/") => (
            "/v1/results/{digest}",
            result_lookup(state, &path["/v1/results/".len()..]),
        ),
        (_, "/healthz") | (_, "/metrics") => (
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "GET"),
        ),
        (_, "/v1/discover") | (_, "/v1/jobs") => (
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "POST"),
        ),
        (_, path) if path.starts_with("/v1/jobs/") || path.starts_with("/v1/results/") => (
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "GET"),
        ),
        _ => ("not_found", Response::error(404, "no such endpoint")),
    }
}

/// Parse the per-request discovery configuration from query parameters and
/// render the canonical fingerprint that goes into the content digest.
fn config_from_query(
    base: &DiscoveryConfig,
    request: &Request,
) -> Result<(DiscoveryConfig, String), String> {
    use xfd_relation::{OrderMode, SetColumnMode};

    let mut config = base.clone();
    for (key, value) in &request.query {
        match key.as_str() {
            "max-lhs" => {
                config.max_lhs_size = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("max-lhs: expected an integer, got {value:?}"))?,
                );
            }
            "inter" => config.inter_relation = parse_bool(key, value)?,
            "keep-uninteresting" => config.keep_uninteresting = parse_bool(key, value)?,
            "cache-budget" => {
                config.cache_budget = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("cache-budget: expected bytes, got {value:?}"))?,
                );
            }
            "threads" => {
                let threads = value
                    .parse::<usize>()
                    .map_err(|_| format!("threads: expected an integer, got {value:?}"))?;
                // Same convention as the CLI: 1 = sequential, 0 = auto.
                config.parallel = threads != 1;
                config.threads = threads;
            }
            "sets" => {
                config.encode.set_columns = if parse_bool(key, value)? {
                    SetColumnMode::All
                } else {
                    SetColumnMode::None
                };
            }
            "ordered" => {
                config.encode.order = if parse_bool(key, value)? {
                    OrderMode::Ordered
                } else {
                    OrderMode::Unordered
                };
            }
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    let fingerprint = format!(
        "cfg1|max_lhs={:?}|inter={}|keep={}|budget={:?}|parallel={}|threads={}|encode={:?}|prune=({},{},{})|targets={}|empty={}",
        config.max_lhs_size,
        config.inter_relation,
        config.keep_uninteresting,
        config.cache_budget,
        config.parallel,
        config.threads,
        config.encode,
        config.prune.rule1,
        config.prune.rule2,
        config.prune.key_prune,
        config.max_partition_targets,
        config.empty_lhs,
    );
    Ok((config, fingerprint))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        other => Err(format!("{key}: expected true/false, got {other:?}")),
    }
}

/// Outcome of the shared intake path (config, digest, parse, cache, push).
enum Intake {
    /// The digest was already cached.
    CacheHit { digest: u128, body: Arc<String> },
    /// A job was accepted onto the queue.
    Enqueued { id: u64, digest: u128 },
    /// The request was answered early (error or backpressure).
    Rejected(Response),
}

/// Everything `POST /v1/discover` and `POST /v1/jobs` share: validate the
/// body frame, stream-parse while digesting, consult the cache, enqueue.
fn intake(state: &ServerState, request: &Request, body: &mut impl Read) -> Intake {
    if state.shutting_down() {
        return Intake::Rejected(
            Response::error(503, "server is draining").with_header("Retry-After", "5"),
        );
    }
    let (config, fingerprint) = match config_from_query(&state.config.discovery, request) {
        Ok(pair) => pair,
        Err(message) => return Intake::Rejected(Response::error(400, &message)),
    };
    let Some(content_length) = request.content_length else {
        return Intake::Rejected(Response::error(
            411,
            "Content-Length is required (chunked bodies are not supported)",
        ));
    };
    if content_length > state.config.max_body_bytes {
        state.metrics.observe_rejection("body_too_large");
        return Intake::Rejected(Response::error(
            413,
            &format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                state.config.max_body_bytes
            ),
        ));
    }

    // Stream the body into the parser, digesting config + bytes as they
    // pass; the raw document is never held in memory.
    let mut seed = ContentDigest::new();
    seed.update(fingerprint.as_bytes());
    let mut digesting = DigestReader::with_seed(body.take(content_length), seed);
    let tree = match parse_reader(&mut digesting) {
        Ok(tree) => tree,
        Err(e) => {
            return Intake::Rejected(Response::error(400, &format!("invalid XML: {e}")));
        }
    };
    if digesting.digest().len() != fingerprint.len() as u64 + content_length {
        // The parser stopped before the advertised end (trailing garbage is
        // a parse error, so this means a short body).
        return Intake::Rejected(Response::error(400, "body shorter than Content-Length"));
    }
    let digest = digesting.digest().finish();

    if let Some(cached) = state.cache.get(digest) {
        return Intake::CacheHit {
            digest,
            body: cached,
        };
    }

    let id = state.jobs.create(digest);
    match state.queue.try_push(Job {
        id,
        digest,
        tree,
        config,
    }) {
        Ok(()) => Intake::Enqueued { id, digest },
        Err(PushError::Full) => {
            state.metrics.observe_rejection("queue_full");
            state.jobs.mark_failed(id, "shed by backpressure".into());
            Intake::Rejected(
                Response::error(503, "queue full, retry shortly").with_header("Retry-After", "1"),
            )
        }
        Err(PushError::Closed) => Intake::Rejected(
            Response::error(503, "server is draining").with_header("Retry-After", "5"),
        ),
    }
}

/// `POST /v1/discover`: block until the report is ready (or time out with
/// a pollable job id).
fn discover_sync(state: &ServerState, request: &Request, body: &mut impl Read) -> Response {
    let (id, digest) = match intake(state, request, body) {
        Intake::CacheHit { body, .. } => {
            return Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "hit");
        }
        Intake::Enqueued { id, digest } => (id, digest),
        Intake::Rejected(response) => return response,
    };
    let deadline = Instant::now() + state.config.request_timeout;
    match state.jobs.wait_finished(id, deadline) {
        Some(job) => match job.status {
            JobStatus::Done => {
                let body = job.result.expect("done job carries its result");
                Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "miss")
            }
            JobStatus::Failed(message) => Response::error(500, &message),
            _ => unreachable!("wait_finished only returns finished jobs"),
        },
        None => {
            state.metrics.observe_rejection("timeout");
            Response::json(
                504,
                format!(
                    "{{\"error\": \"discovery exceeded the request deadline\", \"job\": {id}, \"poll\": \"/v1/jobs/{id}\", \"result\": \"/v1/results/{}\"}}\n",
                    format_digest(digest)
                ),
            )
        }
    }
}

/// `POST /v1/jobs`: accept and return immediately with polling URLs. A
/// cache hit still materializes a (finished) job so clients can treat both
/// paths uniformly.
fn submit_job(state: &ServerState, request: &Request, body: &mut impl Read) -> Response {
    let (id, digest) = match intake(state, request, body) {
        Intake::CacheHit { digest, body } => {
            let id = state.jobs.create(digest);
            state.jobs.mark_done(id, body);
            (id, digest)
        }
        Intake::Enqueued { id, digest } => (id, digest),
        Intake::Rejected(response) => return response,
    };
    Response::json(
        202,
        format!(
            "{{\"job\": {id}, \"status\": \"{}\", \"poll\": \"/v1/jobs/{id}\", \"result\": \"/v1/results/{}\"}}\n",
            state
                .jobs
                .get(id)
                .map(|j| j.status.name())
                .unwrap_or("queued"),
            format_digest(digest)
        ),
    )
}

/// `GET /v1/jobs/{id}`.
fn job_status(state: &ServerState, id_text: &str) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("malformed job id {id_text:?}"));
    };
    match state.jobs.get(id) {
        Some(job) => Response::json(200, job.render_json().into_bytes()),
        None => Response::error(404, "no such job (finished jobs are pruned eventually)"),
    }
}

/// `GET /v1/results/{digest}`.
fn result_lookup(state: &ServerState, digest_text: &str) -> Response {
    let Some(digest) = parse_digest(digest_text) else {
        return Response::error(400, "malformed digest (expected 32 hex digits)");
    };
    match state.cache.get(digest) {
        Some(body) => Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "hit"),
        None => Response::error(404, "result not cached (re-run discovery)"),
    }
}
