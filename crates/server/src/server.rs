//! The discovery daemon: listener, router, worker pool, and shutdown.
//!
//! Request flow for `POST /v1/discover` and `POST /v1/jobs`:
//!
//! 1. the connection thread parses the head, builds a [`DiscoveryConfig`]
//!    from query parameters, and streams the body through a digesting
//!    reader straight into the incremental XML parser — the raw document is
//!    never buffered whole;
//! 2. the content digest (config fingerprint + body bytes) is checked
//!    against the result cache; a hit answers immediately (`X-Cache: hit`);
//! 3. on a miss, a job is registered and pushed onto the bounded queue; a
//!    full queue sheds the request with `503` + `Retry-After` instead of
//!    buffering unbounded work;
//! 4. worker threads pop jobs, run `core::driver` discovery (panics are
//!    contained per job), render the JSON report once, and publish it to
//!    the cache, the job table, and the metrics registry.
//!
//! Connections speak HTTP/1.1 keep-alive: one connection serves up to
//! [`ServerConfig::keep_alive_max_requests`] requests, closing after an
//! idle gap of [`ServerConfig::keep_alive_timeout`] or on
//! `Connection: close`.
//!
//! When started with a corpus root, `/v1/corpora/{name}` endpoints manage
//! named persistent corpora ([`xfd_corpus`]) and run *incremental*
//! discovery over them; `POST .../discover` with
//! `Accept: application/x-ndjson` streams one progress line per relation.
//!
//! Shutdown (SIGTERM/SIGINT or [`ServerHandle::shutdown`]) stops the
//! accept loop, closes the queue — which rejects new work but lets workers
//! drain what is already queued — and joins every thread before `run`
//! returns.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use discoverxfd::report::render_json;
use discoverxfd::{discover, DiscoveryConfig};
use xfd_corpus::{validate_name, CorpusError, CorpusHandle, CorpusStore};
use xfd_xml::parse_reader;

use crate::digest::{format_digest, parse_digest, ContentDigest, DigestReader};
use crate::http::{json_escape, read_request, HttpError, Limits, Request, Response};
use crate::jobs::{JobStatus, JobTable};
use crate::metrics::{GaugeSnapshot, Metrics};
use crate::queue::{JobQueue, PushError};
use crate::rescache::ResultCache;
use crate::sync::lock_recover;

/// Global flag set by the signal handler; polled by every accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: set a flag, nothing else.
    SIGNALLED.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Route SIGTERM and SIGINT into a graceful drain. Call once from the
/// binary before [`Server::run`]; in-process test servers skip this and
/// use [`ServerHandle::shutdown`] instead.
pub fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal` is the libc prototype declared above; `on_signal` is
    // `extern "C"`, never unwinds, and only performs the async-signal-safe
    // store of an `AtomicBool`. Called once, before any thread is spawned.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7700` (port `0` picks an ephemeral
    /// port; see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads running discovery; `0` = one per available core.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `503`.
    pub queue_depth: usize,
    /// Byte budget of the rendered-report cache.
    pub result_cache_budget: usize,
    /// Largest accepted request body.
    pub max_body_bytes: u64,
    /// Bodies up to this size are spilled into a buffer and digested
    /// *before* XML parsing, so result-cache hits skip the parse entirely;
    /// larger bodies keep the streaming parse-while-digesting path.
    pub spill_buffer_bytes: u64,
    /// Deadline for synchronous `/v1/discover` requests; slower runs get
    /// `504` with a job id to poll.
    pub request_timeout: Duration,
    /// Requests served over one keep-alive connection before it closes.
    pub keep_alive_max_requests: usize,
    /// Idle time allowed between requests on a keep-alive connection.
    pub keep_alive_timeout: Duration,
    /// Root directory of named corpora; `None` disables `/v1/corpora`.
    pub corpus_root: Option<PathBuf>,
    /// Cluster workers for corpus discovery; `0` keeps it in-process.
    /// When set, `POST /v1/corpora/{name}/discover` runs through the
    /// coordinator/worker subsystem (same report bytes), falling back to
    /// in-process discovery if the cluster cannot be set up.
    pub cluster_workers: usize,
    /// Remote worker addresses (`host:port`) to join into the cluster;
    /// combined with `cluster_workers` local subprocesses.
    pub cluster_remote: Vec<String>,
    /// Shared-secret token for cluster handshakes (must match the
    /// `--token` every remote worker was started with).
    pub cluster_token: String,
    /// How long an unused warm pool entry keeps its workers alive before
    /// the janitor reaps them.
    pub pool_idle: Duration,
    /// Base discovery configuration; query parameters override per request.
    pub discovery: DiscoveryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".into(),
            workers: 0,
            queue_depth: 64,
            result_cache_budget: 32 << 20,
            max_body_bytes: 64 << 20,
            spill_buffer_bytes: 8 << 20,
            request_timeout: Duration::from_secs(30),
            keep_alive_max_requests: 100,
            keep_alive_timeout: Duration::from_secs(5),
            corpus_root: None,
            cluster_workers: 0,
            cluster_remote: Vec::new(),
            cluster_token: String::new(),
            pool_idle: Duration::from_secs(120),
            discovery: DiscoveryConfig::default(),
        }
    }
}

/// A unit of discovery work flowing from connection threads to workers.
struct Job {
    id: u64,
    digest: u128,
    tree: xfd_xml::DataTree,
    config: DiscoveryConfig,
}

/// Lazily-opened corpus handles keyed by name. The registry `handles` map
/// lock is held only for lookups, inserts, and evictions; each handle
/// carries its *own* mutex that serializes ingest and discovery on that
/// corpus (both mutate the per-corpus memo state), so a long discovery on
/// one corpus never blocks requests for another.
///
/// Lock order (enforced by xfdlint's `lock_discipline.order`): the
/// registry map lock may wrap a per-corpus acquisition, never the reverse.
///
/// A per-corpus mutex poisons when a worker panics mid-operation — the
/// in-memory docs/memo may then be torn, so the handle is *evicted* and
/// the next request reopens it from the durable manifest + WAL
/// ([`CorpusError::Poisoned`], surfaced as a retryable 503).
struct CorpusRegistry {
    store: CorpusStore,
    handles: Mutex<HashMap<String, Arc<Mutex<CorpusHandle>>>>,
}

impl CorpusRegistry {
    /// Get (or open and cache) the shared handle for `name`.
    fn shared_handle(&self, name: &str) -> Result<Arc<Mutex<CorpusHandle>>, CorpusError> {
        let mut handles = lock_recover(&self.handles);
        if let Some(handle) = handles.get(name) {
            return Ok(Arc::clone(handle));
        }
        // xfdlint:allow(lock_discipline, reason = "open() must run under the registry lock so two racing requests cannot double-open one corpus WAL; every other registry critical section is map-only")
        let handle = Arc::new(Mutex::new(self.store.open(name)?));
        handles.insert(name.to_string(), Arc::clone(&handle));
        Ok(handle)
    }

    /// Run `f` on the (possibly freshly opened) handle for `name`.
    fn with_handle<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut CorpusHandle) -> T,
    ) -> Result<T, CorpusError> {
        let handle = self.shared_handle(name)?;
        let mut guard = match handle.lock() {
            Ok(guard) => guard,
            // xfdlint:allow(lock_discipline, reason = "poisoned arm: lock() failed, so no guard on `handle` is actually live when the registry lock is taken")
            Err(_) => return Err(self.evict_poisoned(name)),
        };
        Ok(f(&mut guard))
    }

    /// A panic poisoned `name`'s handle mid-operation: its in-memory state
    /// may be torn, so drop it and let the next request reopen the corpus
    /// from the durable manifest + WAL.
    fn evict_poisoned(&self, name: &str) -> CorpusError {
        lock_recover(&self.handles).remove(name);
        CorpusError::Poisoned(name.to_string())
    }
}

struct ServerState {
    config: ServerConfig,
    queue: JobQueue<Job>,
    jobs: JobTable,
    cache: ResultCache,
    metrics: Metrics,
    corpus: Option<CorpusRegistry>,
    /// Warm cluster pool for corpus discovery; present when the server
    /// was configured with local cluster workers or remote addresses.
    pool: Option<xfd_cluster::WorkerPool>,
    shutdown: AtomicBool,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst)
    }

    fn gauges(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            queue_depth: self.queue.depth() as u64,
            queue_capacity: self.queue.capacity() as u64,
            jobs_inflight: self.jobs.inflight(),
            cache: self.cache.stats(),
            pool: self.pool.as_ref().map(|p| p.snapshot()).unwrap_or_default(),
        }
    }
}

/// Remote control for a running server (shut it down from another thread).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Ask the server to drain and exit; `run` returns once workers and
    /// connections have finished.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener (nonblocking, so the accept loop can poll the
    /// shutdown flag) and set up queue, cache, job table, and metrics.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let corpus = match &config.corpus_root {
            Some(root) => {
                std::fs::create_dir_all(root)?;
                Some(CorpusRegistry {
                    store: CorpusStore::new(root),
                    handles: Mutex::new(HashMap::new()),
                })
            }
            None => None,
        };
        let pool = if config.cluster_workers > 0 || !config.cluster_remote.is_empty() {
            let opts = xfd_cluster::ClusterOptions {
                workers: config.cluster_workers,
                remote: config.cluster_remote.clone(),
                token: config.cluster_token.clone(),
                ..xfd_cluster::ClusterOptions::default()
            };
            Some(xfd_cluster::WorkerPool::new(opts, config.pool_idle))
        } else {
            None
        };
        let state = Arc::new(ServerState {
            queue: JobQueue::new(config.queue_depth),
            jobs: JobTable::new(),
            cache: ResultCache::new(config.result_cache_budget),
            metrics: Metrics::new(),
            corpus,
            pool,
            shutdown: AtomicBool::new(false),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The actual bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until shutdown is requested, then drain and join everything.
    pub fn run(self) -> std::io::Result<()> {
        let worker_count = if self.state.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
        } else {
            self.state.config.workers
        };
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let state = Arc::clone(&self.state);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("xfd-worker-{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }

        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut last_reap = Instant::now();
        while !self.state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    connections.push(
                        std::thread::Builder::new()
                            .name("xfd-conn".into())
                            .spawn(move || handle_connection(&state, stream))?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    connections.retain(|c| !c.is_finished());
                    // Janitor: retire warm pool entries idle past their
                    // deadline, at most once a second.
                    if let Some(pool) = &self.state.pool {
                        if last_reap.elapsed() >= Duration::from_secs(1) {
                            pool.reap_idle();
                            last_reap = Instant::now();
                        }
                    }
                    // The poll interval is the idle-accept latency floor;
                    // 1 ms keeps tail latency flat at negligible idle cost.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no new connections or jobs; queued jobs still complete.
        self.state.queue.close();
        for c in connections {
            // xfdlint:allow(error_hygiene, reason = "join errs only for a thread that already panicked; drain must still reap the remaining threads")
            let _ = c.join();
        }
        for w in workers {
            // xfdlint:allow(error_hygiene, reason = "worker panics are contained by catch_unwind and counted in metrics; a join error here cannot carry new information")
            let _ = w.join();
        }
        if let Some(pool) = &self.state.pool {
            pool.shutdown_all();
        }
        Ok(())
    }
}

/// Worker: pop jobs until the queue closes and drains, containing any
/// panic from the discovery pipeline to the job that caused it.
fn worker_loop(state: &ServerState) {
    while let Some(job) = state.queue.pop() {
        state.jobs.mark_running(job.id);
        let run = catch_unwind(AssertUnwindSafe(|| {
            let outcome = discover(&job.tree, &job.config);
            let body = render_json(&outcome);
            (outcome, body)
        }));
        match run {
            Ok((outcome, body)) => {
                let body = Arc::new(body);
                state.metrics.observe_outcome(&outcome);
                state.cache.put(job.digest, Arc::clone(&body));
                state.jobs.mark_done(job.id, body);
                state.metrics.observe_job_finished("done");
            }
            Err(_) => {
                state.metrics.observe_worker_panic();
                state
                    .jobs
                    .mark_failed(job.id, "discovery panicked on this document".into());
                state.metrics.observe_job_finished("failed");
            }
        }
    }
}

/// Per-connection loop: parse a request, route it, write the response, and
/// reuse the connection (HTTP/1.1 keep-alive) until the client asks to
/// close, the per-connection request cap is reached, the idle timeout
/// expires, or the server starts draining.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    // xfdlint:allow(error_hygiene, reason = "set_write_timeout fails only for a zero duration, which ServerConfig cannot produce; a missing timeout degrades to blocking writes")
    let _ = stream.set_write_timeout(Some(state.config.request_timeout));
    let max_requests = state.config.keep_alive_max_requests.max(1);
    let mut served = 0usize;

    loop {
        // The first request gets the full request timeout; between
        // keep-alive requests the shorter idle timeout applies.
        let read_deadline = if served == 0 {
            state.config.request_timeout
        } else {
            state.config.keep_alive_timeout
        };
        // xfdlint:allow(error_hygiene, reason = "set_read_timeout fails only for a zero duration, which ServerConfig cannot produce; a missing timeout degrades to blocking reads")
        let _ = stream.set_read_timeout(Some(read_deadline));

        let request = match read_request(&mut reader, &Limits::default()) {
            Ok(request) => request,
            Err(HttpError::ConnectionClosed) => break,
            Err(HttpError::Io(ref e))
                if served > 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                // An idle keep-alive connection timed out: close quietly.
                break;
            }
            Err(e) => {
                let response = error_response(&e).with_close();
                state
                    .metrics
                    .observe_request("bad_request", response.status);
                // xfdlint:allow(error_hygiene, reason = "best-effort error reply to a client that already broke framing; the connection closes either way")
                let _ = response.write_to(&mut stream);
                break;
            }
        };
        // xfdlint:allow(error_hygiene, reason = "set_read_timeout fails only for a zero duration, which ServerConfig cannot produce; a missing timeout degrades to blocking reads")
        let _ = stream.set_read_timeout(Some(state.config.request_timeout));
        served += 1;

        // A chunked body is decoded off the wire up front (bounded by the
        // same byte cap as the Content-Length path); handlers then see it
        // as an ordinary length-delimited body.
        let mut request = request;
        let mut chunked_body: Option<std::io::Cursor<Vec<u8>>> = None;
        if request.chunked {
            match crate::http::read_chunked_body(
                &mut reader,
                state.config.max_body_bytes,
                &Limits::default(),
            ) {
                Ok(bytes) => {
                    request.content_length = Some(bytes.len() as u64);
                    chunked_body = Some(std::io::Cursor::new(bytes));
                }
                Err(e) => {
                    if matches!(e, HttpError::PayloadTooLarge(_)) {
                        state.metrics.observe_rejection("body_too_large");
                    }
                    let response = error_response(&e).with_close();
                    state
                        .metrics
                        .observe_request("bad_request", response.status);
                    // xfdlint:allow(error_hygiene, reason = "best-effort error reply on a connection whose body framing already failed; it closes either way")
                    let _ = response.write_to(&mut stream);
                    break;
                }
            }
        }

        let content_length = request.content_length.unwrap_or(0);
        let (routed, body_left_on_wire) = match chunked_body.as_mut() {
            // A decoded chunked body is already fully off the wire, so an
            // unread remainder cannot break keep-alive framing.
            Some(cursor) => (route(state, &request, cursor), false),
            None => {
                let mut body = reader.by_ref().take(content_length);
                let routed = route(state, &request, &mut body);
                let left = body.limit() > 0;
                (routed, left)
            }
        };
        match routed {
            Routed::Plain(endpoint, mut response) => {
                // Reuse requires the whole body consumed off the wire.
                // Handlers that reject early leave bytes behind, and
                // draining them could block on a slow client — close
                // instead of reading megabytes to save a reconnect.
                response.close = response.close
                    || body_left_on_wire
                    || !request.wants_keep_alive()
                    || served >= max_requests
                    || state.shutting_down();
                let close = response.close;
                state.metrics.observe_request(endpoint, response.status);
                if response.write_to(&mut stream).is_err() || close {
                    break;
                }
            }
            Routed::CorpusStream { corpus, config } => {
                let status = stream_corpus_discover(state, &corpus, &config, &mut stream);
                state
                    .metrics
                    .observe_request("/v1/corpora/{name}/discover", status);
                // A streamed response carries no Content-Length; the
                // closed connection is the frame.
                break;
            }
        }
    }
    // xfdlint:allow(error_hygiene, reason = "best-effort FIN on a connection being dropped; the peer may already have closed")
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn error_response(e: &HttpError) -> Response {
    let status = match e {
        HttpError::BadRequest(_) => 400,
        HttpError::UriTooLong => 414,
        HttpError::HeadersTooLarge => 431,
        HttpError::NotImplemented(_) => 501,
        HttpError::PayloadTooLarge(_) => 413,
        HttpError::ConnectionClosed => 400,
        HttpError::Io(ioe) if ioe.kind() == std::io::ErrorKind::WouldBlock => 408,
        HttpError::Io(ioe) if ioe.kind() == std::io::ErrorKind::TimedOut => 408,
        HttpError::Io(_) => 400,
    };
    Response::error(status, &e.to_string())
}

/// What the router decided. Streaming responses are executed by the
/// connection loop, which owns the raw stream.
enum Routed {
    /// A buffered response plus its metrics endpoint label.
    Plain(&'static str, Response),
    /// Stream NDJSON discovery progress for a corpus.
    CorpusStream {
        corpus: String,
        config: DiscoveryConfig,
    },
}

impl Routed {
    fn plain(endpoint: &'static str, response: Response) -> Routed {
        Routed::Plain(endpoint, response)
    }
}

/// Dispatch on method + path.
fn route(state: &ServerState, request: &Request, body: &mut impl Read) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Routed::plain(
            "/healthz",
            Response::json(200, "{\"status\": \"ok\"}\n".as_bytes().to_vec()),
        ),
        ("GET", "/metrics") => Routed::plain(
            "/metrics",
            Response::text(200, state.metrics.render(&state.gauges()).into_bytes()),
        ),
        ("POST", "/v1/discover") => {
            Routed::plain("/v1/discover", discover_sync(state, request, body))
        }
        ("POST", "/v1/jobs") => Routed::plain("/v1/jobs", submit_job(state, request, body)),
        ("GET", path) if path.starts_with("/v1/jobs/") => Routed::plain(
            "/v1/jobs/{id}",
            job_status(state, path.strip_prefix("/v1/jobs/").unwrap_or(path)),
        ),
        ("GET", path) if path.starts_with("/v1/results/") => Routed::plain(
            "/v1/results/{digest}",
            result_lookup(state, path.strip_prefix("/v1/results/").unwrap_or(path)),
        ),
        (_, path) if path.starts_with("/v1/corpora/") => route_corpus(state, request, body),
        (_, "/healthz") | (_, "/metrics") => Routed::plain(
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "GET"),
        ),
        (_, "/v1/discover") | (_, "/v1/jobs") => Routed::plain(
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "POST"),
        ),
        (_, path) if path.starts_with("/v1/jobs/") || path.starts_with("/v1/results/") => {
            Routed::plain(
                "method_not_allowed",
                Response::error(405, "method not allowed").with_header("Allow", "GET"),
            )
        }
        _ => Routed::plain("not_found", Response::error(404, "no such endpoint")),
    }
}

/// Routes under `/v1/corpora/{name}`: corpus lifecycle, document ingest,
/// and incremental discovery. Names are validated *before* any filesystem
/// access — traversal-shaped names never reach a path join.
fn route_corpus(state: &ServerState, request: &Request, body: &mut impl Read) -> Routed {
    let Some(rest) = request.path.strip_prefix("/v1/corpora/") else {
        // route() only dispatches here for matching prefixes.
        return Routed::plain("not_found", Response::error(404, "no such endpoint"));
    };
    let (name, tail) = match rest.split_once('/') {
        Some((n, t)) => (n, Some(t)),
        None => (rest, None),
    };
    if let Err(e) = validate_name(name) {
        return Routed::plain(
            "/v1/corpora/{name}",
            Response::error(400, &format!("bad corpus name: {e}")),
        );
    }
    let Some(registry) = &state.corpus else {
        return Routed::plain(
            "/v1/corpora/{name}",
            Response::error(
                503,
                "corpus store disabled (start the server with --corpus-root)",
            ),
        );
    };
    match (request.method.as_str(), tail) {
        ("PUT", None) => Routed::plain("/v1/corpora/{name}", corpus_create(registry, name)),
        ("GET", None) => Routed::plain("/v1/corpora/{name}", corpus_status(state, registry, name)),
        ("DELETE", None) => Routed::plain("/v1/corpora/{name}", corpus_delete(registry, name)),
        ("POST", Some("docs")) => Routed::plain(
            "/v1/corpora/{name}/docs",
            corpus_add_doc(state, registry, name, request, body),
        ),
        ("DELETE", Some(t)) if t.starts_with("docs/") => Routed::plain(
            "/v1/corpora/{name}/docs/{doc}",
            corpus_remove_doc(registry, name, t.strip_prefix("docs/").unwrap_or(t)),
        ),
        ("POST", Some("discover")) => {
            let (config, fingerprint) = match config_from_query(&state.config.discovery, request) {
                Ok(pair) => pair,
                Err(message) => {
                    return Routed::plain(
                        "/v1/corpora/{name}/discover",
                        Response::error(400, &message),
                    )
                }
            };
            let ndjson = request
                .header("accept")
                .is_some_and(|a| a.contains("application/x-ndjson"));
            if ndjson {
                Routed::CorpusStream {
                    corpus: name.to_string(),
                    config,
                }
            } else {
                Routed::plain(
                    "/v1/corpora/{name}/discover",
                    corpus_discover(state, registry, name, &config, &fingerprint),
                )
            }
        }
        (_, None) => Routed::plain(
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "GET, PUT, DELETE"),
        ),
        (_, Some("docs")) | (_, Some("discover")) => Routed::plain(
            "method_not_allowed",
            Response::error(405, "method not allowed").with_header("Allow", "POST"),
        ),
        _ => Routed::plain("not_found", Response::error(404, "no such corpus endpoint")),
    }
}

/// Map a corpus error onto an HTTP status.
fn corpus_error_response(e: &CorpusError) -> Response {
    let status = match e {
        CorpusError::BadName(_) => 400,
        CorpusError::CorpusNotFound(_) | CorpusError::DocNotFound(_) => 404,
        CorpusError::CorpusExists(_) | CorpusError::DocExists(_) => 409,
        // The poisoned handle was evicted; the next attempt reopens from
        // disk, so tell the client the condition is temporary.
        CorpusError::Poisoned(_) => 503,
        _ => 500,
    };
    let response = Response::error(status, &e.to_string());
    if matches!(e, CorpusError::Poisoned(_)) {
        response.with_header("Retry-After", "1")
    } else {
        response
    }
}

/// `PUT /v1/corpora/{name}`.
fn corpus_create(registry: &CorpusRegistry, name: &str) -> Response {
    match registry.store.create(name) {
        Ok(handle) => {
            let body = format!("{{\"corpus\": \"{}\", \"docs\": 0}}\n", json_escape(name));
            lock_recover(&registry.handles).insert(name.to_string(), Arc::new(Mutex::new(handle)));
            Response::json(201, body)
        }
        Err(e) => corpus_error_response(&e),
    }
}

/// `GET /v1/corpora/{name}`.
fn corpus_status(state: &ServerState, registry: &CorpusRegistry, name: &str) -> Response {
    let pool = state.pool.as_ref().map(|p| p.snapshot());
    match registry.with_handle(name, |h| render_corpus_status(&h.status(), pool)) {
        Ok(body) => Response::json(200, body),
        Err(e) => corpus_error_response(&e),
    }
}

fn render_corpus_status(
    status: &xfd_corpus::CorpusStatus,
    pool: Option<xfd_cluster::PoolSnapshot>,
) -> String {
    let mut out = format!(
        "{{\"corpus\": \"{}\", \"segment_bytes\": {}, \"forest_cached\": {}, \"memo\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"resident_bytes\": {}}}, \"kernel\": {{\"products_error_only\": {}, \"products_materialized\": {}, \"early_exits\": {}, \"summary_hits\": {}}}, \"docs\": [",
        json_escape(&status.name),
        status.segment_bytes,
        status.forest_cached,
        status.memo_entries,
        status.memo_hits,
        status.memo_misses,
        status.memo_evictions,
        status.memo_resident_bytes,
        status.kernel_products_error_only,
        status.kernel_products_materialized,
        status.kernel_early_exits,
        status.kernel_summary_hits,
    );
    for (i, (name, digest, nodes)) in status.docs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"digest\": \"{digest}\", \"nodes\": {nodes}}}",
            json_escape(name)
        ));
    }
    out.push(']');
    if let Some(p) = pool {
        out.push_str(&format!(
            ", \"pool\": {{\"warm_workers\": {}, \"spawning\": {}, \"reaped\": {}, \"warm_hits\": {}, \"segments_shipped_bytes\": {}}}",
            p.warm_workers, p.spawning, p.reaped_total, p.warm_hits_total, p.segments_shipped_bytes,
        ));
    }
    out.push_str("}\n");
    out
}

/// `DELETE /v1/corpora/{name}`.
fn corpus_delete(registry: &CorpusRegistry, name: &str) -> Response {
    // Hold the registry lock across the delete so a concurrent request
    // cannot reopen the corpus between eviction and directory removal.
    let mut handles = lock_recover(&registry.handles);
    handles.remove(name);
    // xfdlint:allow(lock_discipline, reason = "delete must run under the registry lock to fence concurrent reopen between eviction and directory removal")
    match registry.store.delete(name) {
        Ok(()) => Response::json(200, format!("{{\"deleted\": \"{}\"}}\n", json_escape(name))),
        Err(e) => corpus_error_response(&e),
    }
}

/// `POST /v1/corpora/{name}/docs?name={doc}`: ingest one XML document.
fn corpus_add_doc(
    state: &ServerState,
    registry: &CorpusRegistry,
    corpus: &str,
    request: &Request,
    body: &mut impl Read,
) -> Response {
    let Some(doc_name) = request.query_param("name") else {
        return Response::error(400, "missing ?name= query parameter for the document");
    };
    if let Err(e) = validate_name(doc_name) {
        return Response::error(400, &format!("bad document name: {e}"));
    }
    let Some(content_length) = request.content_length else {
        return Response::error(411, "Content-Length is required");
    };
    if content_length > state.config.max_body_bytes {
        state.metrics.observe_rejection("body_too_large");
        return Response::error(
            413,
            &format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                state.config.max_body_bytes
            ),
        );
    }
    let tree = match parse_reader(&mut body.take(content_length)) {
        Ok(tree) => tree,
        Err(e) => return Response::error(400, &format!("invalid XML: {e}")),
    };
    let doc_name = doc_name.to_string();
    match registry.with_handle(corpus, move |h| {
        h.add_doc(&doc_name, &tree).map(|()| h.len())
    }) {
        Ok(Ok(docs)) => Response::json(
            201,
            format!(
                "{{\"corpus\": \"{}\", \"docs\": {docs}}}\n",
                json_escape(corpus)
            ),
        ),
        Ok(Err(e)) | Err(e) => corpus_error_response(&e),
    }
}

/// `DELETE /v1/corpora/{name}/docs/{doc}`.
fn corpus_remove_doc(registry: &CorpusRegistry, corpus: &str, doc: &str) -> Response {
    if let Err(e) = validate_name(doc) {
        return Response::error(400, &format!("bad document name: {e}"));
    }
    match registry.with_handle(corpus, |h| h.remove_doc(doc).map(|()| h.len())) {
        Ok(Ok(docs)) => Response::json(
            200,
            format!(
                "{{\"corpus\": \"{}\", \"docs\": {docs}}}\n",
                json_escape(corpus)
            ),
        ),
        Ok(Err(e)) | Err(e) => corpus_error_response(&e),
    }
}

/// `POST /v1/corpora/{name}/discover`: run memoized discovery over the
/// merged corpus and return the full JSON report.
///
/// The result cache is consulted *first*, keyed by the config
/// fingerprint plus the corpus name and its document content digests —
/// a hit answers with `X-Cache: hit` before any plan derivation or
/// cluster setup happens. On a miss, a configured worker pool runs the
/// discovery over warm cluster workers (same report bytes), with an
/// in-process fallback when the cluster cannot be set up (spawn
/// failure, plan mismatch, auth failure).
fn corpus_discover(
    state: &ServerState,
    registry: &CorpusRegistry,
    corpus: &str,
    config: &DiscoveryConfig,
    fingerprint: &str,
) -> Response {
    match registry.with_handle(corpus, |h| {
        let mut seed = ContentDigest::new();
        seed.update(fingerprint.as_bytes());
        seed.update(corpus.as_bytes());
        for d in h.doc_digests() {
            seed.update(&d.to_le_bytes());
        }
        let digest = seed.finish();
        if let Some(body) = state.cache.get(digest) {
            return (h.len(), None, Some(body));
        }
        let outcome = if let Some(pool) = &state.pool {
            match pool.discover(h, config) {
                Ok(run) => {
                    state.metrics.observe_cluster(&run.stats);
                    run.outcome
                }
                Err(_) => {
                    state.metrics.observe_cluster_fallback();
                    h.discover(config)
                }
            }
        } else {
            h.discover(config)
        };
        let body = Arc::new(render_json(&outcome));
        state.cache.put(digest, Arc::clone(&body));
        (h.len(), Some(outcome), Some(body))
    }) {
        Ok((docs, Some(outcome), Some(body))) => {
            state.metrics.observe_outcome(&outcome);
            Response::json(200, body.as_bytes().to_vec())
                .with_header("X-Cache", "miss")
                .with_header("X-Corpus-Docs", &docs.to_string())
        }
        Ok((docs, None, Some(body))) => Response::json(200, body.as_bytes().to_vec())
            .with_header("X-Cache", "hit")
            .with_header("X-Corpus-Docs", &docs.to_string()),
        // The closure always returns a body alongside either branch.
        Ok((docs, _, None)) => Response::error(500, &format!("internal: no report ({docs} docs)")),
        Err(e) => corpus_error_response(&e),
    }
}

/// Best-effort write + flush of one streaming chunk. A failed write means
/// the peer went away mid-stream; discovery still runs to completion so
/// the memo state commits, so the error is deliberately dropped.
fn send_best_effort(stream: &mut TcpStream, bytes: &[u8]) {
    // xfdlint:allow(error_hygiene, reason = "peer disconnect mid-stream is expected; discovery must still complete so the corpus memo commits")
    let _ = stream.write_all(bytes).and_then(|()| stream.flush());
}

/// Best-effort write of a full (error) response on a streaming connection,
/// which closes right after either way.
fn send_response_best_effort(stream: &mut TcpStream, response: Response) {
    // xfdlint:allow(error_hygiene, reason = "the error reply on a streaming connection is a courtesy; the close itself is the signal the client acts on")
    let _ = response.write_to(stream);
}

/// `POST /v1/corpora/{name}/discover` with `Accept: application/x-ndjson`:
/// write one JSON line per relation as the memoized discovery visits it,
/// then a summary line. Returns the status code for metrics.
///
/// Only this corpus's own lock is held while streaming — requests for
/// other corpora (and the registry map itself) stay unblocked for the
/// duration of the discovery.
fn stream_corpus_discover(
    state: &ServerState,
    corpus: &str,
    config: &DiscoveryConfig,
    stream: &mut TcpStream,
) -> u16 {
    let Some(registry) = &state.corpus else {
        // Unreachable in practice: the router only streams with a registry.
        send_response_best_effort(
            stream,
            Response::error(503, "corpus store disabled").with_close(),
        );
        return 503;
    };
    let handle = match registry.shared_handle(corpus) {
        Ok(handle) => handle,
        Err(e) => {
            let response = corpus_error_response(&e).with_close();
            let status = response.status;
            send_response_best_effort(stream, response);
            return status;
        }
    };
    let mut guard = match handle.lock() {
        Ok(guard) => guard,
        Err(_) => {
            // xfdlint:allow(lock_discipline, reason = "poisoned arm: lock() failed, so no guard on `handle` is actually live during eviction")
            let response = corpus_error_response(&registry.evict_poisoned(corpus)).with_close();
            let status = response.status;
            // xfdlint:allow(lock_discipline, reason = "poisoned arm: lock() failed, so the error response is not written under a live guard")
            send_response_best_effort(stream, response);
            return status;
        }
    };
    // xfdlint:allow(lock_discipline, reason = "streaming endpoint: the NDJSON header is written while discovery holds the per-corpus handle by design")
    send_best_effort(
        stream,
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    );
    let sink = &mut *stream;
    let outcome = guard.discover_with_progress(config, |p| {
        let line = format!(
            "{{\"relation\": \"{}\", \"depth\": {}, \"cached\": {}, \"fds\": {}, \"keys\": {}, \"inter_fds\": {}, \"inter_keys\": {}}}\n",
            json_escape(p.name),
            p.depth,
            p.cached,
            p.fds,
            p.keys,
            p.inter_fds,
            p.inter_keys,
        );
        // xfdlint:allow(lock_discipline, reason = "streaming endpoint: progress lines are written while discovery holds the per-corpus handle by design")
        send_best_effort(sink, line.as_bytes());
    });
    state.metrics.observe_outcome(&outcome);
    let status = guard.status();
    let summary = format!(
        "{{\"done\": true, \"docs\": {}, \"fds\": {}, \"keys\": {}, \"redundancies\": {}, \"memo_hits\": {}, \"memo_misses\": {}}}\n",
        guard.len(),
        outcome.report.fds.len(),
        outcome.report.keys.len(),
        outcome.report.redundancies.len(),
        status.memo_hits,
        status.memo_misses,
    );
    // xfdlint:allow(lock_discipline, reason = "streaming endpoint: the summary line is written while discovery holds the per-corpus handle by design")
    send_best_effort(stream, summary.as_bytes());
    200
}

/// Parse the per-request discovery configuration from query parameters and
/// render the canonical fingerprint that goes into the content digest.
fn config_from_query(
    base: &DiscoveryConfig,
    request: &Request,
) -> Result<(DiscoveryConfig, String), String> {
    use xfd_relation::{OrderMode, SetColumnMode};

    let mut config = base.clone();
    for (key, value) in &request.query {
        match key.as_str() {
            "max-lhs" => {
                config.max_lhs_size = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("max-lhs: expected an integer, got {value:?}"))?,
                );
            }
            "inter" => config.inter_relation = parse_bool(key, value)?,
            "keep-uninteresting" => config.keep_uninteresting = parse_bool(key, value)?,
            "cache-budget" => {
                config.cache_budget = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("cache-budget: expected bytes, got {value:?}"))?,
                );
            }
            "threads" => {
                let threads = value
                    .parse::<usize>()
                    .map_err(|_| format!("threads: expected an integer, got {value:?}"))?;
                // Same convention as the CLI: 1 = sequential, 0 = auto.
                config.parallel = threads != 1;
                config.threads = threads;
            }
            "sets" => {
                config.encode.set_columns = if parse_bool(key, value)? {
                    SetColumnMode::All
                } else {
                    SetColumnMode::None
                };
            }
            "ordered" => {
                config.encode.order = if parse_bool(key, value)? {
                    OrderMode::Ordered
                } else {
                    OrderMode::Unordered
                };
            }
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    let fingerprint = format!(
        "cfg1|max_lhs={:?}|inter={}|keep={}|budget={:?}|parallel={}|threads={}|encode={:?}|prune=({},{},{})|targets={}|empty={}",
        config.max_lhs_size,
        config.inter_relation,
        config.keep_uninteresting,
        config.cache_budget,
        config.parallel,
        config.threads,
        config.encode,
        config.prune.rule1,
        config.prune.rule2,
        config.prune.key_prune,
        config.max_partition_targets,
        config.empty_lhs,
    );
    Ok((config, fingerprint))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "true" | "1" => Ok(true),
        "false" | "0" => Ok(false),
        other => Err(format!("{key}: expected true/false, got {other:?}")),
    }
}

/// Outcome of the shared intake path (config, digest, parse, cache, push).
enum Intake {
    /// The digest was already cached.
    CacheHit { digest: u128, body: Arc<String> },
    /// A job was accepted onto the queue.
    Enqueued { id: u64, digest: u128 },
    /// The request was answered early (error or backpressure).
    Rejected(Response),
}

/// Everything `POST /v1/discover` and `POST /v1/jobs` share: validate the
/// body frame, stream-parse while digesting, consult the cache, enqueue.
fn intake(state: &ServerState, request: &Request, body: &mut impl Read) -> Intake {
    if state.shutting_down() {
        return Intake::Rejected(
            Response::error(503, "server is draining").with_header("Retry-After", "5"),
        );
    }
    let (config, fingerprint) = match config_from_query(&state.config.discovery, request) {
        Ok(pair) => pair,
        Err(message) => return Intake::Rejected(Response::error(400, &message)),
    };
    let Some(content_length) = request.content_length else {
        return Intake::Rejected(Response::error(
            411,
            "Content-Length is required (chunked bodies are not supported)",
        ));
    };
    if content_length > state.config.max_body_bytes {
        state.metrics.observe_rejection("body_too_large");
        return Intake::Rejected(Response::error(
            413,
            &format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                state.config.max_body_bytes
            ),
        ));
    }

    let mut seed = ContentDigest::new();
    seed.update(fingerprint.as_bytes());

    // Small bodies spill into a bounded buffer and are digested *before*
    // any XML parsing, so a result-cache hit never touches the parser.
    // Bodies past the spill cap keep the streaming path: digest config +
    // bytes as they flow into the parser, never buffering the document.
    let tree;
    let digest;
    if content_length <= state.config.spill_buffer_bytes {
        let mut buf = Vec::with_capacity(content_length as usize);
        if let Err(e) = body.take(content_length).read_to_end(&mut buf) {
            return Intake::Rejected(Response::error(400, &format!("body read failed: {e}")));
        }
        if (buf.len() as u64) < content_length {
            return Intake::Rejected(Response::error(400, "body shorter than Content-Length"));
        }
        seed.update(&buf);
        digest = seed.finish();
        if let Some(cached) = state.cache.get(digest) {
            state.metrics.observe_parse_free_hit();
            return Intake::CacheHit {
                digest,
                body: cached,
            };
        }
        tree = match parse_reader(&mut buf.as_slice()) {
            Ok(tree) => tree,
            Err(e) => {
                return Intake::Rejected(Response::error(400, &format!("invalid XML: {e}")));
            }
        };
    } else {
        let mut digesting = DigestReader::with_seed(body.take(content_length), seed);
        tree = match parse_reader(&mut digesting) {
            Ok(tree) => tree,
            Err(e) => {
                return Intake::Rejected(Response::error(400, &format!("invalid XML: {e}")));
            }
        };
        if digesting.digest().len() != fingerprint.len() as u64 + content_length {
            // The parser stopped before the advertised end (trailing
            // garbage is a parse error, so this means a short body).
            return Intake::Rejected(Response::error(400, "body shorter than Content-Length"));
        }
        digest = digesting.digest().finish();
        if let Some(cached) = state.cache.get(digest) {
            return Intake::CacheHit {
                digest,
                body: cached,
            };
        }
    }

    let id = state.jobs.create(digest);
    match state.queue.try_push(Job {
        id,
        digest,
        tree,
        config,
    }) {
        Ok(()) => Intake::Enqueued { id, digest },
        Err(PushError::Full) => {
            state.metrics.observe_rejection("queue_full");
            state.jobs.mark_failed(id, "shed by backpressure".into());
            Intake::Rejected(
                Response::error(503, "queue full, retry shortly").with_header("Retry-After", "1"),
            )
        }
        Err(PushError::Closed) => Intake::Rejected(
            Response::error(503, "server is draining").with_header("Retry-After", "5"),
        ),
    }
}

/// `POST /v1/discover`: block until the report is ready (or time out with
/// a pollable job id).
fn discover_sync(state: &ServerState, request: &Request, body: &mut impl Read) -> Response {
    let (id, digest) = match intake(state, request, body) {
        Intake::CacheHit { body, .. } => {
            return Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "hit");
        }
        Intake::Enqueued { id, digest } => (id, digest),
        Intake::Rejected(response) => return response,
    };
    let deadline = Instant::now() + state.config.request_timeout;
    match state.jobs.wait_finished(id, deadline) {
        Some(job) => match job.status {
            JobStatus::Done => match job.result {
                Some(body) => {
                    Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "miss")
                }
                // A done job always carries its body; surface a table bug
                // as a 500 instead of panicking the connection thread.
                None => Response::error(500, "internal error: finished job lost its result"),
            },
            JobStatus::Failed(message) => Response::error(500, &message),
            // wait_finished only returns finished jobs; anything else is a
            // job-table bug, answered rather than panicked on.
            _ => Response::error(500, "internal error: job in unexpected state"),
        },
        None => {
            state.metrics.observe_rejection("timeout");
            Response::json(
                504,
                format!(
                    "{{\"error\": \"discovery exceeded the request deadline\", \"job\": {id}, \"poll\": \"/v1/jobs/{id}\", \"result\": \"/v1/results/{}\"}}\n",
                    format_digest(digest)
                ),
            )
        }
    }
}

/// `POST /v1/jobs`: accept and return immediately with polling URLs. A
/// cache hit still materializes a (finished) job so clients can treat both
/// paths uniformly.
fn submit_job(state: &ServerState, request: &Request, body: &mut impl Read) -> Response {
    let (id, digest) = match intake(state, request, body) {
        Intake::CacheHit { digest, body } => {
            let id = state.jobs.create(digest);
            state.jobs.mark_done(id, body);
            (id, digest)
        }
        Intake::Enqueued { id, digest } => (id, digest),
        Intake::Rejected(response) => return response,
    };
    Response::json(
        202,
        format!(
            "{{\"job\": {id}, \"status\": \"{}\", \"poll\": \"/v1/jobs/{id}\", \"result\": \"/v1/results/{}\"}}\n",
            state
                .jobs
                .get(id)
                .map(|j| j.status.name())
                .unwrap_or("queued"),
            format_digest(digest)
        ),
    )
}

/// `GET /v1/jobs/{id}`.
fn job_status(state: &ServerState, id_text: &str) -> Response {
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("malformed job id {id_text:?}"));
    };
    match state.jobs.get(id) {
        Some(job) => Response::json(200, job.render_json().into_bytes()),
        None => Response::error(404, "no such job (finished jobs are pruned eventually)"),
    }
}

/// `GET /v1/results/{digest}`.
fn result_lookup(state: &ServerState, digest_text: &str) -> Response {
    let Some(digest) = parse_digest(digest_text) else {
        return Response::error(400, "malformed digest (expected 32 hex digits)");
    };
    match state.cache.get(digest) {
        Some(body) => Response::json(200, body.as_bytes().to_vec()).with_header("X-Cache", "hit"),
        None => Response::error(404, "result not cached (re-run discovery)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_registry(tag: &str) -> CorpusRegistry {
        let root =
            std::env::temp_dir().join(format!("xfd-server-registry-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        CorpusRegistry {
            store: CorpusStore::new(root),
            handles: Mutex::new(HashMap::new()),
        }
    }

    #[test]
    fn poisoned_corpus_handle_is_evicted_and_reopens_from_disk() {
        let registry = tmp_registry("poison");
        let mut handle = registry.store.create("c").unwrap();
        let tree = xfd_xml::parse("<a><b><x>1</x></b><b><x>1</x></b></a>").unwrap();
        handle.add_doc("d1", &tree).unwrap();
        drop(handle);

        // Panic a thread while it holds the per-corpus lock.
        let shared = registry.shared_handle("c").unwrap();
        let victim = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            let _guard = victim.lock().unwrap();
            panic!("injected worker panic");
        });
        assert!(worker.join().is_err(), "worker must have panicked");

        // The next access reports the typed, retryable error and evicts.
        match registry.with_handle("c", |h| h.len()) {
            Err(CorpusError::Poisoned(name)) => assert_eq!(name, "c"),
            Err(other) => panic!("expected Poisoned, got {other}"),
            Ok(_) => panic!("poisoned handle served a request"),
        }

        // The retry reopens from the durable manifest: the document is back.
        let docs = registry
            .with_handle("c", |h| h.doc_names().join(","))
            .unwrap();
        assert_eq!(docs, "d1");
    }

    #[test]
    fn corpus_error_statuses_are_typed() {
        let poisoned = corpus_error_response(&CorpusError::Poisoned("c".into()));
        assert_eq!(poisoned.status, 503);
        assert!(
            poisoned
                .headers
                .iter()
                .any(|(k, v)| k == "Retry-After" && v == "1"),
            "poisoned-handle 503 must be marked retryable"
        );
        let missing = corpus_error_response(&CorpusError::CorpusNotFound("c".into()));
        assert_eq!(missing.status, 404);
        let corrupt = corpus_error_response(&CorpusError::Corrupt("seg".into()));
        assert_eq!(corrupt.status, 500);
    }
}
