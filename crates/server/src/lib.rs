#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! # xfd-server
//!
//! Serving mode for the DiscoverXFD system: a dependency-free HTTP/1.1
//! discovery daemon built directly on `std::net::TcpListener`.
//!
//! Endpoints:
//!
//! * `POST /v1/discover` — run discovery synchronously on the XML body and
//!   return the JSON report (byte-identical to `discoverxfd discover
//!   --json`); configuration knobs ride as query parameters.
//! * `POST /v1/jobs` + `GET /v1/jobs/{id}` — asynchronous submission with
//!   polling.
//! * `GET /v1/results/{digest}` — fetch a cached report by content digest.
//! * `GET /healthz`, `GET /metrics` — liveness and Prometheus-style
//!   metrics.
//!
//! The daemon is structured as connection threads feeding a bounded MPMC
//! [`queue`] consumed by a worker pool ([`server`]); rendered reports land
//! in a byte-budgeted, digest-keyed [`rescache`]. A full queue sheds load
//! with `503` + `Retry-After` rather than buffering unboundedly, and
//! SIGTERM drains queued jobs before exit.

pub mod digest;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod queue;
pub mod rescache;
pub mod server;
pub mod sync;

pub use server::{install_signal_handlers, Server, ServerConfig, ServerHandle};
