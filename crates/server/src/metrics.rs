//! Server metrics registry with Prometheus text exposition.
//!
//! Scalar counters live in atomics; the few labeled families
//! (endpoint×status request counts, rejection reasons, job outcomes) live
//! in mutexed `BTreeMap`s so `/metrics` renders with a deterministic label
//! order. Gauges owned by other subsystems (queue depth, in-flight jobs,
//! result-cache residency) are sampled at render time rather than
//! duplicated here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use discoverxfd::RunOutcome;

use crate::rescache::ResultCacheStats;
use crate::sync::lock_recover;

/// Point-in-time gauges sampled by the render path.
#[derive(Debug, Default, Clone, Copy)]
pub struct GaugeSnapshot {
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
    /// Jobs queued or running.
    pub jobs_inflight: u64,
    /// Result-cache counters.
    pub cache: ResultCacheStats,
    /// Warm worker pool counters (zeroed when no pool is configured).
    pub pool: xfd_cluster::PoolSnapshot,
}

/// The daemon's metrics registry.
pub struct Metrics {
    started: Instant,
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    rejected: Mutex<BTreeMap<&'static str, u64>>,
    jobs_finished: Mutex<BTreeMap<&'static str, u64>>,
    runs: AtomicU64,
    /// Worker panics contained by `catch_unwind` — should stay 0.
    worker_panics: AtomicU64,
    /// Result-cache hits answered from raw body bytes, XML parse skipped.
    parse_free_hits: AtomicU64,
    // Per-stage wall time, accumulated in microseconds.
    stage_infer_us: AtomicU64,
    stage_encode_us: AtomicU64,
    stage_discover_us: AtomicU64,
    stage_redundancy_us: AtomicU64,
    // Lattice totals over all runs.
    lattice_nodes: AtomicU64,
    lattice_partitions: AtomicU64,
    lattice_products: AtomicU64,
    lattice_cache_hits: AtomicU64,
    lattice_cache_misses: AtomicU64,
    lattice_evictions: AtomicU64,
    lattice_peak_bytes: AtomicU64,
    // Tiered partition-kernel counters over all runs.
    lattice_products_error_only: AtomicU64,
    lattice_products_materialized: AtomicU64,
    lattice_early_exits: AtomicU64,
    lattice_summary_hits: AtomicU64,
    // Relation-pass memo totals over all corpus discoveries.
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_evictions: AtomicU64,
    memo_resident_bytes: AtomicU64,
    // Cluster-mode counters (corpus discovery over worker subprocesses).
    cluster_workers: AtomicU64,
    cluster_tasks_done: AtomicU64,
    cluster_tasks_retried: AtomicU64,
    cluster_tasks_fallback: AtomicU64,
    cluster_retries: AtomicU64,
    cluster_runs_fallback: AtomicU64,
    /// Segment bytes shipped to storage-less cluster workers.
    segments_shipped_bytes: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh registry; `started` anchors the uptime gauge.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            rejected: Mutex::new(BTreeMap::new()),
            jobs_finished: Mutex::new(BTreeMap::new()),
            runs: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            parse_free_hits: AtomicU64::new(0),
            stage_infer_us: AtomicU64::new(0),
            stage_encode_us: AtomicU64::new(0),
            stage_discover_us: AtomicU64::new(0),
            stage_redundancy_us: AtomicU64::new(0),
            lattice_nodes: AtomicU64::new(0),
            lattice_partitions: AtomicU64::new(0),
            lattice_products: AtomicU64::new(0),
            lattice_cache_hits: AtomicU64::new(0),
            lattice_cache_misses: AtomicU64::new(0),
            lattice_evictions: AtomicU64::new(0),
            lattice_peak_bytes: AtomicU64::new(0),
            lattice_products_error_only: AtomicU64::new(0),
            lattice_products_materialized: AtomicU64::new(0),
            lattice_early_exits: AtomicU64::new(0),
            lattice_summary_hits: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            memo_evictions: AtomicU64::new(0),
            memo_resident_bytes: AtomicU64::new(0),
            cluster_workers: AtomicU64::new(0),
            cluster_tasks_done: AtomicU64::new(0),
            cluster_tasks_retried: AtomicU64::new(0),
            cluster_tasks_fallback: AtomicU64::new(0),
            cluster_retries: AtomicU64::new(0),
            cluster_runs_fallback: AtomicU64::new(0),
            segments_shipped_bytes: AtomicU64::new(0),
        }
    }

    /// Fold one cluster run's counters in. The gauge tracks the live
    /// worker count of the most recent run.
    pub fn observe_cluster(&self, stats: &xfd_cluster::ClusterStats) {
        self.cluster_workers
            .store(stats.workers_live, Ordering::Relaxed);
        self.cluster_tasks_done
            .fetch_add(stats.encode_remote + stats.pass_remote, Ordering::Relaxed);
        self.cluster_tasks_retried
            .fetch_add(stats.tasks_retried, Ordering::Relaxed);
        self.cluster_tasks_fallback
            .fetch_add(stats.tasks_fallback, Ordering::Relaxed);
        self.cluster_retries
            .fetch_add(stats.tasks_retried, Ordering::Relaxed);
        self.segments_shipped_bytes
            .fetch_add(stats.segment_ship_bytes, Ordering::Relaxed);
    }

    /// Count one corpus discovery that fell back to in-process execution
    /// because the cluster could not be set up at all.
    pub fn observe_cluster_fallback(&self) {
        self.cluster_workers.store(0, Ordering::Relaxed);
        self.cluster_runs_fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one result-cache hit that skipped XML parsing entirely.
    pub fn observe_parse_free_hit(&self) {
        self.parse_free_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one handled request by endpoint pattern and status code.
    pub fn observe_request(&self, endpoint: &str, status: u16) {
        *lock_recover(&self.requests)
            .entry((endpoint.to_string(), status))
            .or_insert(0) += 1;
    }

    /// Count one shed request (`reason`: `queue_full`, `body_too_large`,
    /// `timeout`, ...).
    pub fn observe_rejection(&self, reason: &'static str) {
        *lock_recover(&self.rejected).entry(reason).or_insert(0) += 1;
    }

    /// Count one finished job by terminal status name.
    pub fn observe_job_finished(&self, status: &'static str) {
        *lock_recover(&self.jobs_finished).entry(status).or_insert(0) += 1;
    }

    /// Count one worker panic contained by the pool's `catch_unwind`.
    pub fn observe_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker panics contained so far (tests assert this stays 0).
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Fold one completed discovery run's timings and lattice counters in.
    pub fn observe_outcome(&self, outcome: &RunOutcome) {
        self.runs.fetch_add(1, Ordering::Relaxed);
        let p = &outcome.profile;
        self.stage_infer_us
            .fetch_add(p.infer.as_micros() as u64, Ordering::Relaxed);
        self.stage_encode_us
            .fetch_add(p.encode.as_micros() as u64, Ordering::Relaxed);
        self.stage_discover_us
            .fetch_add(p.discover.as_micros() as u64, Ordering::Relaxed);
        self.stage_redundancy_us
            .fetch_add(p.redundancy.as_micros() as u64, Ordering::Relaxed);
        let l = &outcome.stats.lattice;
        self.lattice_nodes
            .fetch_add(l.nodes_visited as u64, Ordering::Relaxed);
        self.lattice_partitions
            .fetch_add(l.partitions_built as u64, Ordering::Relaxed);
        self.lattice_products
            .fetch_add(l.products as u64, Ordering::Relaxed);
        self.lattice_cache_hits
            .fetch_add(l.cache_hits as u64, Ordering::Relaxed);
        self.lattice_cache_misses
            .fetch_add(l.cache_misses as u64, Ordering::Relaxed);
        self.lattice_evictions
            .fetch_add(l.evictions as u64, Ordering::Relaxed);
        self.lattice_peak_bytes
            .fetch_max(l.peak_resident_bytes as u64, Ordering::Relaxed);
        self.lattice_products_error_only
            .fetch_add(l.products_error_only as u64, Ordering::Relaxed);
        self.lattice_products_materialized
            .fetch_add(l.products_materialized as u64, Ordering::Relaxed);
        self.lattice_early_exits
            .fetch_add(l.early_exits as u64, Ordering::Relaxed);
        self.lattice_summary_hits
            .fetch_add(l.summary_hits as u64, Ordering::Relaxed);
        let m = &outcome.stats.memo;
        self.memo_hits.fetch_add(m.hits, Ordering::Relaxed);
        self.memo_misses.fetch_add(m.misses, Ordering::Relaxed);
        self.memo_evictions
            .fetch_add(m.evictions, Ordering::Relaxed);
        self.memo_resident_bytes
            .store(m.resident_bytes as u64, Ordering::Relaxed);
    }

    /// Render the Prometheus text exposition, merging in gauges sampled
    /// from the queue, job table, and result cache.
    pub fn render(&self, gauges: &GaugeSnapshot) -> String {
        let mut out = String::with_capacity(4096);
        let mut metric = |name: &str, help: &str, kind: &str, body: &str| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{body}"
            ));
        };

        let requests = lock_recover(&self.requests);
        let mut body = String::new();
        for ((endpoint, code), count) in requests.iter() {
            body.push_str(&format!(
                "discoverxfd_http_requests_total{{endpoint=\"{endpoint}\",code=\"{code}\"}} {count}\n"
            ));
        }
        drop(requests);
        metric(
            "discoverxfd_http_requests_total",
            "HTTP requests handled, by endpoint pattern and status code.",
            "counter",
            &body,
        );

        let rejected = lock_recover(&self.rejected);
        let mut body = String::new();
        for (reason, count) in rejected.iter() {
            body.push_str(&format!(
                "discoverxfd_http_rejected_total{{reason=\"{reason}\"}} {count}\n"
            ));
        }
        drop(rejected);
        metric(
            "discoverxfd_http_rejected_total",
            "Requests shed by backpressure or limits, by reason.",
            "counter",
            &body,
        );

        metric(
            "discoverxfd_queue_depth",
            "Jobs currently waiting in the queue.",
            "gauge",
            &format!("discoverxfd_queue_depth {}\n", gauges.queue_depth),
        );
        metric(
            "discoverxfd_queue_capacity",
            "Configured queue capacity.",
            "gauge",
            &format!("discoverxfd_queue_capacity {}\n", gauges.queue_capacity),
        );
        metric(
            "discoverxfd_jobs_inflight",
            "Jobs queued or running.",
            "gauge",
            &format!("discoverxfd_jobs_inflight {}\n", gauges.jobs_inflight),
        );

        let finished = lock_recover(&self.jobs_finished);
        let mut body = String::new();
        for (status, count) in finished.iter() {
            body.push_str(&format!(
                "discoverxfd_jobs_finished_total{{status=\"{status}\"}} {count}\n"
            ));
        }
        drop(finished);
        metric(
            "discoverxfd_jobs_finished_total",
            "Jobs finished, by terminal status.",
            "counter",
            &body,
        );

        let cache = &gauges.cache;
        metric(
            "discoverxfd_result_cache_hits_total",
            "Result-cache lookups that found a rendered report.",
            "counter",
            &format!("discoverxfd_result_cache_hits_total {}\n", cache.hits),
        );
        metric(
            "discoverxfd_result_cache_misses_total",
            "Result-cache lookups that missed.",
            "counter",
            &format!("discoverxfd_result_cache_misses_total {}\n", cache.misses),
        );
        metric(
            "discoverxfd_result_cache_evictions_total",
            "Result-cache entries evicted by the byte budget.",
            "counter",
            &format!(
                "discoverxfd_result_cache_evictions_total {}\n",
                cache.evictions
            ),
        );
        metric(
            "discoverxfd_result_cache_resident_bytes",
            "Bytes of rendered reports currently cached.",
            "gauge",
            &format!(
                "discoverxfd_result_cache_resident_bytes {}\n",
                cache.resident_bytes
            ),
        );
        metric(
            "discoverxfd_result_cache_entries",
            "Rendered reports currently cached.",
            "gauge",
            &format!("discoverxfd_result_cache_entries {}\n", cache.entries),
        );

        metric(
            "discoverxfd_parse_free_hits_total",
            "Result-cache hits answered from raw body bytes without parsing XML.",
            "counter",
            &format!(
                "discoverxfd_parse_free_hits_total {}\n",
                self.parse_free_hits.load(Ordering::Relaxed)
            ),
        );

        let memo = [
            ("hits", &self.memo_hits),
            ("misses", &self.memo_misses),
            ("evictions", &self.memo_evictions),
        ];
        let mut body = String::new();
        for (counter, value) in memo {
            body.push_str(&format!(
                "discoverxfd_memo_total{{counter=\"{counter}\"}} {}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        metric(
            "discoverxfd_memo_total",
            "Relation-pass memo hits, misses, and budget evictions across corpus discoveries.",
            "counter",
            &body,
        );
        metric(
            "discoverxfd_memo_resident_bytes",
            "Approximate bytes of memoized relation passes after the latest corpus discovery.",
            "gauge",
            &format!(
                "discoverxfd_memo_resident_bytes {}\n",
                self.memo_resident_bytes.load(Ordering::Relaxed)
            ),
        );

        metric(
            "discoverxfd_worker_panics_total",
            "Worker panics contained by catch_unwind; anything above 0 is a bug.",
            "counter",
            &format!(
                "discoverxfd_worker_panics_total {}\n",
                self.worker_panics.load(Ordering::Relaxed)
            ),
        );

        metric(
            "discoverxfd_runs_total",
            "Discovery pipeline runs completed.",
            "counter",
            &format!(
                "discoverxfd_runs_total {}\n",
                self.runs.load(Ordering::Relaxed)
            ),
        );

        let stages = [
            ("infer", &self.stage_infer_us),
            ("encode", &self.stage_encode_us),
            ("discover", &self.stage_discover_us),
            ("redundancy", &self.stage_redundancy_us),
        ];
        let mut body = String::new();
        for (stage, us) in stages {
            body.push_str(&format!(
                "discoverxfd_stage_seconds_total{{stage=\"{stage}\"}} {:.6}\n",
                us.load(Ordering::Relaxed) as f64 / 1e6
            ));
        }
        metric(
            "discoverxfd_stage_seconds_total",
            "Wall time spent per pipeline stage across all runs.",
            "counter",
            &body,
        );

        let lattice = [
            ("nodes_visited", &self.lattice_nodes),
            ("partitions_built", &self.lattice_partitions),
            ("products", &self.lattice_products),
            ("cache_hits", &self.lattice_cache_hits),
            ("cache_misses", &self.lattice_cache_misses),
            ("evictions", &self.lattice_evictions),
            ("products_error_only", &self.lattice_products_error_only),
            ("products_materialized", &self.lattice_products_materialized),
            ("early_exits", &self.lattice_early_exits),
            ("summary_hits", &self.lattice_summary_hits),
        ];
        let mut body = String::new();
        for (counter, value) in lattice {
            body.push_str(&format!(
                "discoverxfd_lattice_total{{counter=\"{counter}\"}} {}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        metric(
            "discoverxfd_lattice_total",
            "DiscoverXFD lattice work counters summed across runs.",
            "counter",
            &body,
        );
        metric(
            "discoverxfd_lattice_peak_resident_bytes",
            "Largest partition-cache residency seen in any single run.",
            "gauge",
            &format!(
                "discoverxfd_lattice_peak_resident_bytes {}\n",
                self.lattice_peak_bytes.load(Ordering::Relaxed)
            ),
        );

        metric(
            "discoverxfd_cluster_workers",
            "Live worker subprocesses in the most recent cluster-mode discovery.",
            "gauge",
            &format!(
                "discoverxfd_cluster_workers {}\n",
                self.cluster_workers.load(Ordering::Relaxed)
            ),
        );
        let cluster_tasks = [
            ("done", &self.cluster_tasks_done),
            ("retried", &self.cluster_tasks_retried),
            ("fallback", &self.cluster_tasks_fallback),
        ];
        let mut body = String::new();
        for (status, value) in cluster_tasks {
            body.push_str(&format!(
                "discoverxfd_cluster_tasks_total{{status=\"{status}\"}} {}\n",
                value.load(Ordering::Relaxed)
            ));
        }
        metric(
            "discoverxfd_cluster_tasks_total",
            "Cluster-mode tasks by outcome across all corpus discoveries.",
            "counter",
            &body,
        );
        metric(
            "discoverxfd_cluster_retries_total",
            "Cluster-mode task reassignments after a worker was lost or answered badly.",
            "counter",
            &format!(
                "discoverxfd_cluster_retries_total {}\n",
                self.cluster_retries.load(Ordering::Relaxed)
            ),
        );
        metric(
            "discoverxfd_cluster_fallback_runs_total",
            "Corpus discoveries that fell back to in-process execution because no cluster could be set up.",
            "counter",
            &format!(
                "discoverxfd_cluster_fallback_runs_total {}\n",
                self.cluster_runs_fallback.load(Ordering::Relaxed)
            ),
        );

        let pool = &gauges.pool;
        let pool_states = [
            ("warm", pool.warm_workers),
            ("spawning", pool.spawning),
            ("reaped", pool.reaped_total),
        ];
        let mut body = String::new();
        for (pool_state, value) in pool_states {
            body.push_str(&format!(
                "discoverxfd_pool_workers{{state=\"{pool_state}\"}} {value}\n"
            ));
        }
        metric(
            "discoverxfd_pool_workers",
            "Warm worker pool: live pooled workers, clusters mid-spawn, and entries retired so far.",
            "gauge",
            &body,
        );
        metric(
            "discoverxfd_pool_warm_hits_total",
            "Corpus discoveries served by a warm pool entry (no spawn, no handshake, no shipping).",
            "counter",
            &format!(
                "discoverxfd_pool_warm_hits_total {}\n",
                pool.warm_hits_total
            ),
        );
        metric(
            "discoverxfd_segments_shipped_bytes_total",
            "Segment bytes shipped over the wire to cluster workers without shared storage.",
            "counter",
            &format!(
                "discoverxfd_segments_shipped_bytes_total {}\n",
                self.segments_shipped_bytes.load(Ordering::Relaxed)
            ),
        );

        metric(
            "discoverxfd_uptime_seconds",
            "Seconds since the server started.",
            "gauge",
            &format!(
                "discoverxfd_uptime_seconds {:.3}\n",
                self.started.elapsed().as_secs_f64()
            ),
        );

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(m: &Metrics) -> String {
        m.render(&GaugeSnapshot::default())
    }

    #[test]
    fn request_counters_render_with_sorted_labels() {
        let m = Metrics::new();
        m.observe_request("/v1/discover", 200);
        m.observe_request("/v1/discover", 200);
        m.observe_request("/healthz", 200);
        m.observe_request("/v1/discover", 503);
        let text = render(&m);
        assert!(text.contains(
            "discoverxfd_http_requests_total{endpoint=\"/v1/discover\",code=\"200\"} 2\n"
        ));
        assert!(text.contains(
            "discoverxfd_http_requests_total{endpoint=\"/v1/discover\",code=\"503\"} 1\n"
        ));
        assert!(text
            .contains("discoverxfd_http_requests_total{endpoint=\"/healthz\",code=\"200\"} 1\n"));
    }

    #[test]
    fn every_family_has_help_and_type_lines() {
        let m = Metrics::new();
        let text = render(&m);
        for family in [
            "discoverxfd_http_requests_total",
            "discoverxfd_http_rejected_total",
            "discoverxfd_queue_depth",
            "discoverxfd_jobs_inflight",
            "discoverxfd_jobs_finished_total",
            "discoverxfd_result_cache_hits_total",
            "discoverxfd_worker_panics_total",
            "discoverxfd_runs_total",
            "discoverxfd_stage_seconds_total",
            "discoverxfd_lattice_total",
            "discoverxfd_cluster_workers",
            "discoverxfd_cluster_tasks_total",
            "discoverxfd_cluster_retries_total",
            "discoverxfd_cluster_fallback_runs_total",
            "discoverxfd_pool_workers",
            "discoverxfd_pool_warm_hits_total",
            "discoverxfd_segments_shipped_bytes_total",
            "discoverxfd_uptime_seconds",
        ] {
            assert!(text.contains(&format!("# HELP {family} ")), "{family}");
            assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
        }
    }

    #[test]
    fn outcome_observation_accumulates_stage_time_and_lattice_work() {
        let m = Metrics::new();
        let xml = "<r><t><a>1</a><b>x</b></t><t><a>2</a><b>x</b></t></r>";
        let tree = xfd_xml::parse(xml).unwrap();
        let outcome = discoverxfd::discover(&tree, &discoverxfd::DiscoveryConfig::default());
        m.observe_outcome(&outcome);
        m.observe_outcome(&outcome);
        let text = render(&m);
        assert!(text.contains("discoverxfd_runs_total 2\n"), "{text}");
        let expected = outcome.stats.lattice.nodes_visited as u64 * 2;
        assert!(
            text.contains(&format!(
                "discoverxfd_lattice_total{{counter=\"nodes_visited\"}} {expected}\n"
            )),
            "{text}"
        );
    }

    #[test]
    fn cluster_observations_render_by_status() {
        let m = Metrics::new();
        let stats = xfd_cluster::ClusterStats {
            workers_spawned: 2,
            workers_live: 2,
            encode_remote: 3,
            pass_remote: 4,
            tasks_retried: 1,
            tasks_fallback: 2,
            ..xfd_cluster::ClusterStats::default()
        };
        m.observe_cluster(&stats);
        m.observe_cluster_fallback();
        let text = render(&m);
        assert!(text.contains("discoverxfd_cluster_workers 0\n"), "{text}");
        assert!(
            text.contains("discoverxfd_cluster_tasks_total{status=\"done\"} 7\n"),
            "{text}"
        );
        assert!(
            text.contains("discoverxfd_cluster_tasks_total{status=\"retried\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("discoverxfd_cluster_tasks_total{status=\"fallback\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("discoverxfd_cluster_retries_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("discoverxfd_cluster_fallback_runs_total 1\n"),
            "{text}"
        );
    }

    #[test]
    fn rejections_and_job_outcomes_render() {
        let m = Metrics::new();
        m.observe_rejection("queue_full");
        m.observe_rejection("queue_full");
        m.observe_rejection("body_too_large");
        m.observe_job_finished("done");
        m.observe_job_finished("failed");
        let text = render(&m);
        assert!(text.contains("discoverxfd_http_rejected_total{reason=\"queue_full\"} 2\n"));
        assert!(text.contains("discoverxfd_http_rejected_total{reason=\"body_too_large\"} 1\n"));
        assert!(text.contains("discoverxfd_jobs_finished_total{status=\"done\"} 1\n"));
        assert!(text.contains("discoverxfd_jobs_finished_total{status=\"failed\"} 1\n"));
    }
}
