//! Minimal HTTP/1.1 request parsing and response writing over `std::io`.
//!
//! Hand-rolled on purpose: the serving mode must not add external
//! dependencies to the vendored offline build. The parser covers the
//! subset the daemon speaks — request line, headers (including RFC 7230
//! `obs-fold` continuation lines), `Content-Length`-delimited bodies, and
//! `Transfer-Encoding: chunked` bodies (decoded by
//! [`read_chunked_body`] under the same byte cap as the length-delimited
//! path) — and is hardened against the classic malformed-request failure
//! modes: oversized request lines and header blocks, header-count blowup,
//! duplicate conflicting `Content-Length`, non-numeric or overflowing
//! lengths, truncated requests, requests carrying both `Content-Length`
//! and `Transfer-Encoding` (a smuggling vector), and transfer codings
//! other than `chunked` (which the daemon deliberately refuses rather
//! than mis-framing).

use std::io::{BufRead, Read, Write};

/// Parser limits; defaults sized for discovery requests (small heads, a
/// potentially large XML body whose cap is enforced by the caller).
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line in bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line (after folding) in bytes.
    pub max_header_line: usize,
    /// Most headers per request.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 16 * 1024,
            max_headers: 128,
        }
    }
}

/// A parsed request head. The body (if any) stays on the wire for the
/// caller to stream.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (as sent; methods are case-sensitive).
    pub method: String,
    /// Decoded path component of the target, without the query string.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Parsed `Content-Length`, if present.
    pub content_length: Option<u64>,
    /// `true` when the body arrives `Transfer-Encoding: chunked`; the
    /// caller decodes it with [`read_chunked_body`].
    pub chunked: bool,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
}

impl Request {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client expects the connection to stay open after this
    /// request: HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 only keeps alive on an explicit `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        let connection = self.header("connection").unwrap_or("");
        let says = |token: &str| {
            connection
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        if self.http11 {
            !says("close")
        } else {
            says("keep-alive")
        }
    }
}

/// Why a request head could not be parsed; maps onto a response status.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (→ 400).
    BadRequest(String),
    /// Request line over the limit (→ 414).
    UriTooLong,
    /// Header line/count over the limit (→ 431).
    HeadersTooLarge,
    /// `Transfer-Encoding` framing we do not implement (→ 501).
    NotImplemented(String),
    /// A chunked body grew past the configured byte cap (→ 413).
    PayloadTooLarge(u64),
    /// The peer closed the connection before a full head arrived; nothing
    /// to respond to.
    ConnectionClosed,
    /// Transport failure mid-head.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::UriTooLong => write!(f, "request line too long"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::NotImplemented(m) => write!(f, "not implemented: {m}"),
            HttpError::PayloadTooLarge(limit) => {
                write!(f, "chunked body exceeds the {limit} byte limit")
            }
            HttpError::ConnectionClosed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Read one line terminated by `\n`, enforcing `limit` bytes (terminator
/// included). Returns the line without `\r\n`/`\n`.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut take = reader.by_ref().take(limit as u64 + 1);
    match take.read_until(b'\n', &mut raw) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(HttpError::Io(e)),
    }
    if raw.last() != Some(&b'\n') {
        if raw.len() > limit {
            return Err(HttpError::HeadersTooLarge);
        }
        // EOF mid-line: a truncated request.
        return Err(HttpError::BadRequest("truncated request head".into()));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("non-UTF-8 bytes in request head".into()))
}

/// Parse a request head from `reader`, leaving the body unread.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let request_line = match read_line(reader, limits.max_request_line) {
        Ok(Some(l)) => l,
        Ok(None) => return Err(HttpError::ConnectionClosed),
        Err(HttpError::HeadersTooLarge) => return Err(HttpError::UriTooLong),
        Err(e) => return Err(e),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }

    // Headers, with obs-fold continuation lines appended to the previous
    // header's value (separated by one space, per RFC 7230 §3.2.4).
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_header_line)? {
            Some(l) => l,
            None => return Err(HttpError::BadRequest("truncated header block".into())),
        };
        if line.is_empty() {
            break;
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            match headers.last_mut() {
                Some((_, v)) => {
                    if v.len() + line.len() > limits.max_header_line {
                        return Err(HttpError::HeadersTooLarge);
                    }
                    v.push(' ');
                    v.push_str(line.trim());
                }
                None => {
                    return Err(HttpError::BadRequest(
                        "continuation line before any header".into(),
                    ))
                }
            }
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadRequest(format!(
                "header without colon: {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Transfer-Encoding: only `chunked` is implemented; any other coding
    // is refused rather than mis-framed.
    let mut chunked = false;
    for (_, v) in headers.iter().filter(|(k, _)| k == "transfer-encoding") {
        for token in v.split(',') {
            let token = token.trim();
            if token.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if !token.is_empty() {
                return Err(HttpError::NotImplemented(format!(
                    "transfer-encoding {token:?}"
                )));
            }
        }
    }

    // All Content-Length values (multiple headers or a comma-joined list)
    // must agree and parse as a decimal within u64.
    let mut content_length: Option<u64> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        for item in v.split(',') {
            let item = item.trim();
            let parsed: u64 = item
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {item:?}")))?;
            match content_length {
                None => content_length = Some(parsed),
                Some(prev) if prev == parsed => {}
                Some(prev) => {
                    return Err(HttpError::BadRequest(format!(
                        "conflicting content-length values {prev} and {parsed}"
                    )))
                }
            }
        }
    }

    // A request carrying both framings is a smuggling vector (RFC 7230
    // §3.3.3 says Transfer-Encoding wins, but intermediaries disagree
    // often enough that rejecting outright is the safe answer).
    if chunked && content_length.is_some() {
        return Err(HttpError::BadRequest(
            "both Transfer-Encoding and Content-Length present".into(),
        ));
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw)
        .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in path".into()))?;
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in query".into()))?;
            let v = percent_decode(v)
                .ok_or_else(|| HttpError::BadRequest("bad percent-encoding in query".into()))?;
            query.push((k, v));
        }
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        content_length,
        chunked,
        http11: version == "HTTP/1.1",
    })
}

/// Decode a `Transfer-Encoding: chunked` body into memory.
///
/// Enforces the same byte cap as the `Content-Length` path (`max_bytes` →
/// [`HttpError::PayloadTooLarge`]) plus the head limits on chunk-size
/// lines and trailer count. Consumes the terminating zero-size chunk and
/// the trailer section, leaving the connection aligned on the next
/// request head so keep-alive reuse stays sound.
pub fn read_chunked_body(
    reader: &mut impl BufRead,
    max_bytes: u64,
    limits: &Limits,
) -> Result<Vec<u8>, HttpError> {
    fn eof_as_truncation(e: std::io::Error, what: &str) -> HttpError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            HttpError::BadRequest(format!("truncated chunked body ({what})"))
        } else {
            HttpError::Io(e)
        }
    }

    let mut body: Vec<u8> = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_header_line)? {
            Some(l) => l,
            None => return Err(HttpError::BadRequest("truncated chunked body".into())),
        };
        // Chunk extensions (`;name=value`) are permitted and ignored.
        let size_text = line.split(';').next().unwrap_or("").trim();
        if size_text.is_empty() || !size_text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(HttpError::BadRequest(format!(
                "bad chunk size {size_text:?}"
            )));
        }
        let size = u64::from_str_radix(size_text, 16)
            .map_err(|_| HttpError::BadRequest(format!("overflowing chunk size {size_text:?}")))?;
        if size == 0 {
            break;
        }
        if (body.len() as u64).saturating_add(size) > max_bytes {
            return Err(HttpError::PayloadTooLarge(max_bytes));
        }
        let start = body.len();
        body.resize(start + size as usize, 0);
        let Some(chunk) = body.get_mut(start..) else {
            return Err(HttpError::BadRequest("chunk bookkeeping overflow".into()));
        };
        reader
            .read_exact(chunk)
            .map_err(|e| eof_as_truncation(e, "chunk data"))?;
        // The CRLF after the chunk data (a bare LF is tolerated, matching
        // the leniency of the head parser).
        let mut b = [0u8; 1];
        reader
            .read_exact(&mut b)
            .map_err(|e| eof_as_truncation(e, "chunk terminator"))?;
        if b == [b'\r'] {
            reader
                .read_exact(&mut b)
                .map_err(|e| eof_as_truncation(e, "chunk terminator"))?;
        }
        if b != [b'\n'] {
            return Err(HttpError::BadRequest(
                "missing CRLF after chunk data".into(),
            ));
        }
    }
    // Trailer section: skipped, but bounded like the header block.
    let mut trailers = 0usize;
    loop {
        let line = match read_line(reader, limits.max_header_line)? {
            Some(l) => l,
            None => return Err(HttpError::BadRequest("truncated chunked trailer".into())),
        };
        if line.is_empty() {
            break;
        }
        trailers += 1;
        if trailers > limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
    }
    Ok(body)
}

/// Decode `%XX` escapes and `+` (as space); `None` on malformed escapes or
/// non-UTF-8 results.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') && !s.contains('+') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let hi = char::from(*bytes.get(i + 1)?).to_digit(16)?;
                let lo = char::from(*bytes.get(i + 2)?).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// An outgoing response. `write_to` adds `Content-Length` and a
/// `Connection` header: `keep-alive` by default (HTTP/1.1 connections are
/// reused up to the server's per-connection request cap and idle timeout),
/// `close` when [`Response::close`] is set by the connection loop.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond the defaults.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether the connection closes after this response.
    pub close: bool,
}

impl Response {
    /// A response with a JSON body.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
            close: false,
        }
    }

    /// A response with a plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
            body: body.into(),
            close: false,
        }
    }

    /// A JSON error body `{"error": "..."}` with properly escaped text.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\": \"{}\"}}\n", json_escape(message)),
        )
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Mark the connection to close after this response.
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serialize onto the wire.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        )?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        let connection = if self.close { "close" } else { "keep-alive" };
        write!(w, "Connection: {connection}\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Minimal JSON string escaping for error messages.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Canonical reason phrase for the status codes the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_head(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_request() {
        let r = parse_head("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.content_length, None);
    }

    #[test]
    fn parses_query_parameters() {
        let r =
            parse_head("POST /v1/discover?max-lhs=2&threads=4&tag=a%20b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.query_param("max-lhs"), Some("2"));
        assert_eq!(r.query_param("threads"), Some("4"));
        assert_eq!(r.query_param("tag"), Some("a b"));
        assert_eq!(r.query_param("absent"), None);
    }

    #[test]
    fn header_names_are_case_insensitive_and_values_trimmed() {
        let r = parse_head("GET / HTTP/1.1\r\nCoNtEnT-LeNgTh:   42  \r\n\r\n").unwrap();
        assert_eq!(r.content_length, Some(42));
    }

    #[test]
    fn obs_fold_continuation_lines_join_the_previous_header() {
        let r =
            parse_head("GET / HTTP/1.1\r\nX-Long: part one\r\n  part two\r\n\tpart three\r\n\r\n")
                .unwrap();
        assert_eq!(r.header("x-long"), Some("part one part two part three"));
    }

    #[test]
    fn continuation_before_any_header_is_rejected() {
        assert!(matches!(
            parse_head("GET / HTTP/1.1\r\n  folded\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn duplicate_agreeing_content_lengths_are_accepted() {
        let r = parse_head("POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n")
            .unwrap();
        assert_eq!(r.content_length, Some(7));
        let r = parse_head("POST / HTTP/1.1\r\nContent-Length: 7, 7\r\n\r\n").unwrap();
        assert_eq!(r.content_length, Some(7));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        for head in [
            "POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 8\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: 7, 8\r\n\r\n",
        ] {
            assert!(
                matches!(parse_head(head), Err(HttpError::BadRequest(_))),
                "{head:?}"
            );
        }
    }

    #[test]
    fn malformed_content_lengths_are_rejected() {
        for bad in ["abc", "-1", "1e3", "99999999999999999999999999"] {
            let head = format!("POST / HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n");
            assert!(
                matches!(parse_head(&head), Err(HttpError::BadRequest(_))),
                "{bad}"
            );
        }
    }

    #[test]
    fn chunked_transfer_encoding_is_accepted_and_flagged() {
        let r = parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
        assert!(r.chunked);
        assert_eq!(r.content_length, None);
        let r = parse_head("POST / HTTP/1.1\r\nTransfer-Encoding: Chunked\r\n\r\n").unwrap();
        assert!(r.chunked, "coding names are case-insensitive");
    }

    #[test]
    fn non_chunked_transfer_encodings_are_refused() {
        for coding in ["gzip", "gzip, chunked", "chunked, gzip"] {
            let head = format!("POST / HTTP/1.1\r\nTransfer-Encoding: {coding}\r\n\r\n");
            assert!(
                matches!(parse_head(&head), Err(HttpError::NotImplemented(_))),
                "{coding}"
            );
        }
    }

    #[test]
    fn chunked_with_content_length_is_a_smuggling_error() {
        assert!(matches!(
            parse_head(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n"
            ),
            Err(HttpError::BadRequest(_))
        ));
    }

    fn decode_chunked(raw: &[u8], max: u64) -> Result<Vec<u8>, HttpError> {
        read_chunked_body(&mut BufReader::new(raw), max, &Limits::default())
    }

    #[test]
    fn chunked_bodies_decode_across_chunk_boundaries() {
        let raw = b"5\r\nhello\r\n1\r\n \r\n6\r\nworld!\r\n0\r\n\r\n";
        assert_eq!(decode_chunked(raw, 1024).unwrap(), b"hello world!");
    }

    #[test]
    fn chunk_extensions_and_trailers_are_skipped() {
        let raw = b"5;ext=1;other\r\nhello\r\n0\r\nX-Trailer: v\r\nX-More: w\r\n\r\n";
        assert_eq!(decode_chunked(raw, 1024).unwrap(), b"hello");
    }

    #[test]
    fn chunked_body_over_the_cap_is_payload_too_large() {
        let raw = b"5\r\nhello\r\n5\r\nworld\r\n0\r\n\r\n";
        assert!(matches!(
            decode_chunked(raw, 8),
            Err(HttpError::PayloadTooLarge(8))
        ));
        // A single huge declared chunk is rejected before any allocation.
        let raw = b"ffffffffffffffff\r\n";
        assert!(matches!(
            decode_chunked(raw, 1024),
            Err(HttpError::PayloadTooLarge(_))
        ));
    }

    #[test]
    fn malformed_and_truncated_chunked_bodies_are_clean_errors() {
        for raw in [
            b"zz\r\nhello\r\n0\r\n\r\n".to_vec(), // non-hex size
            b"\r\nhello\r\n0\r\n\r\n".to_vec(),   // empty size line
            b"5\r\nhel".to_vec(),                 // EOF mid-chunk
            b"5\r\nhelloXX".to_vec(),             // bad terminator
            b"5\r\nhello\r\n".to_vec(),           // EOF before final chunk
            b"0\r\nX-Trailer: v\r\n".to_vec(),    // EOF mid-trailer
        ] {
            assert!(
                matches!(decode_chunked(&raw, 1024), Err(HttpError::BadRequest(_))),
                "{raw:?}"
            );
        }
    }

    #[test]
    fn chunked_decode_leaves_the_reader_aligned_for_keep_alive() {
        let wire = b"5\r\nhello\r\n0\r\n\r\nGET /next HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&wire[..]);
        let body = read_chunked_body(&mut reader, 1024, &Limits::default()).unwrap();
        assert_eq!(body, b"hello");
        let next = read_request(&mut reader, &Limits::default()).unwrap();
        assert_eq!(next.path, "/next");
    }

    #[test]
    fn truncated_requests_are_clean_errors() {
        for truncated in [
            "GET / HTTP/1.1\r\nHost: x",     // EOF mid-header
            "GET / HTTP/1.1\r\nHost: x\r\n", // EOF before blank line
            "GET / HT",                      // EOF mid-request-line
        ] {
            assert!(
                matches!(parse_head(truncated), Err(HttpError::BadRequest(_))),
                "{truncated:?}"
            );
        }
        // An immediately-closed connection is distinguished (no response due).
        assert!(matches!(parse_head(""), Err(HttpError::ConnectionClosed)));
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert!(matches!(parse_head(&head), Err(HttpError::UriTooLong)));
    }

    #[test]
    fn oversized_header_line_is_rejected() {
        let head = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "v".repeat(17_000));
        assert!(matches!(parse_head(&head), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn too_many_headers_are_rejected() {
        let mut head = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            head.push_str(&format!("X-{i}: v\r\n"));
        }
        head.push_str("\r\n");
        assert!(matches!(parse_head(&head), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for bad in [
            "GET /\r\n\r\n",                // missing version
            "GET / HTTP/1.1 extra\r\n\r\n", // four fields
            " / HTTP/1.1\r\n\r\n",          // empty method
            "GET / SPDY/3\r\n\r\n",         // unknown protocol
        ] {
            assert!(parse_head(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn responses_carry_length_and_connection_disposition() {
        let mut out = Vec::new();
        Response::json(200, "{}".as_bytes().to_vec())
            .with_header("X-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::text(200, "x")
            .with_close()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn http11_defaults_to_keep_alive_and_honors_close() {
        let r = parse_head("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(r.http11);
        assert!(r.wants_keep_alive());
        let r = parse_head("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive());
        let r = parse_head("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "token match is case-insensitive");
        let r = parse_head("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").unwrap();
        assert!(!r.wants_keep_alive(), "close anywhere in the list wins");
    }

    #[test]
    fn http10_requires_explicit_keep_alive() {
        let r = parse_head("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.http11);
        assert!(!r.wants_keep_alive());
        let r = parse_head("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.wants_keep_alive());
    }

    #[test]
    fn error_bodies_escape_json() {
        let r = Response::error(400, "bad \"quote\"\nline");
        let body = String::from_utf8(r.body).unwrap();
        assert_eq!(body, "{\"error\": \"bad \\\"quote\\\"\\nline\"}\n");
    }
}
