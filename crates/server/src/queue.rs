//! A bounded multi-producer multi-consumer job queue on `Mutex` +
//! `Condvar`.
//!
//! `std::sync::mpsc` is single-consumer and unbounded in its default form;
//! the daemon needs the opposite on both axes: several worker threads pop
//! from one queue, and a full queue must *reject* (backpressure → 503)
//! rather than buffer without limit. Push never blocks; pop blocks until an
//! item arrives or the queue is closed and drained, which is exactly the
//! shutdown-drain semantic: `close()` wakes every idle worker, workers
//! finish whatever is still queued, then `pop()` returns `None` and they
//! exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::sync::{lock_recover, wait_recover};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity — caller should shed load (503 + Retry-After).
    Full,
    /// Queue closed — the server is draining; no new work accepted.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue. Share via `Arc`.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; errors communicate backpressure/shutdown.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed and empty
    /// (then `None`: time for the worker to exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = wait_recover(&self.ready, inner);
        }
    }

    /// Stop accepting work and wake all blocked consumers. Items already
    /// queued still drain through `pop`.
    pub fn close(&self) {
        let mut inner = lock_recover(&self.inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued (for `/metrics`).
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_pop_round_trips_in_order() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let q = JobQueue::new(0);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued_items() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: usize = 200;
        let q = Arc::new(JobQueue::new(8));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let item = p * PER_PRODUCER + i;
                    loop {
                        match q.try_push(item) {
                            Ok(()) => break,
                            Err(PushError::Full) => std::thread::yield_now(),
                            Err(PushError::Closed) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected);
    }
}
