//! End-to-end multi-host cluster runs over loopback TCP against real
//! `xfd-cluster-worker --listen` processes: byte-parity with
//! single-process discovery at several worker counts, the typed
//! wrong-token rejection, a mid-pass TCP connection reset, and
//! content-addressed segment shipping for workers without shared
//! storage (including the cache-warm second run that ships nothing).

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use discoverxfd::DiscoveryConfig;
use xfd_cluster::{cluster_discover, ClusterError, ClusterOptions, ClusterStats};
use xfd_corpus::CorpusStore;
use xfd_xml::{parse, DataTree};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-cluster-tcp-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn worker_bin() -> String {
    env!("CARGO_BIN_EXE_xfd-cluster-worker").to_string()
}

fn render_stable(r: &discoverxfd::RunOutcome) -> String {
    let json = discoverxfd::report::render_json(r);
    json.split("\"total_ms\"").next().unwrap().to_string()
}

fn doc(seed: u64) -> DataTree {
    let a = seed % 3;
    let b = seed % 5;
    let xml = format!(
        "<shop><name>S{a}</name><book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <order><id>{seed}</id><i>{b}</i></order></shop>",
        b * 10,
        (seed % 7) * 10,
    );
    parse(&xml).unwrap()
}

fn seed_corpus(root: &PathBuf, n: u64, config: &DiscoveryConfig) -> String {
    let store = CorpusStore::new(root);
    let mut c = store.create("c").unwrap();
    for i in 0..n {
        c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
    }
    render_stable(&c.discover(config))
}

/// A `worker --listen 127.0.0.1:0` subprocess plus the ephemeral address
/// it printed; killed on drop.
struct TcpWorker {
    child: Child,
    addr: String,
}

impl Drop for TcpWorker {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn spawn_tcp_worker(extra: &[&str]) -> TcpWorker {
    let mut child = Command::new(worker_bin())
        .arg("--listen")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn listening worker");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the listen line");
    let addr = line
        .trim()
        .strip_prefix("worker listening on ")
        .unwrap_or_else(|| panic!("unexpected listen line: {line:?}"))
        .to_string();
    TcpWorker { child, addr }
}

fn remote_opts(workers: &[TcpWorker], token: &str) -> ClusterOptions {
    ClusterOptions {
        remote: workers.iter().map(|w| w.addr.clone()).collect(),
        token: token.to_string(),
        ..ClusterOptions::default()
    }
}

fn cluster_run(
    root: &PathBuf,
    config: &DiscoveryConfig,
    o: &ClusterOptions,
) -> Result<(String, ClusterStats), ClusterError> {
    let mut handle = CorpusStore::new(root).open("c").unwrap();
    let (outcome, stats) = cluster_discover(&mut handle, config, o)?;
    Ok((render_stable(&outcome), stats))
}

#[test]
fn tcp_reports_are_byte_identical_at_1_2_and_4_workers() {
    let root = tmp("parity");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    for n in [1usize, 2, 4] {
        let workers: Vec<TcpWorker> = (0..n)
            .map(|_| spawn_tcp_worker(&["--token", "s3cret"]))
            .collect();
        let (report, stats) =
            cluster_run(&root, &config, &remote_opts(&workers, "s3cret")).unwrap();
        assert_eq!(
            report, expect,
            "TCP cluster report at {n} workers diverged from single-process discover"
        );
        assert_eq!(stats.workers_spawned, n as u64);
        assert_eq!(stats.workers_live, n as u64, "stats: {}", stats.summary());
        assert_eq!(stats.handshake_failures, 0, "stats: {}", stats.summary());
        assert!(stats.pass_remote > 0, "stats: {}", stats.summary());
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn wrong_token_is_a_typed_auth_error_not_a_hang() {
    let root = tmp("auth");
    let config = DiscoveryConfig::default();
    seed_corpus(&root, 3, &config);
    let workers: Vec<TcpWorker> = (0..2)
        .map(|_| spawn_tcp_worker(&["--token", "alpha"]))
        .collect();
    let start = Instant::now();
    let err = cluster_run(&root, &config, &remote_opts(&workers, "beta")).unwrap_err();
    assert!(
        matches!(err, ClusterError::AuthFailed),
        "expected AuthFailed, got: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "auth rejection must not wait out full timeouts"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn tcp_reset_mid_pass_retries_and_keeps_the_report_identical() {
    let root = tmp("reset");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    // One healthy worker plus one that dies with exit(9) upon receiving
    // its first pass task — the answer is never written, so the
    // coordinator sees a hard TCP reset with the task in flight (the
    // coordinator-side kill injection cannot be used here: over loopback
    // the tiny answer wins the race against the shutdown).
    let workers = vec![
        spawn_tcp_worker(&[]),
        spawn_tcp_worker(&["--exit-after-tasks", "0"]),
    ];
    let o = remote_opts(&workers, "");
    let (report, stats) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(
        report,
        expect,
        "report after a mid-pass TCP reset diverged (stats: {})",
        stats.summary()
    );
    assert_eq!(stats.workers_lost, 1, "stats: {}", stats.summary());
    assert_eq!(stats.workers_live, 1, "stats: {}", stats.summary());
    assert!(
        stats.tasks_retried + stats.tasks_fallback >= 1,
        "the reset worker's in-flight task must be reassigned or recomputed (stats: {})",
        stats.summary()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn segment_shipping_feeds_a_worker_without_shared_storage() {
    let root = tmp("ship");
    let cache = tmp("ship-cache");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    let cache_str = cache.display().to_string();
    let workers = vec![spawn_tcp_worker(&[
        "--no-shared-storage",
        "--seg-cache",
        &cache_str,
    ])];
    let o = remote_opts(&workers, "");

    // Cold cache: every distinct segment travels, and the report still
    // matches single-process discovery byte for byte.
    let (report, stats) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(report, expect, "stats: {}", stats.summary());
    assert_eq!(stats.workers_live, 1, "stats: {}", stats.summary());
    assert!(
        stats.segments_shipped > 0 && stats.segment_ship_bytes > 0,
        "a storage-less worker must be fed over the wire (stats: {})",
        stats.summary()
    );

    // Second run against the same (still listening) worker: its
    // content-addressed cache already holds everything, so nothing ships.
    let (report2, stats2) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(report2, expect, "stats: {}", stats2.summary());
    assert_eq!(
        stats2.segments_shipped,
        0,
        "a warm cache must announce its digests and receive nothing (stats: {})",
        stats2.summary()
    );
    assert!(stats2.pass_remote > 0, "stats: {}", stats2.summary());
    let _ = fs::remove_dir_all(&root);
    let _ = fs::remove_dir_all(&cache);
}
