//! End-to-end cluster runs against real worker subprocesses
//! (`xfd-cluster-worker`, this crate's own binary): byte-parity with
//! single-process discovery at several worker counts, survival of a
//! `kill -9` mid-pass, graceful total-loss fallback, and the typed
//! plan-mismatch rejection.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use discoverxfd::DiscoveryConfig;
use xfd_cluster::{cluster_discover, ClusterError, ClusterOptions, ClusterStats};
use xfd_corpus::CorpusStore;
use xfd_xml::{parse, DataTree};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-cluster-it-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn worker_bin() -> String {
    env!("CARGO_BIN_EXE_xfd-cluster-worker").to_string()
}

/// Rendered report with wall-clock (and the memo counters that render
/// after it) stripped: everything before `"total_ms"` must be
/// byte-identical.
fn render_stable(r: &discoverxfd::RunOutcome) -> String {
    let json = discoverxfd::report::render_json(r);
    json.split("\"total_ms\"").next().unwrap().to_string()
}

/// Documents with repeated correlated sets so FDs, keys and redundancies
/// all exist and several relation passes get scheduled.
fn doc(seed: u64) -> DataTree {
    let a = seed % 3;
    let b = seed % 5;
    let xml = format!(
        "<shop><name>S{a}</name><book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <order><id>{seed}</id><i>{b}</i></order></shop>",
        b * 10,
        (seed % 7) * 10,
    );
    parse(&xml).unwrap()
}

/// Create a corpus of `n` documents under `root` and return the baseline
/// single-process report.
fn seed_corpus(root: &PathBuf, n: u64, config: &DiscoveryConfig) -> String {
    let store = CorpusStore::new(root);
    let mut c = store.create("c").unwrap();
    for i in 0..n {
        c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
    }
    render_stable(&c.discover(config))
}

fn opts(workers: usize) -> ClusterOptions {
    ClusterOptions {
        workers,
        worker_command: vec![worker_bin()],
        ..ClusterOptions::default()
    }
}

/// One cold cluster run on a freshly opened handle.
fn cluster_run(
    root: &PathBuf,
    config: &DiscoveryConfig,
    o: &ClusterOptions,
) -> Result<(String, ClusterStats), ClusterError> {
    let mut handle = CorpusStore::new(root).open("c").unwrap();
    let (outcome, stats) = cluster_discover(&mut handle, config, o)?;
    Ok((render_stable(&outcome), stats))
}

#[test]
fn cluster_reports_are_byte_identical_at_1_2_and_4_workers() {
    let root = tmp("parity");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    for workers in [1usize, 2, 4] {
        let (report, stats) = cluster_run(&root, &config, &opts(workers)).unwrap();
        assert_eq!(
            report, expect,
            "cluster report at {workers} workers diverged from single-process discover"
        );
        assert_eq!(stats.workers_spawned, workers as u64);
        assert_eq!(
            stats.workers_live, workers as u64,
            "no worker should be lost"
        );
        assert_eq!(stats.handshake_failures, 0);
        assert!(
            stats.encode_remote > 0,
            "cold run must encode some segments remotely (stats: {})",
            stats.summary()
        );
        assert!(
            stats.pass_remote > 0,
            "cold run must execute some passes remotely (stats: {})",
            stats.summary()
        );
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn killing_a_worker_mid_pass_retries_and_keeps_the_report_identical() {
    let root = tmp("kill");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    let o = ClusterOptions {
        kill_worker_after: Some(1),
        ..opts(2)
    };
    let (report, stats) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(
        report,
        expect,
        "report after a mid-pass kill -9 diverged (stats: {})",
        stats.summary()
    );
    assert_eq!(stats.workers_lost, 1, "stats: {}", stats.summary());
    assert_eq!(stats.workers_live, 1, "stats: {}", stats.summary());
    assert!(
        stats.tasks_retried + stats.tasks_fallback >= 1,
        "the killed worker's in-flight task must be reassigned or recomputed (stats: {})",
        stats.summary()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn losing_every_worker_falls_back_to_local_compute() {
    let root = tmp("total-loss");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 5, &config);
    // Every worker self-destructs (exit 9, task unanswered) on its first
    // pass task: encoding still happens remotely, passes all fall back.
    let o = ClusterOptions {
        worker_command: vec![worker_bin(), "--exit-after-tasks".into(), "0".into()],
        ..opts(2)
    };
    let (report, stats) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(
        report,
        expect,
        "report after losing the whole pool diverged (stats: {})",
        stats.summary()
    );
    assert_eq!(stats.workers_lost, 2, "stats: {}", stats.summary());
    assert!(
        stats.tasks_fallback >= 1,
        "with no pool left, tasks must fall back locally (stats: {})",
        stats.summary()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn plan_mismatch_is_a_typed_error_not_a_hang() {
    let root = tmp("mismatch");
    let config = DiscoveryConfig::default();
    seed_corpus(&root, 3, &config);
    let o = ClusterOptions {
        corrupt_plan: true,
        ..opts(2)
    };
    let start = Instant::now();
    let err = cluster_run(&root, &config, &o).unwrap_err();
    match err {
        ClusterError::PlanMismatch { expected, got } => {
            assert_eq!(
                got,
                expected ^ 0xDEAD_BEEF,
                "--corrupt-plan flips the fingerprint by a known constant"
            );
        }
        other => panic!("expected PlanMismatch, got: {other}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "mismatch rejection must not wait out full timeouts"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn zero_workers_is_plain_local_discovery() {
    let root = tmp("zero");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 4, &config);
    let o = ClusterOptions {
        workers: 0,
        ..opts(0)
    };
    let (report, stats) = cluster_run(&root, &config, &o).unwrap();
    assert_eq!(report, expect);
    assert_eq!(stats.workers_spawned, 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn warm_cluster_rerun_serves_passes_from_the_memo() {
    // Second cluster run on the SAME handle: forest cached, memo hot —
    // workers see no encode work and no pass tasks, and the report is
    // still identical.
    let root = tmp("warm");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 5, &config);
    let mut handle = CorpusStore::new(&root).open("c").unwrap();
    let o = opts(2);
    let (cold, _) = cluster_discover(&mut handle, &config, &o).unwrap();
    assert_eq!(render_stable(&cold), expect);
    let (warm, stats) = cluster_discover(&mut handle, &config, &o).unwrap();
    assert_eq!(render_stable(&warm), expect);
    assert_eq!(
        stats.encode_tasks,
        0,
        "warm rerun re-encodes nothing (stats: {})",
        stats.summary()
    );
    assert_eq!(
        stats.pass_tasks,
        0,
        "memo hits never reach the cluster (stats: {})",
        stats.summary()
    );
    let _ = fs::remove_dir_all(&root);
}
