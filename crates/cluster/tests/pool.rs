//! Warm worker pool integration tests: the second request on an
//! unchanged (corpus, plan fingerprint) key reuses live workers with no
//! respawn, dead entries are respawned transparently, and the idle
//! janitor reaps parked clusters.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use discoverxfd::DiscoveryConfig;
use xfd_cluster::{ClusterOptions, WorkerPool};
use xfd_corpus::CorpusStore;
use xfd_xml::{parse, DataTree};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfd-cluster-pool-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn worker_bin() -> String {
    env!("CARGO_BIN_EXE_xfd-cluster-worker").to_string()
}

fn render_stable(r: &discoverxfd::RunOutcome) -> String {
    let json = discoverxfd::report::render_json(r);
    json.split("\"total_ms\"").next().unwrap().to_string()
}

fn doc(seed: u64) -> DataTree {
    let a = seed % 3;
    let b = seed % 5;
    let xml = format!(
        "<shop><name>S{a}</name><book><i>{b}</i><t>T{a}</t><p>{}</p></book>\
         <order><id>{seed}</id><i>{b}</i></order></shop>",
        b * 10,
    );
    parse(&xml).unwrap()
}

fn seed_corpus(root: &PathBuf, n: u64, config: &DiscoveryConfig) -> String {
    let store = CorpusStore::new(root);
    let mut c = store.create("c").unwrap();
    for i in 0..n {
        c.add_doc(&format!("d{i}"), &doc(i)).unwrap();
    }
    render_stable(&c.discover(config))
}

fn opts(workers: usize) -> ClusterOptions {
    ClusterOptions {
        workers,
        worker_command: vec![worker_bin()],
        ..ClusterOptions::default()
    }
}

#[test]
fn second_request_hits_the_warm_pool_and_skips_spawn_and_shipping() {
    let root = tmp("warm");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    let pool = WorkerPool::new(opts(2), Duration::from_secs(600));
    let mut handle = CorpusStore::new(&root).open("c").unwrap();

    let cold = pool.discover(&mut handle, &config).unwrap();
    assert!(!cold.warm, "first request cannot be warm");
    assert_eq!(render_stable(&cold.outcome), expect);
    assert_eq!(cold.stats.workers_spawned, 2);

    let warm = pool.discover(&mut handle, &config).unwrap();
    assert!(warm.warm, "stats: {}", warm.stats.summary());
    assert_eq!(
        render_stable(&warm.outcome),
        expect,
        "warm-path report must be byte-identical"
    );
    assert_eq!(
        warm.stats.segments_shipped, 0,
        "a warm hit must not re-ship segments"
    );

    let snap = pool.snapshot();
    assert_eq!(snap.warm_hits_total, 1);
    assert_eq!(snap.warm_workers, 2);
    assert_eq!(snap.spawning, 0);
    pool.shutdown_all();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn dead_pool_entries_are_respawned_transparently() {
    let root = tmp("respawn");
    let config = DiscoveryConfig::default();
    let expect = seed_corpus(&root, 6, &config);
    // --exit-after-tasks 0 makes every worker die on its first pass
    // task, so the parked entry is a cluster of corpses.
    let o = ClusterOptions {
        worker_command: vec![worker_bin(), "--exit-after-tasks".into(), "0".into()],
        ..opts(2)
    };
    let pool = WorkerPool::new(o, Duration::from_secs(600));
    let mut handle = CorpusStore::new(&root).open("c").unwrap();

    let first = pool.discover(&mut handle, &config).unwrap();
    assert_eq!(render_stable(&first.outcome), expect);
    assert_eq!(
        first.stats.workers_lost,
        2,
        "stats: {}",
        first.stats.summary()
    );

    let second = pool.discover(&mut handle, &config).unwrap();
    assert!(
        !second.warm,
        "a dead entry must not be reported as a warm hit"
    );
    assert_eq!(
        render_stable(&second.outcome),
        expect,
        "respawn must be invisible in the report"
    );
    assert!(pool.snapshot().reaped_total >= 1);
    pool.shutdown_all();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn idle_entries_are_reaped_on_deadline() {
    let root = tmp("reap");
    let config = DiscoveryConfig::default();
    seed_corpus(&root, 4, &config);
    let pool = WorkerPool::new(opts(1), Duration::from_millis(0));
    let mut handle = CorpusStore::new(&root).open("c").unwrap();
    pool.discover(&mut handle, &config).unwrap();
    assert_eq!(pool.snapshot().warm_workers, 1);
    assert_eq!(pool.reap_idle(), 1);
    let snap = pool.snapshot();
    assert_eq!(snap.warm_workers, 0);
    assert!(snap.reaped_total >= 1);
    let _ = fs::remove_dir_all(&root);
}
