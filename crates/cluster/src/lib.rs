#![warn(missing_docs)]
//! # xfd-cluster
//!
//! Multi-process sharded discovery: a coordinator that drives corpus
//! discovery by farming the two parallelizable stages — per-segment
//! partial encoding and the relation passes — out to worker processes
//! over a pluggable byte-stream transport ([`xfd_transport`]): Unix
//! domain sockets for spawned single-host pools, TCP for remote workers
//! started with `discoverxfd worker --listen host:port` and addressed
//! with `--remote host:port,...`.
//!
//! The workers are instances of the same binary (`discoverxfd worker
//! --socket <path>`, or the `xfd-cluster-worker` helper this crate
//! ships for its own tests), so there is nothing to deploy beyond the one
//! executable. The protocol is the hand-rolled frame codec in [`frame`]
//! — dependency-free, versioned, token-authenticated, and
//! fingerprint-checked: a worker re-derives the plan fingerprint
//! (collection schema + encode config) from its own read-only view of the
//! corpus directory and is only admitted when it matches the
//! coordinator's. A remote worker with no shared filesystem gets there by
//! **content-addressed segment shipping**: it announces the segment
//! digests its byte-budgeted local cache holds, the coordinator answers
//! with the per-document digest manifest plus only the missing segment
//! bytes, and the worker verifies each against its digest before
//! reassembling the identical document view.
//!
//! Determinism is the design center: results merge in the same wave order
//! as single-process discovery, memo hits never leave the coordinator,
//! and any worker failure — death mid-task, a torn frame, a connection
//! reset, a forged answer — degrades to computing that piece locally. The
//! final report is therefore **byte-identical** to `discover` at any
//! worker count on either transport, including after a mid-run `kill -9`
//! or TCP reset.
//!
//! ```text
//! coordinator                                worker (×N)
//! ───────────                                ───────────
//!            ◄─ Join{version, index, auth} ─
//!            ── Plan{fp, auth, dir, cfg} ───►  opens corpus read-only…
//!            ◄─ SegHave{digests}? ──────────  …or announces its cache
//!            ── SegManifest + SegData* ─────►  verifies, reassembles
//!            ◄─ PlanAck{fp} ────────────────  re-derives fp
//!   [encode] ── Encode{digest} ─────────────►
//!            ◄─ Partial{digest, bytes} ─────
//!   [forest] ── Push{digest, bytes}* ───────►  fills small gaps, or
//!            ── ForestShip{partials} ───────►  …everything in one frame
//!            ── Build{forest_fp, digests} ──►  merges, fingerprints
//!            ◄─ ForestAck{forest_fp} ───────
//!   [passes] ── Pass{task_id, wave task} ───►
//!            ◄─ TaskResult{task_id, bytes} ─
//!            ── Ping ───────────────────────►  (any time; liveness)
//!            ◄─ Pong ───────────────────────
//!            ── Shutdown ───────────────────►  (pooled clusters skip
//!                                               this between requests)
//! ```
//!
//! [`pool::WorkerPool`] keeps whole clusters warm between requests,
//! keyed by (corpus name, plan fingerprint): heartbeats double as health
//! checks on checkout, idle entries are reaped on a deadline, and a dead
//! or poisoned entry is respawned transparently.

pub mod coordinator;
pub mod pool;
pub mod worker;

/// The frame codec, re-exported from [`xfd_transport`] (where it lives
/// so both the transport tests and this crate drive the same bytes).
pub use xfd_transport::frame;

/// The pluggable byte-stream layer (also re-exported whole for callers
/// that need [`xfd_transport::Endpoint`] and friends).
pub use xfd_transport as transport;

use std::fmt;
use std::io;
use std::time::Duration;

use discoverxfd::{DiscoveryConfig, RunOutcome};
use xfd_corpus::{CorpusError, CorpusHandle};
use xfd_relation::forest_fingerprint;

pub use coordinator::Cluster;
pub use frame::{Frame, PROTOCOL_VERSION};
pub use pool::{PoolDiscovery, PoolSnapshot, WorkerPool};
pub use worker::{run_worker, WorkerOptions};

/// Everything that can go wrong setting up or driving a cluster. Worker
/// deaths mid-run are *not* errors — they degrade to local computation —
/// so this only covers failures that leave nothing to run.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket/spawn-level failure.
    Io(io::Error),
    /// The corpus could not be opened or read.
    Corpus(CorpusError),
    /// A configuration problem (bad worker command, unencodable path).
    Config(String),
    /// A peer spoke the protocol wrong.
    Protocol(String),
    /// Every worker failed the shared-secret token check: the two sides
    /// were started with different `--token` values. Typed so a
    /// misconfigured cluster is an immediate, explicit rejection — never
    /// a hang waiting out handshake timeouts.
    AuthFailed,
    /// Every worker derived a different plan fingerprint than the
    /// coordinator: the worker pool is looking at a different corpus
    /// state or running an incompatible build. Nothing was assigned.
    PlanMismatch {
        /// The coordinator's fingerprint.
        expected: u128,
        /// A fingerprint reported by a rejected worker.
        got: u128,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o: {e}"),
            ClusterError::Corpus(e) => write!(f, "cluster corpus: {e}"),
            ClusterError::Config(m) => write!(f, "cluster config: {m}"),
            ClusterError::Protocol(m) => write!(f, "cluster protocol: {m}"),
            ClusterError::AuthFailed => write!(
                f,
                "cluster auth: every worker failed the shared-secret token check; \
                 coordinator and workers must be started with the same --token"
            ),
            ClusterError::PlanMismatch { expected, got } => write!(
                f,
                "plan fingerprint mismatch: coordinator {expected:032x}, workers reported \
                 {got:032x}; refusing to assign work"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<CorpusError> for ClusterError {
    fn from(e: CorpusError) -> ClusterError {
        ClusterError::Corpus(e)
    }
}

/// How the coordinator brings a worker's partial set up to the merged
/// forest (satellite of the forest-distribution phase; see
/// [`Cluster`]'s `distribute_forest`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PushMode {
    /// Per-worker choice: individual `Push` frames when the worker
    /// already holds most partials, one batched `ForestShip` frame when
    /// more than half are missing.
    #[default]
    Auto,
    /// Always individual `Push` frames (the pre-ship behavior; kept for
    /// the bench crossover measurement).
    Partials,
    /// Always one batched `ForestShip` frame per worker that is missing
    /// anything.
    Forest,
}

/// Knobs for one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Worker subprocesses to spawn. `0` runs everything in-process.
    /// Ignored when `remote` is non-empty.
    pub workers: usize,
    /// Remote worker endpoints (`host:port` each, from `--remote`). When
    /// non-empty the coordinator connects to these instead of spawning
    /// local subprocesses.
    pub remote: Vec<String>,
    /// Shared-secret handshake token; both sides must be started with
    /// the same value. The empty default keeps single-host Unix-socket
    /// clusters working with no flags.
    pub token: String,
    /// A worker silent for this long (no frame, no heartbeat answer) is
    /// declared dead, killed, and its in-flight tasks reassigned.
    pub worker_timeout: Duration,
    /// How many times one pass task may be reassigned after worker deaths
    /// before the coordinator computes it locally instead.
    pub max_task_retries: usize,
    /// Command prefix to launch a worker; `--socket`/`--index` are
    /// appended. Empty means "this executable, `worker` subcommand".
    pub worker_command: Vec<String>,
    /// How partial gaps are filled before the forest build.
    pub push_mode: PushMode,
    /// Fault injection: `kill -9` (or, for a remote worker, hard-reset
    /// the connection of) the worker that received the Nth pass task,
    /// right after assigning it (so the task is in flight when the
    /// worker dies). Exercised by tests and the CI smoke script.
    pub kill_worker_after: Option<u64>,
    /// Fault injection: spawn workers with `--corrupt-plan` so every
    /// handshake reports a wrong fingerprint.
    pub corrupt_plan: bool,
}

impl Default for ClusterOptions {
    fn default() -> ClusterOptions {
        ClusterOptions {
            workers: 2,
            remote: Vec::new(),
            token: String::new(),
            worker_timeout: Duration::from_secs(30),
            max_task_retries: 2,
            worker_command: Vec::new(),
            push_mode: PushMode::Auto,
            kill_worker_after: None,
            corrupt_plan: false,
        }
    }
}

/// Counters from one cluster run, for the CLI summary line, the server's
/// `/metrics` families and the bench harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Workers successfully spawned (or, for `--remote`, attempted).
    pub workers_spawned: u64,
    /// Workers still alive when the run finished.
    pub workers_live: u64,
    /// Workers lost mid-run (died, timed out, or spoke garbage).
    pub workers_lost: u64,
    /// Workers rejected during the handshake (version, token or
    /// fingerprint).
    pub handshake_failures: u64,
    /// Segment-encode tasks in the work list.
    pub encode_tasks: u64,
    /// Segment-encode tasks completed by workers (the rest were built
    /// locally).
    pub encode_remote: u64,
    /// Relation-pass tasks handed to the runner across all waves.
    pub pass_tasks: u64,
    /// Relation-pass tasks completed by workers.
    pub pass_remote: u64,
    /// Tasks reassigned after a worker death.
    pub tasks_retried: u64,
    /// Tasks abandoned to local computation (retries exhausted or no
    /// workers left).
    pub tasks_fallback: u64,
    /// Individual partial `Push` frames sent during forest distribution.
    pub partials_pushed: u64,
    /// Batched `ForestShip` frames sent instead of per-partial pushes.
    pub forest_ships: u64,
    /// Segments shipped to workers without shared storage.
    pub segments_shipped: u64,
    /// Total bytes of shipped segment payloads.
    pub segment_ship_bytes: u64,
}

impl ClusterStats {
    /// One stable line for scripts to grep:
    /// `cluster: workers=2 live=2 lost=0 handshake_failures=0 ...`.
    /// New fields append at the end so existing extractions keep working.
    pub fn summary(&self) -> String {
        format!(
            "cluster: workers={} live={} lost={} handshake_failures={} encode_tasks={} \
             encode_remote={} pass_tasks={} pass_remote={} retried={} fallback={} \
             pushed={} ships={} segs_shipped={} ship_bytes={}",
            self.workers_spawned,
            self.workers_live,
            self.workers_lost,
            self.handshake_failures,
            self.encode_tasks,
            self.encode_remote,
            self.pass_tasks,
            self.pass_remote,
            self.tasks_retried,
            self.tasks_fallback,
            self.partials_pushed,
            self.forest_ships,
            self.segments_shipped,
            self.segment_ship_bytes,
        )
    }
}

/// Run corpus discovery across a worker pool — `opts.workers` spawned
/// subprocesses, or the `opts.remote` TCP endpoints when given.
///
/// The output [`RunOutcome`] is byte-identical (timings aside) to
/// [`CorpusHandle::discover_with_progress`] on the same handle: the
/// coordinator plans, farms out encoding and passes, and merges results
/// in the deterministic single-process order. Any failure after a
/// successful handshake degrades to local computation; the only
/// run-aborting errors are setup problems, a unanimous
/// [`ClusterError::PlanMismatch`] and a unanimous
/// [`ClusterError::AuthFailed`].
pub fn cluster_discover(
    handle: &mut CorpusHandle,
    config: &DiscoveryConfig,
    opts: &ClusterOptions,
) -> Result<(RunOutcome, ClusterStats), ClusterError> {
    let plan = handle.plan(config);
    if opts.workers == 0 && opts.remote.is_empty() {
        let prepared = handle.merged_forest(config, &plan);
        let outcome = handle.finish_discover(config, &prepared, |_| {}, None);
        return Ok((outcome, ClusterStats::default()));
    }
    let mut cluster = Cluster::spawn(opts, plan.plan_fp(), handle, config)?;
    cluster.encode_phase(handle, config, &plan);
    let prepared = handle.merged_forest(config, &plan);
    let forest_fp = forest_fingerprint(prepared.forest());
    cluster.distribute_forest(handle, &plan, forest_fp);
    let outcome = handle.finish_discover(config, &prepared, |_| {}, Some(&mut cluster));
    let stats = cluster.shutdown();
    Ok((outcome, stats))
}
