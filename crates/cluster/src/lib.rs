#![warn(missing_docs)]
//! # xfd-cluster
//!
//! Multi-process sharded discovery: a coordinator that drives corpus
//! discovery by farming the two parallelizable stages — per-segment
//! partial encoding and the relation passes — out to worker subprocesses
//! over Unix domain sockets.
//!
//! The workers are instances of the same binary (`discoverxfd worker
//! --socket <path>`, or the `xfd-cluster-worker` helper this crate
//! ships for its own tests), so there is nothing to deploy beyond the one
//! executable. The protocol is the hand-rolled frame codec in [`frame`]
//! — dependency-free, versioned, and fingerprint-checked: a worker
//! re-derives the plan fingerprint (collection schema + encode config)
//! from its own read-only view of the corpus directory and is only
//! admitted when it matches the coordinator's.
//!
//! Determinism is the design center: results merge in the same wave order
//! as single-process discovery, memo hits never leave the coordinator,
//! and any worker failure — death mid-task, a torn frame, a forged
//! answer — degrades to computing that piece locally. The final report is
//! therefore **byte-identical** to `discover` at any worker count,
//! including after a mid-run `kill -9`.
//!
//! ```text
//! coordinator                                worker (×N)
//! ───────────                                ───────────
//!            ◄─ Join{version, index} ──────
//!            ── Plan{fp, dir, config} ─────►  opens corpus read-only,
//!            ◄─ PlanAck{fp} ────────────────  re-derives fp
//!   [encode] ── Encode{digest} ─────────────►
//!            ◄─ Partial{digest, bytes} ─────
//!   [forest] ── Push{digest, bytes}* ───────►  fills partial gaps
//!            ── Build{forest_fp, digests} ──►  merges, fingerprints
//!            ◄─ ForestAck{forest_fp} ───────
//!   [passes] ── Pass{task_id, wave task} ───►
//!            ◄─ TaskResult{task_id, bytes} ─
//!            ── Ping ───────────────────────►  (any time; liveness)
//!            ◄─ Pong ───────────────────────
//!            ── Shutdown ───────────────────►
//! ```

pub mod coordinator;
pub mod frame;
pub mod worker;

use std::fmt;
use std::io;
use std::time::Duration;

use discoverxfd::{DiscoveryConfig, RunOutcome};
use xfd_corpus::{CorpusError, CorpusHandle};
use xfd_relation::forest_fingerprint;

pub use coordinator::Cluster;
pub use frame::{Frame, PROTOCOL_VERSION};
pub use worker::{run_worker, WorkerOptions};

/// Everything that can go wrong setting up or driving a cluster. Worker
/// deaths mid-run are *not* errors — they degrade to local computation —
/// so this only covers failures that leave nothing to run.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket/spawn-level failure.
    Io(io::Error),
    /// The corpus could not be opened or read.
    Corpus(CorpusError),
    /// A configuration problem (bad worker command, unencodable path).
    Config(String),
    /// A peer spoke the protocol wrong.
    Protocol(String),
    /// Every worker derived a different plan fingerprint than the
    /// coordinator: the worker pool is looking at a different corpus
    /// state or running an incompatible build. Nothing was assigned.
    PlanMismatch {
        /// The coordinator's fingerprint.
        expected: u128,
        /// A fingerprint reported by a rejected worker.
        got: u128,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o: {e}"),
            ClusterError::Corpus(e) => write!(f, "cluster corpus: {e}"),
            ClusterError::Config(m) => write!(f, "cluster config: {m}"),
            ClusterError::Protocol(m) => write!(f, "cluster protocol: {m}"),
            ClusterError::PlanMismatch { expected, got } => write!(
                f,
                "plan fingerprint mismatch: coordinator {expected:032x}, workers reported \
                 {got:032x}; refusing to assign work"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<CorpusError> for ClusterError {
    fn from(e: CorpusError) -> ClusterError {
        ClusterError::Corpus(e)
    }
}

/// Knobs for one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Worker subprocesses to spawn. `0` runs everything in-process.
    pub workers: usize,
    /// A worker silent for this long (no frame, no heartbeat answer) is
    /// declared dead, killed, and its in-flight tasks reassigned.
    pub worker_timeout: Duration,
    /// How many times one pass task may be reassigned after worker deaths
    /// before the coordinator computes it locally instead.
    pub max_task_retries: usize,
    /// Command prefix to launch a worker; `--socket`/`--index` are
    /// appended. Empty means "this executable, `worker` subcommand".
    pub worker_command: Vec<String>,
    /// Fault injection: `kill -9` the worker that received the Nth pass
    /// task, right after assigning it (so the task is in flight when the
    /// worker dies). Exercised by tests and the CI smoke script.
    pub kill_worker_after: Option<u64>,
    /// Fault injection: spawn workers with `--corrupt-plan` so every
    /// handshake reports a wrong fingerprint.
    pub corrupt_plan: bool,
}

impl Default for ClusterOptions {
    fn default() -> ClusterOptions {
        ClusterOptions {
            workers: 2,
            worker_timeout: Duration::from_secs(30),
            max_task_retries: 2,
            worker_command: Vec::new(),
            kill_worker_after: None,
            corrupt_plan: false,
        }
    }
}

/// Counters from one cluster run, for the CLI summary line, the server's
/// `/metrics` families and the bench harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Workers successfully spawned.
    pub workers_spawned: u64,
    /// Workers still alive when the run finished.
    pub workers_live: u64,
    /// Workers lost mid-run (died, timed out, or spoke garbage).
    pub workers_lost: u64,
    /// Workers rejected during the handshake (version or fingerprint).
    pub handshake_failures: u64,
    /// Segment-encode tasks in the work list.
    pub encode_tasks: u64,
    /// Segment-encode tasks completed by workers (the rest were built
    /// locally).
    pub encode_remote: u64,
    /// Relation-pass tasks handed to the runner across all waves.
    pub pass_tasks: u64,
    /// Relation-pass tasks completed by workers.
    pub pass_remote: u64,
    /// Tasks reassigned after a worker death.
    pub tasks_retried: u64,
    /// Tasks abandoned to local computation (retries exhausted or no
    /// workers left).
    pub tasks_fallback: u64,
}

impl ClusterStats {
    /// One stable line for scripts to grep:
    /// `cluster: workers=2 live=2 lost=0 handshake_failures=0 ...`.
    pub fn summary(&self) -> String {
        format!(
            "cluster: workers={} live={} lost={} handshake_failures={} encode_tasks={} \
             encode_remote={} pass_tasks={} pass_remote={} retried={} fallback={}",
            self.workers_spawned,
            self.workers_live,
            self.workers_lost,
            self.handshake_failures,
            self.encode_tasks,
            self.encode_remote,
            self.pass_tasks,
            self.pass_remote,
            self.tasks_retried,
            self.tasks_fallback,
        )
    }
}

/// Run corpus discovery across `opts.workers` subprocesses.
///
/// The output [`RunOutcome`] is byte-identical (timings aside) to
/// [`CorpusHandle::discover_with_progress`] on the same handle: the
/// coordinator plans, farms out encoding and passes, and merges results
/// in the deterministic single-process order. Any failure after a
/// successful handshake degrades to local computation; the only
/// run-aborting errors are setup problems and a unanimous
/// [`ClusterError::PlanMismatch`].
pub fn cluster_discover(
    handle: &mut CorpusHandle,
    config: &DiscoveryConfig,
    opts: &ClusterOptions,
) -> Result<(RunOutcome, ClusterStats), ClusterError> {
    let plan = handle.plan(config);
    if opts.workers == 0 {
        let prepared = handle.merged_forest(config, &plan);
        let outcome = handle.finish_discover(config, &prepared, |_| {}, None);
        return Ok((outcome, ClusterStats::default()));
    }
    let mut cluster = Cluster::spawn(opts, plan.plan_fp(), handle.dir(), config)?;
    cluster.encode_phase(handle, config, &plan);
    let prepared = handle.merged_forest(config, &plan);
    let forest_fp = forest_fingerprint(prepared.forest());
    cluster.distribute_forest(handle, &plan, forest_fp);
    let outcome = handle.finish_discover(config, &prepared, |_| {}, Some(&mut cluster));
    let stats = cluster.shutdown();
    Ok((outcome, stats))
}
