//! The coordinator: spawn (or dial) workers, handshake them against the
//! plan fingerprint, drive the encode / forest / pass phases, and keep
//! the run deterministic no matter what the workers do.
//!
//! Transport: every connection is a [`Stream`] trait object — a Unix
//! socket to a spawned subprocess, or TCP to a `worker --listen` peer
//! named in `--remote`. The phase machine is transport-blind; the only
//! per-transport differences are how a connection is made and what
//! "kill" means (SIGKILL a child, hard-reset a remote connection).
//!
//! Concurrency model: the coordinator thread owns every connection's
//! write half and all bookkeeping; one reader thread per worker owns a
//! cloned read half and funnels frames into a single event channel. No
//! mutex guards any I/O.
//!
//! Failure model: a worker is *lost* when its connection closes, a write
//! to it fails, it answers a forest build with the wrong fingerprint, or
//! it stays silent past the liveness timeout (a `Ping` halfway through
//! the window gives a busy-but-healthy worker the chance to answer from
//! its reader thread). Losing a worker reassigns its in-flight tasks to
//! the survivors — a bounded number of times per task — and anything
//! still unanswered falls back to local computation, so the result bytes
//! never depend on worker health.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use discoverxfd::{encode_config, DiscoveryConfig, PassRunner, WaveTask};
use xfd_corpus::{CorpusHandle, CorpusPlan};
use xfd_relation::{decode_partial, encode_partial, Forest};
use xfd_schema::SchemaMap;
use xfd_transport::{join_auth, plan_auth, Endpoint, Stream};

use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::{ClusterError, ClusterOptions, ClusterStats, PushMode};

/// Event-loop tick: bounds how stale liveness checks can get while
/// waiting for frames.
const TICK: Duration = Duration::from_millis(50);

/// Distinguishes concurrent clusters of one process in socket names.
static SOCKET_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_socket_path() -> PathBuf {
    let n = SOCKET_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xfd-cluster-{}-{n}.sock", std::process::id()))
}

/// One admitted worker, from the coordinator's side.
struct WorkerConn {
    /// The subprocess, for spawned workers; `None` for remote (`--remote`)
    /// workers, whose lifetime we do not own.
    child: Option<Child>,
    /// Write half; the paired reader thread owns a clone of the fd.
    stream: Box<dyn Stream>,
    alive: bool,
    reaped: bool,
    last_seen: Instant,
    /// A `Ping` is outstanding; don't send another until a frame arrives.
    pinged: bool,
    /// Acked the forest build — eligible for pass tasks.
    forest_ready: bool,
    /// Segment digests this worker holds a partial for.
    has: HashSet<u128>,
}

enum Event {
    Frame(usize, Frame),
    Gone(usize),
}

fn reader_loop(mut stream: Box<dyn Stream>, slot: usize, tx: Sender<Event>) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                if tx.send(Event::Frame(slot, frame)).is_err() {
                    break;
                }
            }
            Ok(None) | Err(_) => {
                tx.send(Event::Gone(slot)).ok();
                break;
            }
        }
    }
}

/// Content-addressed segment shipping, coordinator side: answer a
/// worker's `SegHave` with the document manifest plus only the segments
/// its cache lacks, every byte re-verified against the manifest digest
/// before it travels. Returns `false` when the worker asks for a segment
/// we cannot produce verified bytes for (the handshake then fails).
fn ship_segments(
    stream: &mut Box<dyn Stream>,
    handle: &CorpusHandle,
    have: &HashSet<u128>,
    stats: &mut ClusterStats,
) -> bool {
    let manifest = handle.doc_digests();
    let announce = Frame::SegManifest {
        digests: manifest.clone(),
    };
    if write_frame(stream, &announce).is_err() {
        return false;
    }
    let mut sent: HashSet<u128> = HashSet::new();
    for digest in manifest {
        if have.contains(&digest) || !sent.insert(digest) {
            continue;
        }
        let Some(bytes) = handle.doc_bytes(digest) else {
            return false;
        };
        stats.segments_shipped += 1;
        stats.segment_ship_bytes += bytes.len() as u64;
        if write_frame(stream, &Frame::SegData { digest, bytes }).is_err() {
            return false;
        }
    }
    true
}

/// A running worker pool, after handshake. Drives the three remote
/// phases and implements [`PassRunner`] so the memoized wave traversal
/// can offload relation passes; memo hits never reach it.
pub struct Cluster {
    workers: Vec<WorkerConn>,
    readers: Vec<JoinHandle<()>>,
    events: Receiver<Event>,
    stats: ClusterStats,
    worker_timeout: Duration,
    max_task_retries: usize,
    push_mode: PushMode,
    /// Fault injection: kill the worker that received the Nth pass task.
    kill_after: Option<u64>,
    assigned_passes: u64,
    next_task_id: u64,
    rr: usize,
    /// The forest fingerprint the live workers last acked; lets a pooled
    /// cluster skip redistribution when nothing changed between requests.
    last_forest_fp: Option<u128>,
    /// Unix socket to unlink on teardown (spawned pools only).
    socket_path: Option<PathBuf>,
}

impl Cluster {
    /// Spawn and handshake `opts.workers` subprocesses — or, when
    /// `opts.remote` is non-empty, dial those TCP endpoints instead. Only
    /// returns `Err` when there is nothing sane to continue with; a
    /// partially (or completely) dead pool that at least agreed on the
    /// plan — and on the token — yields a working `Cluster` that degrades
    /// to local computation.
    pub(crate) fn spawn(
        opts: &ClusterOptions,
        plan_fp: u128,
        handle: &CorpusHandle,
        config: &DiscoveryConfig,
    ) -> Result<Cluster, ClusterError> {
        let dir_str = handle
            .dir()
            .to_str()
            .ok_or_else(|| ClusterError::Config("corpus path is not valid UTF-8".into()))?
            .to_string();
        let handshake_timeout = opts.worker_timeout.max(Duration::from_secs(10));
        let is_remote = !opts.remote.is_empty();
        let mut stats = ClusterStats::default();
        let mut socket_path = None;
        let mut claimed: Vec<Option<Child>> = Vec::new();
        let mut conns: Vec<Box<dyn Stream>> = Vec::new();

        if is_remote {
            // Multi-host: connect to `worker --listen` peers. Unreachable
            // endpoints count as handshake failures; all-unreachable is a
            // setup error.
            let mut last_err = None;
            for addr in &opts.remote {
                stats.workers_spawned += 1;
                match Endpoint::Tcp(addr.clone()).connect_timeout(handshake_timeout) {
                    Ok(stream) => conns.push(stream),
                    Err(e) => {
                        stats.handshake_failures += 1;
                        last_err = Some(format!("{addr}: {e}"));
                    }
                }
            }
            if conns.is_empty() {
                let detail = last_err.unwrap_or_else(|| "no endpoints given".to_string());
                return Err(ClusterError::Config(format!(
                    "could not connect to any --remote worker: {detail}"
                )));
            }
        } else {
            let command = if opts.worker_command.is_empty() {
                let exe = std::env::current_exe()?;
                let exe = exe
                    .to_str()
                    .ok_or_else(|| {
                        ClusterError::Config("executable path is not valid UTF-8".into())
                    })?
                    .to_string();
                vec![exe, "worker".to_string()]
            } else {
                opts.worker_command.clone()
            };
            let Some((program, prefix_args)) = command.split_first() else {
                return Err(ClusterError::Config("empty worker command".into()));
            };

            let path = fresh_socket_path();
            std::fs::remove_file(&path).ok();
            let listener = Endpoint::Unix(path.clone()).listen()?;
            socket_path = Some(path.clone());

            let mut spawn_err = None;
            for i in 0..opts.workers {
                let mut cmd = Command::new(program);
                cmd.args(prefix_args)
                    .arg("--socket")
                    .arg(&path)
                    .arg("--index")
                    .arg(i.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null());
                if !opts.token.is_empty() {
                    cmd.arg("--token").arg(&opts.token);
                }
                if opts.corrupt_plan {
                    cmd.arg("--corrupt-plan");
                }
                match cmd.spawn() {
                    Ok(child) => claimed.push(Some(child)),
                    Err(e) => spawn_err = Some(e),
                }
            }
            if claimed.is_empty() {
                std::fs::remove_file(&path).ok();
                let detail =
                    spawn_err.map_or_else(|| "no workers requested".to_string(), |e| e.to_string());
                return Err(ClusterError::Config(format!(
                    "failed to spawn any worker ('{program}'): {detail}"
                )));
            }
            stats.workers_spawned = claimed.len() as u64;

            // Accept until every still-running child has connected,
            // bounded by the handshake deadline.
            let deadline = Instant::now() + handshake_timeout;
            while conns.len() < claimed.len() && Instant::now() < deadline {
                match listener.accept_stream() {
                    Ok(Some(stream)) => conns.push(stream),
                    Ok(None) => {
                        let mut exited = 0;
                        for child in claimed.iter_mut().flatten() {
                            if matches!(child.try_wait(), Ok(Some(_))) {
                                exited += 1;
                            }
                        }
                        if claimed.len() - exited <= conns.len() {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        for child in claimed.iter_mut().flatten() {
                            child.kill().ok();
                            child.wait().ok();
                        }
                        std::fs::remove_file(&path).ok();
                        return Err(e.into());
                    }
                }
            }
        }

        // Handshake each connection: Join (version + token digest) →
        // Plan → [SegHave → SegManifest + SegData*] → PlanAck.
        // Rejections and silence both count as handshake failures.
        let config_bytes = encode_config(config);
        let expected_join = join_auth(&opts.token);
        let sent_plan_auth = plan_auth(&opts.token);
        let mut admitted: Vec<(Option<u32>, Box<dyn Stream>)> = Vec::new();
        let mut mismatch_fp = None;
        let mut auth_failures = 0u64;
        for mut stream in conns {
            stream.set_read_timeout(Some(handshake_timeout)).ok();
            let index = match read_frame(&mut stream) {
                Ok(Some(Frame::Join {
                    version,
                    index,
                    auth,
                })) if version == PROTOCOL_VERSION => {
                    if auth != expected_join {
                        // Wrong shared secret: explicit, typed rejection —
                        // the worker gets a Shutdown, never a hang.
                        stats.handshake_failures += 1;
                        auth_failures += 1;
                        write_frame(&mut stream, &Frame::Shutdown).ok();
                        continue;
                    }
                    index
                }
                _ => {
                    stats.handshake_failures += 1;
                    continue;
                }
            };
            let plan = Frame::Plan {
                plan_fp,
                auth: sent_plan_auth,
                corpus_dir: dir_str.clone(),
                config: config_bytes.clone(),
            };
            if write_frame(&mut stream, &plan).is_err() {
                stats.handshake_failures += 1;
                continue;
            }
            // One shipping round at most; then the PlanAck decides.
            let mut shipped = false;
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(Frame::PlanAck { plan_fp: got })) if got == plan_fp => {
                        stream.set_read_timeout(None).ok();
                        let claim = (!is_remote).then_some(index);
                        admitted.push((claim, stream));
                        break;
                    }
                    Ok(Some(Frame::PlanAck { plan_fp: got })) => {
                        stats.handshake_failures += 1;
                        mismatch_fp = Some(got);
                        write_frame(&mut stream, &Frame::Shutdown).ok();
                        break;
                    }
                    Ok(Some(Frame::SegHave { digests })) if !shipped => {
                        shipped = true;
                        let have: HashSet<u128> = digests.into_iter().collect();
                        if !ship_segments(&mut stream, handle, &have, &mut stats) {
                            stats.handshake_failures += 1;
                            break;
                        }
                    }
                    _ => {
                        stats.handshake_failures += 1;
                        break;
                    }
                }
            }
        }

        // Children that never made it through the handshake are dead
        // weight: reap them now.
        let admitted_idx: HashSet<u32> = admitted.iter().filter_map(|(i, _)| *i).collect();
        for (i, slot) in claimed.iter_mut().enumerate() {
            if !admitted_idx.contains(&(i as u32)) {
                if let Some(mut child) = slot.take() {
                    stats.handshake_failures += 1;
                    child.kill().ok();
                    child.wait().ok();
                }
            }
        }

        if admitted.is_empty() {
            if let Some(path) = &socket_path {
                std::fs::remove_file(path).ok();
            }
            if let Some(got) = mismatch_fp {
                return Err(ClusterError::PlanMismatch {
                    expected: plan_fp,
                    got,
                });
            }
            if auth_failures > 0 {
                return Err(ClusterError::AuthFailed);
            }
        }

        let (tx, events) = channel();
        let mut workers = Vec::with_capacity(admitted.len());
        let mut readers = Vec::with_capacity(admitted.len());
        for (index, stream) in admitted {
            let child = match index {
                Some(i) => {
                    let Some(child) = claimed.get_mut(i as usize).and_then(Option::take) else {
                        // A worker claimed an index we never spawned:
                        // drop it.
                        stats.handshake_failures += 1;
                        continue;
                    };
                    Some(child)
                }
                // Remote workers are slotted by connection order; their
                // processes belong to another host.
                None => None,
            };
            let slot = workers.len();
            let read_half = stream.try_clone_stream()?;
            let tx = tx.clone();
            readers.push(std::thread::spawn(move || reader_loop(read_half, slot, tx)));
            workers.push(WorkerConn {
                child,
                stream,
                alive: true,
                reaped: false,
                last_seen: Instant::now(),
                pinged: false,
                forest_ready: false,
                has: HashSet::new(),
            });
        }

        Ok(Cluster {
            workers,
            readers,
            events,
            stats,
            worker_timeout: opts.worker_timeout,
            max_task_retries: opts.max_task_retries,
            push_mode: opts.push_mode,
            kill_after: opts.kill_worker_after,
            assigned_passes: 0,
            next_task_id: 0,
            rr: 0,
            last_forest_fp: None,
            socket_path,
        })
    }

    fn live_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Live workers right now (the warm-pool gauge; no I/O).
    pub(crate) fn live_workers(&self) -> usize {
        self.live_count()
    }

    fn ready_count(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive && w.forest_ready)
            .count()
    }

    /// Next live worker round-robin; `need_forest` restricts to workers
    /// that acked the forest build.
    fn pick_live(&mut self, need_forest: bool) -> Option<usize> {
        let n = self.workers.len();
        for step in 0..n {
            let i = (self.rr + step) % n.max(1);
            let ok = self
                .workers
                .get(i)
                .is_some_and(|w| w.alive && (!need_forest || w.forest_ready));
            if ok {
                self.rr = (i + 1) % n.max(1);
                return Some(i);
            }
        }
        None
    }

    fn mark_dead(&mut self, slot: usize) {
        if let Some(w) = self.workers.get_mut(slot) {
            if w.alive {
                w.alive = false;
                if let Some(child) = w.child.as_mut() {
                    child.kill().ok();
                }
                // For a remote worker this is the whole funeral; either
                // way it unblocks the reader thread.
                w.stream.shutdown_both().ok();
                self.stats.workers_lost += 1;
            }
        }
    }

    /// A frame arrived from `slot`: it is alive and owes no ping.
    fn touch(&mut self, slot: usize) {
        if let Some(w) = self.workers.get_mut(slot) {
            w.last_seen = Instant::now();
            w.pinged = false;
        }
    }

    /// Reset liveness clocks at a phase boundary (the coordinator may
    /// have spent arbitrary time computing locally in between, which
    /// must not count against the workers).
    fn touch_all(&mut self) {
        for w in &mut self.workers {
            w.last_seen = Instant::now();
            w.pinged = false;
        }
    }

    /// Write one frame to a live worker; a failed write loses it.
    fn send_to(&mut self, slot: usize, frame: &Frame) -> bool {
        let Some(w) = self.workers.get_mut(slot) else {
            return false;
        };
        if !w.alive {
            return false;
        }
        if write_frame(&mut w.stream, frame).is_ok() {
            true
        } else {
            self.mark_dead(slot);
            false
        }
    }

    /// Liveness sweep: ping workers idle past half the window, lose
    /// workers idle past the whole window. Returns the newly lost slots
    /// so the calling phase can reassign their work.
    fn heartbeat(&mut self) -> Vec<usize> {
        let mut dead = Vec::new();
        let mut ping = Vec::new();
        for (i, w) in self.workers.iter().enumerate() {
            if !w.alive {
                continue;
            }
            let idle = w.last_seen.elapsed();
            if idle >= self.worker_timeout {
                dead.push(i);
            } else if idle * 2 >= self.worker_timeout && !w.pinged {
                ping.push(i);
            }
        }
        for &i in &ping {
            if let Some(w) = self.workers.get_mut(i) {
                w.pinged = true;
            }
            self.send_to(i, &Frame::Ping);
        }
        for &i in &dead {
            self.mark_dead(i);
        }
        dead
    }

    /// Reset the per-run counters before reusing a pooled cluster for a
    /// new request; lifetime counters (spawns, losses, handshake
    /// failures) persist. Deliberately *not* called after a cold spawn,
    /// so the first run's stats still report the handshake's segment
    /// shipping.
    pub(crate) fn begin_run(&mut self) {
        self.stats.encode_tasks = 0;
        self.stats.encode_remote = 0;
        self.stats.pass_tasks = 0;
        self.stats.pass_remote = 0;
        self.stats.tasks_retried = 0;
        self.stats.tasks_fallback = 0;
        self.stats.partials_pushed = 0;
        self.stats.forest_ships = 0;
        self.stats.segments_shipped = 0;
        self.stats.segment_ship_bytes = 0;
    }

    /// Heartbeats doubling as health checks: drain any queued events,
    /// ping every live worker and require a `Pong` within `timeout`.
    /// Silent workers are declared dead. Returns the surviving count —
    /// what a warm pool consults before trusting a cached entry.
    pub(crate) fn health_check(&mut self, timeout: Duration) -> usize {
        loop {
            match self.events.try_recv() {
                Ok(Event::Frame(slot, _)) => self.touch(slot),
                Ok(Event::Gone(slot)) => self.mark_dead(slot),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        let live: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive)
            .map(|(i, _)| i)
            .collect();
        let mut waiting: HashSet<usize> = HashSet::new();
        for slot in live {
            if self.send_to(slot, &Frame::Ping) {
                waiting.insert(slot);
            }
        }
        let deadline = Instant::now() + timeout;
        while !waiting.is_empty() && Instant::now() < deadline {
            match self.events.recv_timeout(TICK) {
                Ok(Event::Frame(slot, Frame::Pong)) => {
                    self.touch(slot);
                    waiting.remove(&slot);
                }
                Ok(Event::Frame(slot, _)) => self.touch(slot),
                Ok(Event::Gone(slot)) => {
                    self.mark_dead(slot);
                    waiting.remove(&slot);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for slot in waiting {
            self.mark_dead(slot);
        }
        self.live_count()
    }

    /// Phase 1: farm the pending segment-encode work list out to the
    /// pool. Workers answer with encoded partials which are cached into
    /// `handle`; anything lost to worker deaths (or undecodable) is
    /// simply left for [`CorpusHandle::merged_forest`] to build locally.
    pub(crate) fn encode_phase(
        &mut self,
        handle: &mut CorpusHandle,
        config: &DiscoveryConfig,
        plan: &CorpusPlan,
    ) {
        let digests = handle.pending_partials(plan.plan_fp());
        self.stats.encode_tasks = digests.len() as u64;
        if digests.is_empty() || self.live_count() == 0 {
            return;
        }
        self.touch_all();
        let map = SchemaMap::new(plan.schema().as_ref());
        let mut owner: HashMap<u128, usize> = HashMap::new();
        for digest in digests {
            if let Some(slot) = self.pick_live(false) {
                if self.send_to(slot, &Frame::Encode { digest }) {
                    owner.insert(digest, slot);
                }
            }
        }
        while !owner.is_empty() {
            match self.events.recv_timeout(TICK) {
                Ok(Event::Frame(slot, Frame::Partial { digest, bytes })) => {
                    self.touch(slot);
                    if owner.remove(&digest).is_some() && !bytes.is_empty() {
                        if let Ok(partial) = decode_partial(&bytes, &map, &config.encode) {
                            if handle.store_partial(plan.plan_fp(), digest, partial) {
                                self.stats.encode_remote += 1;
                                if let Some(w) = self.workers.get_mut(slot) {
                                    w.has.insert(digest);
                                }
                            }
                        }
                    }
                }
                Ok(Event::Frame(slot, _)) => self.touch(slot),
                Ok(Event::Gone(slot)) => {
                    self.mark_dead(slot);
                    self.reassign_encodes(slot, &mut owner);
                }
                Err(RecvTimeoutError::Timeout) => {
                    for slot in self.heartbeat() {
                        self.reassign_encodes(slot, &mut owner);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Hand the lost worker's outstanding encodes to the survivors (or
    /// drop them to the local build).
    fn reassign_encodes(&mut self, lost: usize, owner: &mut HashMap<u128, usize>) {
        let orphaned: Vec<u128> = owner
            .iter()
            .filter(|&(_, &slot)| slot == lost)
            .map(|(&digest, _)| digest)
            .collect();
        for digest in orphaned {
            owner.remove(&digest);
            if let Some(slot) = self.pick_live(false) {
                if self.send_to(slot, &Frame::Encode { digest }) {
                    owner.insert(digest, slot);
                    self.stats.tasks_retried += 1;
                }
            }
        }
    }

    /// Phase 2: bring every worker up to the merged forest. Small gaps
    /// are filled with per-partial `Push` frames; a worker missing more
    /// than half the partials gets the whole set in one `ForestShip`
    /// frame, encoded once and broadcast (`PushMode` can force either
    /// path). Then each worker merges in the coordinator's exact document
    /// order and must ack with the same forest fingerprint to stay
    /// eligible for passes. A pooled cluster that already acked this
    /// exact fingerprint skips the phase entirely.
    pub(crate) fn distribute_forest(
        &mut self,
        handle: &CorpusHandle,
        plan: &CorpusPlan,
        forest_fp: u128,
    ) {
        if self.live_count() == 0 {
            return;
        }
        if self.last_forest_fp == Some(forest_fp)
            && self
                .workers
                .iter()
                .filter(|w| w.alive)
                .all(|w| w.forest_ready)
        {
            return;
        }
        self.touch_all();
        let digests = handle.doc_digests();
        let mut distinct = Vec::new();
        let mut seen = HashSet::new();
        for &d in &digests {
            if seen.insert(d) {
                distinct.push(d);
            }
        }
        // The batched frame and its digest list are built at most once,
        // however many workers need them.
        let mut ship_frame: Option<Frame> = None;
        let mut ship_digests: Vec<u128> = Vec::new();
        let mut waiting: HashSet<usize> = HashSet::new();
        for slot in 0..self.workers.len() {
            let missing: Vec<u128> = match self.workers.get(slot) {
                Some(w) if w.alive => distinct
                    .iter()
                    .copied()
                    .filter(|d| {
                        // No cached partial (cold forest cache): the
                        // worker rebuilds from its own tree during Build.
                        !w.has.contains(d) && handle.partial(plan.plan_fp(), *d).is_some()
                    })
                    .collect(),
                _ => continue,
            };
            let use_ship = match self.push_mode {
                PushMode::Partials => false,
                PushMode::Forest => !missing.is_empty(),
                PushMode::Auto => missing.len() * 2 > distinct.len(),
            };
            let mut writable = true;
            if use_ship {
                if ship_frame.is_none() {
                    let partials: Vec<(u128, Vec<u8>)> = distinct
                        .iter()
                        .copied()
                        .filter_map(|d| {
                            handle
                                .partial(plan.plan_fp(), d)
                                .map(|p| (d, encode_partial(&p)))
                        })
                        .collect();
                    ship_digests = partials.iter().map(|(d, _)| *d).collect();
                    ship_frame = Some(Frame::ForestShip { partials });
                }
                let sent = match &ship_frame {
                    Some(frame) => self.send_to(slot, frame),
                    None => false,
                };
                if sent {
                    self.stats.forest_ships += 1;
                    if let Some(w) = self.workers.get_mut(slot) {
                        w.has.extend(ship_digests.iter().copied());
                    }
                } else {
                    writable = false;
                }
            } else {
                for digest in missing {
                    let Some(partial) = handle.partial(plan.plan_fp(), digest) else {
                        continue;
                    };
                    let bytes = encode_partial(&partial);
                    if self.send_to(slot, &Frame::Push { digest, bytes }) {
                        self.stats.partials_pushed += 1;
                        if let Some(w) = self.workers.get_mut(slot) {
                            w.has.insert(digest);
                        }
                    } else {
                        writable = false;
                        break;
                    }
                }
            }
            let build = Frame::Build {
                forest_fp,
                digests: digests.clone(),
            };
            if writable && self.send_to(slot, &build) {
                waiting.insert(slot);
            }
        }
        while !waiting.is_empty() {
            match self.events.recv_timeout(TICK) {
                Ok(Event::Frame(slot, Frame::ForestAck { forest_fp: got })) => {
                    self.touch(slot);
                    if waiting.remove(&slot) {
                        if got == forest_fp {
                            if let Some(w) = self.workers.get_mut(slot) {
                                w.forest_ready = true;
                            }
                        } else {
                            // Divergent forest: results from this worker
                            // could corrupt the run. Cut it loose.
                            self.mark_dead(slot);
                        }
                    }
                }
                Ok(Event::Frame(slot, _)) => self.touch(slot),
                Ok(Event::Gone(slot)) => {
                    self.mark_dead(slot);
                    waiting.remove(&slot);
                }
                Err(RecvTimeoutError::Timeout) => {
                    for slot in self.heartbeat() {
                        waiting.remove(&slot);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.last_forest_fp = Some(forest_fp);
    }

    /// Fault injection: SIGKILL the worker that just received a pass
    /// task — or, when the worker is remote, hard-reset its connection
    /// (the TCP equivalent) — leaving the task in flight. Death is then
    /// *discovered* the honest way (EOF, reset or liveness timeout),
    /// exactly like a real crash.
    fn kill_injected(&mut self, slot: usize) {
        self.kill_after = None;
        if let Some(w) = self.workers.get_mut(slot) {
            match w.child.as_mut() {
                Some(child) => {
                    child.kill().ok();
                }
                None => {
                    w.stream.shutdown_both().ok();
                }
            }
        }
    }

    /// Reassign (bounded) or abandon one in-flight pass task.
    fn retry_or_fallback(
        &mut self,
        task_idx: usize,
        retries: &mut HashMap<usize, usize>,
        queue: &mut VecDeque<usize>,
        outstanding: &mut usize,
    ) {
        let tried = retries.entry(task_idx).or_insert(0);
        if *tried < self.max_task_retries && self.ready_count() > 0 {
            *tried += 1;
            self.stats.tasks_retried += 1;
            queue.push_back(task_idx);
        } else {
            self.stats.tasks_fallback += 1;
            *outstanding -= 1;
        }
    }

    /// The stats of the run so far, with the live-worker gauge refreshed
    /// — what a pooled cluster reports after each request, since it
    /// never reaches [`Cluster::shutdown`] between them.
    pub(crate) fn run_stats(&mut self) -> ClusterStats {
        self.stats.workers_live = self.live_count() as u64;
        self.stats
    }

    /// Graceful teardown: `Shutdown` to every survivor, close write
    /// halves, reap spawned children (killing any that linger), close
    /// remote connections, join readers.
    pub(crate) fn shutdown(&mut self) -> ClusterStats {
        self.stats.workers_live = self.live_count() as u64;
        for slot in 0..self.workers.len() {
            self.send_to(slot, &Frame::Shutdown);
        }
        for w in &mut self.workers {
            w.stream.shutdown_write().ok();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        for w in &mut self.workers {
            let Some(child) = w.child.as_mut() else {
                // Remote worker: not ours to reap. A full shutdown of the
                // connection unblocks our reader thread; the worker loops
                // back to listening.
                w.stream.shutdown_both().ok();
                w.reaped = true;
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => {
                        w.reaped = true;
                        break;
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        child.kill().ok();
                        child.wait().ok();
                        w.reaped = true;
                        break;
                    }
                }
            }
        }
        for handle in self.readers.drain(..) {
            handle.join().ok();
        }
        if let Some(path) = &self.socket_path {
            std::fs::remove_file(path).ok();
        }
        self.stats
    }

    /// Final counters (identical to what [`Cluster::shutdown`] returns).
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for w in &mut self.workers {
            if !w.reaped {
                match w.child.as_mut() {
                    Some(child) => {
                        child.kill().ok();
                        child.wait().ok();
                    }
                    None => {
                        w.stream.shutdown_both().ok();
                    }
                }
            }
        }
        if let Some(path) = &self.socket_path {
            std::fs::remove_file(path).ok();
        }
    }
}

impl PassRunner for Cluster {
    /// Phase 3, once per wave: round-robin the wave's memo misses over
    /// forest-ready workers and collect answers. `None` entries (lost
    /// workers, exhausted retries, workers that declined) are computed
    /// locally by the memo layer, which also validates every answer —
    /// so this function affects *when* work happens, never *what* the
    /// result is.
    fn run_wave(
        &mut self,
        _forest: &Forest,
        _config: &DiscoveryConfig,
        tasks: &[WaveTask],
    ) -> Vec<Option<Vec<u8>>> {
        self.stats.pass_tasks += tasks.len() as u64;
        let mut results: Vec<Option<Vec<u8>>> = vec![None; tasks.len()];
        if self.ready_count() == 0 {
            self.stats.tasks_fallback += tasks.len() as u64;
            return results;
        }
        self.touch_all();
        let mut queue: VecDeque<usize> = (0..tasks.len()).collect();
        let mut in_flight: HashMap<u64, (usize, usize)> = HashMap::new();
        let mut retries: HashMap<usize, usize> = HashMap::new();
        let mut outstanding = tasks.len();
        loop {
            while let Some(task_idx) = queue.pop_front() {
                let Some(slot) = self.pick_live(true) else {
                    // Pool is gone: this and everything still queued
                    // falls back to local computation.
                    self.stats.tasks_fallback += 1;
                    outstanding -= 1;
                    continue;
                };
                let Some(task) = tasks.get(task_idx) else {
                    outstanding -= 1;
                    continue;
                };
                let task_id = self.next_task_id;
                self.next_task_id += 1;
                let frame = Frame::Pass {
                    task_id,
                    task: task.encode_bytes(),
                };
                if self.send_to(slot, &frame) {
                    in_flight.insert(task_id, (slot, task_idx));
                    self.assigned_passes += 1;
                    if self.kill_after == Some(self.assigned_passes) {
                        self.kill_injected(slot);
                    }
                } else {
                    // The write lost the worker; try the next one.
                    queue.push_front(task_idx);
                }
            }
            if outstanding == 0 {
                break;
            }
            match self.events.recv_timeout(TICK) {
                Ok(Event::Frame(slot, Frame::TaskResult { task_id, output })) => {
                    self.touch(slot);
                    if let Some((_, task_idx)) = in_flight.remove(&task_id) {
                        if output.is_empty() {
                            // The worker answered "can't": same path as
                            // losing it, minus the funeral.
                            self.retry_or_fallback(
                                task_idx,
                                &mut retries,
                                &mut queue,
                                &mut outstanding,
                            );
                        } else if let Some(r) = results.get_mut(task_idx) {
                            *r = Some(output);
                            self.stats.pass_remote += 1;
                            outstanding -= 1;
                        }
                    }
                }
                Ok(Event::Frame(slot, _)) => self.touch(slot),
                Ok(Event::Gone(slot)) => {
                    self.mark_dead(slot);
                    self.reassign_passes(
                        slot,
                        &mut in_flight,
                        &mut retries,
                        &mut queue,
                        &mut outstanding,
                    );
                }
                Err(RecvTimeoutError::Timeout) => {
                    for slot in self.heartbeat() {
                        self.reassign_passes(
                            slot,
                            &mut in_flight,
                            &mut retries,
                            &mut queue,
                            &mut outstanding,
                        );
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        results
    }
}

impl Cluster {
    /// Route every in-flight task of a lost worker through
    /// [`Cluster::retry_or_fallback`].
    fn reassign_passes(
        &mut self,
        lost: usize,
        in_flight: &mut HashMap<u64, (usize, usize)>,
        retries: &mut HashMap<usize, usize>,
        queue: &mut VecDeque<usize>,
        outstanding: &mut usize,
    ) {
        let orphaned: Vec<(u64, usize)> = in_flight
            .iter()
            .filter(|&(_, &(slot, _))| slot == lost)
            .map(|(&id, &(_, task_idx))| (id, task_idx))
            .collect();
        for (id, task_idx) in orphaned {
            in_flight.remove(&id);
            self.retry_or_fallback(task_idx, retries, queue, outstanding);
        }
    }
}
