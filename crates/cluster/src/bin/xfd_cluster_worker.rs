//! Standalone cluster worker, used by this crate's integration tests and
//! the bench harness (production deployments use `discoverxfd worker`,
//! which is the same code behind a subcommand).

use xfd_cluster::worker::{parse_worker_args, run_worker};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_worker_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("xfd-cluster-worker: {msg}");
            eprintln!(
                "usage: xfd-cluster-worker (--socket <path> | --listen <host:port>) [--index N] \
                 [--token T] [--seg-cache DIR] [--seg-cache-budget BYTES] [--no-shared-storage] \
                 [--corrupt-plan] [--exit-after-tasks N]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = run_worker(&opts) {
        eprintln!("xfd-cluster-worker: {e}");
        std::process::exit(1);
    }
}
