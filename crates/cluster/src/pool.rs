//! A persistent warm worker pool: whole [`Cluster`]s kept alive between
//! requests, keyed by (corpus name, plan fingerprint) — the pair that
//! fully determines what an admitted worker has derived. Replaces
//! spawn-per-request in `serve` mode.
//!
//! Lifecycle of a pool entry:
//!
//! ```text
//!            discover(miss)                 discover(hit)
//!   (none) ───────────────► warm ◄──────────────────────┐
//!                            │ │                        │
//!                            │ └── health_check ok ─────┘
//!            idle deadline   │
//!            health check 0  │        (respawn happens
//!            digest mismatch ▼         transparently on
//!                          reaped       the same request)
//! ```
//!
//! Checkout removes the entry from the map, so the map lock is never
//! held across any socket or process I/O (health checks, runs, spawns
//! and shutdowns all happen on a checked-out cluster). Heartbeats double
//! as health checks: a checked-out entry must answer a `Ping` before it
//! is trusted; silence means it is shut down and respawned — the caller
//! never sees the difference, only the `warm` flag in the result.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use discoverxfd::{DiscoveryConfig, RunOutcome};
use xfd_corpus::CorpusHandle;
use xfd_relation::forest_fingerprint;

use crate::coordinator::Cluster;
use crate::{ClusterError, ClusterOptions, ClusterStats};

/// How long a checked-out cluster gets to answer its health-check ping.
const HEALTH_TIMEOUT: Duration = Duration::from_secs(5);

/// Recover a mutex even if a holder panicked: the map only stores owned
/// entries, so the data is still structurally sound.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct PoolEntry {
    cluster: Cluster,
    last_used: Instant,
    /// The per-document digests the entry's workers built their forest
    /// from; a mismatch means the corpus changed and the entry is stale.
    doc_digests: Vec<u128>,
}

/// One pooled discovery's result.
pub struct PoolDiscovery {
    /// The discovery outcome — byte-identical to an unpooled run.
    pub outcome: RunOutcome,
    /// The run's cluster counters.
    pub stats: ClusterStats,
    /// `true` when a warm pool entry served the request (no spawn, no
    /// handshake, no segment shipping).
    pub warm: bool,
}

/// A point-in-time view of the pool for `/metrics` and status output.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolSnapshot {
    /// Live workers across all pooled entries.
    pub warm_workers: u64,
    /// Clusters currently mid-spawn for a pool miss.
    pub spawning: u64,
    /// Entries retired so far (idle deadline, failed health check, or
    /// stale document view), cumulative.
    pub reaped_total: u64,
    /// Requests served by a warm entry, cumulative.
    pub warm_hits_total: u64,
    /// Segment bytes shipped to storage-less workers, cumulative.
    pub segments_shipped_bytes: u64,
}

/// The pool. One per server; safe to share behind an `Arc`.
pub struct WorkerPool {
    opts: ClusterOptions,
    idle_deadline: Duration,
    entries: Mutex<HashMap<(String, u128), PoolEntry>>,
    warm_hits: AtomicU64,
    reaped: AtomicU64,
    spawning: AtomicU64,
    ship_bytes: AtomicU64,
}

impl WorkerPool {
    /// A new, empty pool. `idle_deadline` bounds how long an unused
    /// entry keeps its workers alive (enforced by [`WorkerPool::reap_idle`]).
    pub fn new(opts: ClusterOptions, idle_deadline: Duration) -> WorkerPool {
        WorkerPool {
            opts,
            idle_deadline,
            entries: Mutex::new(HashMap::new()),
            warm_hits: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            spawning: AtomicU64::new(0),
            ship_bytes: AtomicU64::new(0),
        }
    }

    fn spawn_cold(
        &self,
        plan_fp: u128,
        handle: &CorpusHandle,
        config: &DiscoveryConfig,
    ) -> Result<Cluster, ClusterError> {
        self.spawning.fetch_add(1, Ordering::Relaxed);
        let result = Cluster::spawn(&self.opts, plan_fp, handle, config);
        self.spawning.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn retire(&self, mut entry: PoolEntry) {
        entry.cluster.shutdown();
        self.reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Run one discovery against the pool: reuse the warm cluster for
    /// this (corpus, plan fingerprint) when it is healthy and its
    /// document view still matches, else spawn a fresh one — then park
    /// the cluster again for the next request. Output bytes are
    /// identical either way.
    pub fn discover(
        &self,
        handle: &mut CorpusHandle,
        config: &DiscoveryConfig,
    ) -> Result<PoolDiscovery, ClusterError> {
        let plan = handle.plan(config);
        let key = (handle.name().to_string(), plan.plan_fp());
        let digests = handle.doc_digests();

        // Checkout strictly separates the map lock from all I/O.
        let parked = {
            let mut g = lock_recover(&self.entries);
            g.remove(&key)
        };
        let (mut cluster, warm) = match parked {
            Some(mut entry) if entry.doc_digests == digests => {
                if entry.cluster.health_check(HEALTH_TIMEOUT) > 0 {
                    entry.cluster.begin_run();
                    (entry.cluster, true)
                } else {
                    // Every worker is dead or silent: respawn
                    // transparently on this same request.
                    self.retire(entry);
                    (self.spawn_cold(plan.plan_fp(), handle, config)?, false)
                }
            }
            Some(entry) => {
                // Stale document view under an unchanged fingerprint
                // key: never reuse, the workers' forests are wrong.
                self.retire(entry);
                (self.spawn_cold(plan.plan_fp(), handle, config)?, false)
            }
            None => (self.spawn_cold(plan.plan_fp(), handle, config)?, false),
        };
        if warm {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
        }

        cluster.encode_phase(handle, config, &plan);
        let prepared = handle.merged_forest(config, &plan);
        let forest_fp = forest_fingerprint(prepared.forest());
        cluster.distribute_forest(handle, &plan, forest_fp);
        let outcome = handle.finish_discover(config, &prepared, |_| {}, Some(&mut cluster));
        let stats = cluster.run_stats();
        self.ship_bytes
            .fetch_add(stats.segment_ship_bytes, Ordering::Relaxed);

        // Check-in. A concurrent request may have parked its own cluster
        // under this key meanwhile; the displaced one is shut down
        // outside the lock.
        let displaced = {
            let mut g = lock_recover(&self.entries);
            g.insert(
                key,
                PoolEntry {
                    cluster,
                    last_used: Instant::now(),
                    doc_digests: digests,
                },
            )
        };
        if let Some(entry) = displaced {
            self.retire(entry);
        }
        Ok(PoolDiscovery {
            outcome,
            stats,
            warm,
        })
    }

    /// Retire entries idle past the deadline. Cheap when nothing
    /// expired; meant to be called periodically from a janitor loop.
    /// Returns how many entries were reaped.
    pub fn reap_idle(&self) -> usize {
        let expired: Vec<PoolEntry> = {
            let mut g = lock_recover(&self.entries);
            let now = Instant::now();
            let keys: Vec<(String, u128)> = g
                .iter()
                .filter(|(_, e)| now.duration_since(e.last_used) >= self.idle_deadline)
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter().filter_map(|k| g.remove(&k)).collect()
        };
        let n = expired.len();
        for entry in expired {
            self.retire(entry);
        }
        n
    }

    /// Counters and gauges for `/metrics`.
    pub fn snapshot(&self) -> PoolSnapshot {
        let warm_workers = {
            let g = lock_recover(&self.entries);
            g.values().map(|e| e.cluster.live_workers() as u64).sum()
        };
        PoolSnapshot {
            warm_workers,
            spawning: self.spawning.load(Ordering::Relaxed),
            reaped_total: self.reaped.load(Ordering::Relaxed),
            warm_hits_total: self.warm_hits.load(Ordering::Relaxed),
            segments_shipped_bytes: self.ship_bytes.load(Ordering::Relaxed),
        }
    }

    /// Shut down every pooled cluster (server drain).
    pub fn shutdown_all(&self) {
        let entries: Vec<PoolEntry> = {
            let mut g = lock_recover(&self.entries);
            g.drain().map(|(_, e)| e).collect()
        };
        for mut entry in entries {
            entry.cluster.shutdown();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}
