//! The wire protocol between coordinator and workers: length-prefixed
//! frames over a Unix domain socket, hand-rolled and dependency-free.
//!
//! ```text
//! [u32 LE payload length][u8 kind][payload]
//! ```
//!
//! Payload integers are little-endian; byte strings are `u32`
//! length-prefixed. The protocol is strictly request/response-free at the
//! frame layer — sequencing lives in the coordinator's phase machine (see
//! [`crate::coordinator`]) — so a frame needs no correlation header beyond
//! the task id the pass frames carry.

use std::io::{self, Read, Write};

/// Protocol version, checked in the `Join` handshake. Bump on any frame
/// layout change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's payload (a partial of a very large segment
/// stays far below this); anything bigger is a protocol violation, not an
/// allocation request.
const MAX_PAYLOAD: usize = 1 << 30;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator, first frame on the socket.
    Join {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
        /// The `--index` the worker was spawned with.
        index: u32,
    },
    /// Coordinator → worker: the job description. The worker re-derives
    /// the plan fingerprint from its own read-only view of `corpus_dir`
    /// and must come to the same answer.
    Plan {
        /// The coordinator's plan fingerprint.
        plan_fp: u128,
        /// Corpus directory to open read-only.
        corpus_dir: String,
        /// `discoverxfd::encode_config` bytes.
        config: Vec<u8>,
    },
    /// Worker → coordinator: the plan fingerprint the worker derived.
    PlanAck {
        /// The worker's independently derived fingerprint.
        plan_fp: u128,
    },
    /// Coordinator → worker: build the partial of the segment with this
    /// digest.
    Encode {
        /// Segment content digest.
        digest: u128,
    },
    /// Worker → coordinator: an encoded [`xfd_relation::SegmentPartial`].
    /// Empty `bytes` signals the worker could not build it.
    Partial {
        /// Segment content digest.
        digest: u128,
        /// `xfd_relation::encode_partial` bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: a partial some *other* worker (or the
    /// coordinator's cache) built, so this worker need not re-encode it.
    Push {
        /// Segment content digest.
        digest: u128,
        /// `xfd_relation::encode_partial` bytes.
        bytes: Vec<u8>,
    },
    /// Coordinator → worker: merge the forest from partials, in this
    /// exact per-document digest order, and fingerprint it.
    Build {
        /// The coordinator's forest fingerprint; the worker must match it.
        forest_fp: u128,
        /// Per-document segment digests, duplicates preserved.
        digests: Vec<u128>,
    },
    /// Worker → coordinator: the merged forest's fingerprint (0 when the
    /// worker's document view disagreed with the `Build` order).
    ForestAck {
        /// The worker's forest fingerprint.
        forest_fp: u128,
    },
    /// Coordinator → worker: run one relation pass.
    Pass {
        /// Correlation id, unique per cluster run.
        task_id: u64,
        /// `discoverxfd::WaveTask` bytes.
        task: Vec<u8>,
    },
    /// Worker → coordinator: a relation pass answer. Empty `output`
    /// signals failure; the coordinator recomputes locally.
    TaskResult {
        /// Correlation id from the `Pass` frame.
        task_id: u64,
        /// `RelationOutput` wire bytes.
        output: Vec<u8>,
    },
    /// Coordinator → worker heartbeat probe.
    Ping,
    /// Worker → coordinator heartbeat answer.
    Pong,
    /// Coordinator → worker: drain and exit cleanly.
    Shutdown,
    /// Worker → coordinator: a non-fatal worker-side failure report.
    WorkerError {
        /// Human-readable description.
        message: String,
    },
}

const K_JOIN: u8 = 1;
const K_PLAN: u8 = 2;
const K_PLAN_ACK: u8 = 3;
const K_ENCODE: u8 = 4;
const K_PARTIAL: u8 = 5;
const K_PUSH: u8 = 6;
const K_BUILD: u8 = 7;
const K_FOREST_ACK: u8 = 8;
const K_PASS: u8 = 9;
const K_TASK_RESULT: u8 = 10;
const K_PING: u8 = 11;
const K_PONG: u8 = 12;
const K_SHUTDOWN: u8 = 13;
const K_WORKER_ERROR: u8 = 14;

fn proto_err(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("protocol: {what}"))
}

/// Bounded little-endian payload reader.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Cur<'a> {
        Cur { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| proto_err("length overflow"))?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| proto_err("truncated payload"))?;
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        <[u8; 4]>::try_from(b)
            .map(u32::from_le_bytes)
            .map_err(|_| proto_err("truncated u32"))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        <[u8; 8]>::try_from(b)
            .map(u64::from_le_bytes)
            .map_err(|_| proto_err("truncated u64"))
    }

    fn u128(&mut self) -> io::Result<u128> {
        let b = self.take(16)?;
        <[u8; 16]>::try_from(b)
            .map(u128::from_le_bytes)
            .map_err(|_| proto_err("truncated u128"))
    }

    /// A `u32`-length-prefixed byte string, capped by what the payload can
    /// actually hold.
    fn bytes(&mut self) -> io::Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> io::Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| proto_err("bad utf-8"))
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(proto_err("trailing bytes"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Join { .. } => K_JOIN,
            Frame::Plan { .. } => K_PLAN,
            Frame::PlanAck { .. } => K_PLAN_ACK,
            Frame::Encode { .. } => K_ENCODE,
            Frame::Partial { .. } => K_PARTIAL,
            Frame::Push { .. } => K_PUSH,
            Frame::Build { .. } => K_BUILD,
            Frame::ForestAck { .. } => K_FOREST_ACK,
            Frame::Pass { .. } => K_PASS,
            Frame::TaskResult { .. } => K_TASK_RESULT,
            Frame::Ping => K_PING,
            Frame::Pong => K_PONG,
            Frame::Shutdown => K_SHUTDOWN,
            Frame::WorkerError { .. } => K_WORKER_ERROR,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Join { version, index } => {
                put_u32(&mut out, *version);
                put_u32(&mut out, *index);
            }
            Frame::Plan {
                plan_fp,
                corpus_dir,
                config,
            } => {
                put_u128(&mut out, *plan_fp);
                put_bytes(&mut out, corpus_dir.as_bytes());
                put_bytes(&mut out, config);
            }
            Frame::PlanAck { plan_fp } => put_u128(&mut out, *plan_fp),
            Frame::Encode { digest } => put_u128(&mut out, *digest),
            Frame::Partial { digest, bytes } | Frame::Push { digest, bytes } => {
                put_u128(&mut out, *digest);
                put_bytes(&mut out, bytes);
            }
            Frame::Build { forest_fp, digests } => {
                put_u128(&mut out, *forest_fp);
                put_u32(&mut out, digests.len() as u32);
                for d in digests {
                    put_u128(&mut out, *d);
                }
            }
            Frame::ForestAck { forest_fp } => put_u128(&mut out, *forest_fp),
            Frame::Pass { task_id, task } => {
                put_u64(&mut out, *task_id);
                put_bytes(&mut out, task);
            }
            Frame::TaskResult { task_id, output } => {
                put_u64(&mut out, *task_id);
                put_bytes(&mut out, output);
            }
            Frame::Ping | Frame::Pong | Frame::Shutdown => {}
            Frame::WorkerError { message } => put_bytes(&mut out, message.as_bytes()),
        }
        out
    }

    fn decode(kind: u8, payload: &[u8]) -> io::Result<Frame> {
        let mut c = Cur::new(payload);
        let frame = match kind {
            K_JOIN => Frame::Join {
                version: c.u32()?,
                index: c.u32()?,
            },
            K_PLAN => Frame::Plan {
                plan_fp: c.u128()?,
                corpus_dir: c.string()?,
                config: c.bytes()?,
            },
            K_PLAN_ACK => Frame::PlanAck { plan_fp: c.u128()? },
            K_ENCODE => Frame::Encode { digest: c.u128()? },
            K_PARTIAL => Frame::Partial {
                digest: c.u128()?,
                bytes: c.bytes()?,
            },
            K_PUSH => Frame::Push {
                digest: c.u128()?,
                bytes: c.bytes()?,
            },
            K_BUILD => {
                let forest_fp = c.u128()?;
                let n = c.u32()? as usize;
                // 16 bytes per digest must fit in what remains.
                if n > payload.len() / 16 {
                    return Err(proto_err("digest count exceeds payload"));
                }
                let mut digests = Vec::with_capacity(n);
                for _ in 0..n {
                    digests.push(c.u128()?);
                }
                Frame::Build { forest_fp, digests }
            }
            K_FOREST_ACK => Frame::ForestAck {
                forest_fp: c.u128()?,
            },
            K_PASS => Frame::Pass {
                task_id: c.u64()?,
                task: c.bytes()?,
            },
            K_TASK_RESULT => Frame::TaskResult {
                task_id: c.u64()?,
                output: c.bytes()?,
            },
            K_PING => Frame::Ping,
            K_PONG => Frame::Pong,
            K_SHUTDOWN => Frame::Shutdown,
            K_WORKER_ERROR => Frame::WorkerError {
                message: c.string()?,
            },
            _ => return Err(proto_err("unknown frame kind")),
        };
        c.finish()?;
        Ok(frame)
    }
}

/// Write one frame. The caller flushes (frames are written from a
/// dedicated thread or between phases, never under a lock).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = frame.payload();
    if payload.len() > MAX_PAYLOAD {
        return Err(proto_err("payload too large"));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[frame.kind()])?;
    w.write_all(&payload)?;
    Ok(())
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary; EOF
/// mid-frame is an error (the peer died mid-write).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    // Distinguish "no more frames" from "torn frame": only a zero-byte
    // first read is a clean close.
    let mut filled = 0usize;
    while filled < 4 {
        let n = match header.get_mut(filled..) {
            Some(buf) => r.read(buf)?,
            None => 0,
        };
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(proto_err("eof mid-header"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_PAYLOAD {
        return Err(proto_err("payload too large"));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let Some(&k) = kind.first() else {
        return Err(proto_err("missing kind"));
    };
    Frame::decode(k, &payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Join {
                version: PROTOCOL_VERSION,
                index: 3,
            },
            Frame::Plan {
                plan_fp: 0xdead_beef,
                corpus_dir: "/tmp/corpora/orders".into(),
                config: vec![1, 2, 3],
            },
            Frame::PlanAck { plan_fp: 7 },
            Frame::Encode { digest: 42 },
            Frame::Partial {
                digest: 42,
                bytes: vec![9; 100],
            },
            Frame::Push {
                digest: 43,
                bytes: vec![],
            },
            Frame::Build {
                forest_fp: 1,
                digests: vec![42, 43, 42],
            },
            Frame::ForestAck { forest_fp: 1 },
            Frame::Pass {
                task_id: 17,
                task: vec![4, 5],
            },
            Frame::TaskResult {
                task_id: 17,
                output: vec![6],
            },
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::WorkerError {
                message: "bad".into(),
            },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = wire.as_slice();
        for f in &frames {
            assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(f));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_and_corrupt_frames_are_errors_not_panics() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &Frame::Pass {
                task_id: 1,
                task: vec![1, 2, 3, 4],
            },
        )
        .unwrap();
        // Every strict prefix is torn (EOF mid-frame) — an error, never a
        // panic or a silent success.
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert!(read_frame(&mut r).is_err(), "cut at {cut}");
        }
        // Unknown kind byte.
        let mut bad = wire.clone();
        bad[4] = 200;
        assert!(read_frame(&mut bad.as_slice()).is_err());
        // Absurd length prefix is rejected before allocating.
        let huge = (u32::MAX).to_le_bytes();
        let mut r: &[u8] = &huge;
        assert!(read_frame(&mut r).is_err());
    }
}
