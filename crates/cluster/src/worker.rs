//! The worker side: connect to the coordinator's Unix socket (spawned
//! workers) or listen on TCP for one (`--listen host:port`, remote
//! workers), re-derive the plan from a read-only view of the corpus —
//! or, without shared storage, from digest-verified shipped segments —
//! then serve encode / merge / pass requests until `Shutdown` or EOF.
//!
//! Three threads per session, no shared locks:
//!
//! * the **main** thread reads frames and dispatches — heartbeats are
//!   answered here so liveness holds even while a merge is running;
//! * a **compute** thread owns the corpus handle and works the queue in
//!   FIFO order;
//! * a **writer** thread owns the write half of the connection,
//!   serializing whole frames from one channel (answers and `Pong`s
//!   interleave at frame boundaries, never inside one).
//!
//! A listening worker is persistent: when a coordinator disconnects it
//! loops back to accepting, its segment cache warm for the next session.
//! It serves one coordinator at a time.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

use discoverxfd::{decode_config, run_task, task_in_bounds, DiscoveryConfig, WaveTask};
use xfd_corpus::{CorpusHandle, CorpusPlan, CorpusStore, PreparedCorpus};
use xfd_relation::treetuple::decode_tree;
use xfd_relation::{build_partial, encode_partial, forest_fingerprint};
use xfd_schema::SchemaMap;
use xfd_transport::{join_auth, plan_auth, Endpoint, Stream};
use xfd_xml::DataTree;

use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::ClusterError;

/// Bound on coordinator silence during the handshake and segment
/// shipping; cleared once admitted (a pooled worker then waits
/// indefinitely between requests).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default byte budget for the shipped-segment cache (256 MiB).
pub const DEFAULT_SEG_CACHE_BUDGET: u64 = 256 * 1024 * 1024;

/// How a worker process was invoked.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The coordinator's Unix socket (spawned workers). Exactly one of
    /// `socket` and `listen` must be set.
    pub socket: Option<PathBuf>,
    /// TCP `host:port` to listen on for coordinators (remote workers).
    /// Port 0 picks an ephemeral port; the bound address is printed as
    /// `worker listening on <addr>` for scripts to parse.
    pub listen: Option<String>,
    /// This worker's index, echoed in the `Join` frame.
    pub index: u32,
    /// Shared-secret handshake token; must match the coordinator's.
    pub token: String,
    /// Directory for the content-addressed segment cache used when the
    /// corpus directory is unreachable; defaults to a per-user temp
    /// location.
    pub seg_cache: Option<PathBuf>,
    /// Byte budget for the segment cache; least-recently-written
    /// segments beyond it are evicted after each handshake.
    pub seg_cache_budget: u64,
    /// Never open the corpus directory, even if it exists locally —
    /// always announce the cache and fetch missing segments (exercises
    /// the multi-host shipping path on one machine).
    pub no_shared_storage: bool,
    /// Fault injection: report a deliberately wrong plan fingerprint in
    /// the handshake (exercises the coordinator's typed rejection).
    pub corrupt_plan: bool,
    /// Fault injection: die with `exit(9)` upon receiving pass task
    /// number N+1, leaving it unanswered (exercises retry/reassignment).
    pub exit_after_tasks: Option<u64>,
}

/// Parse worker flags (`--socket <path> | --listen <host:port>`, plus
/// `[--index N] [--token T] [--seg-cache DIR] [--seg-cache-budget BYTES]
/// [--no-shared-storage] [--corrupt-plan] [--exit-after-tasks N]`),
/// shared by the `discoverxfd worker` subcommand and the
/// `xfd-cluster-worker` test binary.
pub fn parse_worker_args(args: &[String]) -> Result<WorkerOptions, String> {
    let mut socket: Option<PathBuf> = None;
    let mut listen: Option<String> = None;
    let mut index = 0u32;
    let mut token = String::new();
    let mut seg_cache: Option<PathBuf> = None;
    let mut seg_cache_budget = DEFAULT_SEG_CACHE_BUDGET;
    let mut no_shared_storage = false;
    let mut corrupt_plan = false;
    let mut exit_after_tasks = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let v = it.next().ok_or("--socket needs a path")?;
                socket = Some(PathBuf::from(v));
            }
            "--listen" => {
                let v = it.next().ok_or("--listen needs host:port")?;
                listen = Some(v.clone());
            }
            "--index" => {
                let v = it.next().ok_or("--index needs a number")?;
                index = v.parse().map_err(|_| format!("bad --index '{v}'"))?;
            }
            "--token" => {
                let v = it.next().ok_or("--token needs a value")?;
                token = v.clone();
            }
            "--seg-cache" => {
                let v = it.next().ok_or("--seg-cache needs a directory")?;
                seg_cache = Some(PathBuf::from(v));
            }
            "--seg-cache-budget" => {
                let v = it.next().ok_or("--seg-cache-budget needs a byte count")?;
                seg_cache_budget = v
                    .parse()
                    .map_err(|_| format!("bad --seg-cache-budget '{v}'"))?;
            }
            "--no-shared-storage" => no_shared_storage = true,
            "--corrupt-plan" => corrupt_plan = true,
            "--exit-after-tasks" => {
                let v = it.next().ok_or("--exit-after-tasks needs a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --exit-after-tasks '{v}'"))?;
                exit_after_tasks = Some(n);
            }
            other => return Err(format!("unknown worker option '{other}'")),
        }
    }
    if socket.is_some() == listen.is_some() {
        return Err("exactly one of --socket and --listen is required".into());
    }
    Ok(WorkerOptions {
        socket,
        listen,
        index,
        token,
        seg_cache,
        seg_cache_budget,
        no_shared_storage,
        corrupt_plan,
        exit_after_tasks,
    })
}

/// Work items the reader forwards to the compute thread, in arrival
/// order.
enum Work {
    Encode(u128),
    Push(u128, Vec<u8>),
    Ship(Vec<(u128, Vec<u8>)>),
    Build(Vec<u128>),
    Pass(u64, Vec<u8>),
}

/// Run the worker. With `--socket`, dials the coordinator and serves one
/// session, returning when the coordinator sends `Shutdown` or closes
/// the connection. With `--listen`, binds the TCP address, prints
/// `worker listening on <addr>` to stdout, and serves coordinator
/// sessions forever (one at a time); session failures are reported to
/// stderr and the worker keeps listening.
pub fn run_worker(opts: &WorkerOptions) -> Result<(), ClusterError> {
    match (&opts.socket, &opts.listen) {
        (Some(path), None) => {
            // xfdlint:allow(deadline_discipline, reason = "UnixStream has no connect-with-timeout; a local socket connect cannot hang on a live kernel")
            let stream: Box<dyn Stream> = Box::new(std::os::unix::net::UnixStream::connect(path)?);
            run_session(stream, opts)
        }
        (None, Some(addr)) => {
            let listener = Endpoint::Tcp(addr.clone()).listen()?;
            {
                // The bound address line is the contract scripts parse to
                // learn an ephemeral port; flush so it is visible before
                // the first session blocks.
                use std::io::Write as _;
                let mut stdout = std::io::stdout();
                writeln!(stdout, "worker listening on {}", listener.local_label()).ok();
                stdout.flush().ok();
            }
            loop {
                match listener.accept_stream() {
                    Ok(Some(stream)) => {
                        if let Err(e) = run_session(stream, opts) {
                            eprintln!("worker: session failed: {e}");
                        }
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(e) => {
                        eprintln!("worker: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
        }
        _ => Err(ClusterError::Config(
            "exactly one of --socket and --listen is required".into(),
        )),
    }
}

/// Serve one coordinator session over an established connection. Errors
/// cover only the phase before any work is accepted (handshake, corpus
/// open or segment shipping).
fn run_session(mut reader: Box<dyn Stream>, opts: &WorkerOptions) -> Result<(), ClusterError> {
    let write_half = reader.try_clone_stream()?;
    let (out_tx, out_rx) = channel::<Frame>();
    let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));

    // Handshake: announce ourselves (with our token's digest), receive
    // the job, re-derive the plan fingerprint from our own view and
    // report it back. A silent coordinator cannot wedge us: reads are
    // bounded until we are admitted.
    reader.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok();
    out_tx
        .send(Frame::Join {
            version: PROTOCOL_VERSION,
            index: opts.index,
            auth: join_auth(&opts.token),
        })
        .ok();
    let (plan_fp, auth, corpus_dir, config_bytes) = match read_frame(&mut reader)? {
        Some(Frame::Plan {
            plan_fp,
            auth,
            corpus_dir,
            config,
        }) => (plan_fp, auth, corpus_dir, config),
        // A Shutdown here is the coordinator rejecting our Join (wrong
        // token or version); EOF is it going away. Either ends cleanly.
        Some(Frame::Shutdown) | None => {
            drop(out_tx);
            writer.join().ok();
            return Ok(());
        }
        Some(_) => return Err(ClusterError::Protocol("expected a Plan frame".into())),
    };
    if auth != plan_auth(&opts.token) {
        // The coordinator's token digest is wrong: refuse to serve it.
        out_tx
            .send(Frame::WorkerError {
                message: "plan auth digest mismatch: tokens differ".into(),
            })
            .ok();
        drop(out_tx);
        writer.join().ok();
        return Ok(());
    }
    let config = decode_config(&config_bytes)
        .map_err(|e| ClusterError::Protocol(format!("undecodable config: {e}")))?;
    let dir = PathBuf::from(&corpus_dir);
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| ClusterError::Config(format!("bad corpus dir '{corpus_dir}'")))?
        .to_string();

    // Shared storage first; otherwise (or when forced) announce our
    // segment cache and let the coordinator ship what it lacks.
    let shared = if opts.no_shared_storage {
        None
    } else {
        dir.parent()
            .map(|root| CorpusStore::new(root).open_readonly(&name))
            .and_then(Result::ok)
    };
    let mut handle = match shared {
        Some(h) => h,
        None => {
            let cache_dir = opts
                .seg_cache
                .clone()
                .unwrap_or_else(|| std::env::temp_dir().join("xfd-worker-segcache"));
            open_shipped(
                &mut reader,
                &out_tx,
                &name,
                &cache_dir,
                opts.seg_cache_budget,
            )?
        }
    };
    let plan = handle.plan(&config);
    let mut my_fp = plan.plan_fp();
    if opts.corrupt_plan {
        my_fp ^= 0xDEAD_BEEF;
    }
    out_tx.send(Frame::PlanAck { plan_fp: my_fp }).ok();
    if my_fp != plan_fp {
        // Rejected: wait for the coordinator's Shutdown (or EOF) so the
        // frame above is not lost to a racing close.
        wait_for_shutdown(&mut reader);
        drop(out_tx);
        writer.join().ok();
        return Ok(());
    }
    reader.set_read_timeout(None).ok();

    // Admitted: hand the corpus to the compute thread and keep reading.
    let (work_tx, work_rx) = channel::<Work>();
    let compute_out = out_tx.clone();
    let exit_after = opts.exit_after_tasks;
    let compute = std::thread::spawn(move || {
        compute_loop(handle, config, plan, work_rx, compute_out, exit_after)
    });
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Ping)) => {
                out_tx.send(Frame::Pong).ok();
            }
            Ok(Some(Frame::Encode { digest })) => {
                work_tx.send(Work::Encode(digest)).ok();
            }
            Ok(Some(Frame::Push { digest, bytes })) => {
                work_tx.send(Work::Push(digest, bytes)).ok();
            }
            Ok(Some(Frame::ForestShip { partials })) => {
                work_tx.send(Work::Ship(partials)).ok();
            }
            Ok(Some(Frame::Build { digests, .. })) => {
                work_tx.send(Work::Build(digests)).ok();
            }
            Ok(Some(Frame::Pass { task_id, task })) => {
                work_tx.send(Work::Pass(task_id, task)).ok();
            }
            Ok(Some(Frame::Shutdown)) | Ok(None) => break,
            Ok(Some(_)) => {
                out_tx
                    .send(Frame::WorkerError {
                        message: "unexpected frame from coordinator".into(),
                    })
                    .ok();
            }
            Err(_) => break,
        }
    }
    drop(work_tx);
    compute.join().ok();
    drop(out_tx);
    writer.join().ok();
    Ok(())
}

/// Path of one cached segment.
fn seg_cache_path(cache_dir: &Path, digest: u128) -> PathBuf {
    cache_dir.join(format!("{digest:032x}.seg"))
}

/// Digests present in the local segment cache (by filename; bytes are
/// verified against the digest when actually used).
fn scan_cache(cache_dir: &Path) -> Vec<u128> {
    let Ok(entries) = std::fs::read_dir(cache_dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("seg") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if stem.len() == 32 {
            if let Ok(d) = u128::from_str_radix(stem, 16) {
                out.push(d);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Persist one verified shipped segment (write-then-rename, so a crash
/// mid-write never leaves a plausible-looking partial file).
fn store_cached(cache_dir: &Path, digest: u128, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = cache_dir.join(format!("{digest:032x}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, seg_cache_path(cache_dir, digest))
}

/// Enforce the cache byte budget: drop least-recently-written segments
/// until under budget, never touching the current manifest's segments.
fn evict_cache(cache_dir: &Path, budget: u64, keep: &HashSet<u128>) {
    let Ok(entries) = std::fs::read_dir(cache_dir) else {
        return;
    };
    let mut files: Vec<(std::time::SystemTime, u64, PathBuf, Option<u128>)> = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("seg") {
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            continue;
        };
        let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        let digest = path
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|s| s.len() == 32)
            .and_then(|s| u128::from_str_radix(s, 16).ok());
        files.push((mtime, meta.len(), path, digest));
    }
    let mut total: u64 = files.iter().map(|f| f.1).sum();
    files.sort_by_key(|f| f.0);
    for (_, len, path, digest) in files {
        if total <= budget {
            break;
        }
        if digest.is_some_and(|d| keep.contains(&d)) {
            continue;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
        }
    }
}

/// Content-addressed segment shipping, worker side: announce what the
/// cache holds, receive the manifest plus the missing segments (each
/// verified against its digest before being trusted or cached), then
/// assemble a read-only corpus handle identical in document view to the
/// coordinator's.
fn open_shipped(
    reader: &mut Box<dyn Stream>,
    out: &Sender<Frame>,
    name: &str,
    cache_dir: &Path,
    budget: u64,
) -> Result<CorpusHandle, ClusterError> {
    std::fs::create_dir_all(cache_dir)?;
    let cached_list = scan_cache(cache_dir);
    out.send(Frame::SegHave {
        digests: cached_list.clone(),
    })
    .ok();
    let cached: HashSet<u128> = cached_list.into_iter().collect();
    let manifest = match read_frame(reader)? {
        Some(Frame::SegManifest { digests }) => digests,
        Some(_) => {
            return Err(ClusterError::Protocol(
                "expected a SegManifest frame".into(),
            ))
        }
        None => {
            return Err(ClusterError::Protocol(
                "coordinator closed during segment shipping".into(),
            ))
        }
    };
    let mut distinct = Vec::new();
    let mut seen = HashSet::new();
    for &d in &manifest {
        if seen.insert(d) {
            distinct.push(d);
        }
    }
    let mut missing: HashSet<u128> = distinct
        .iter()
        .copied()
        .filter(|d| !cached.contains(d))
        .collect();
    let mut received: HashMap<u128, Vec<u8>> = HashMap::new();
    while !missing.is_empty() {
        match read_frame(reader)? {
            Some(Frame::SegData { digest, bytes }) => {
                if xfd_hash::digest_bytes(&bytes) != digest {
                    return Err(ClusterError::Protocol(format!(
                        "shipped segment {digest:032x} failed digest verification"
                    )));
                }
                if missing.remove(&digest) {
                    store_cached(cache_dir, digest, &bytes)?;
                    received.insert(digest, bytes);
                }
            }
            Some(_) => {
                return Err(ClusterError::Protocol(
                    "expected a SegData frame during shipping".into(),
                ))
            }
            None => {
                return Err(ClusterError::Protocol(
                    "coordinator closed mid-shipping".into(),
                ))
            }
        }
    }
    // Assemble the document view in manifest order. Cache hits are read
    // back and re-verified — a corrupted cache file is evicted and the
    // session fails, so the retry fetches it fresh.
    let mut trees: HashMap<u128, DataTree> = HashMap::new();
    for &digest in &distinct {
        let bytes = match received.remove(&digest) {
            Some(b) => b,
            None => {
                let path = seg_cache_path(cache_dir, digest);
                let b = std::fs::read(&path)?;
                if xfd_hash::digest_bytes(&b) != digest {
                    std::fs::remove_file(&path).ok();
                    return Err(ClusterError::Protocol(format!(
                        "cached segment {digest:032x} failed digest verification"
                    )));
                }
                b
            }
        };
        let tree = decode_tree(&bytes).map_err(|e| {
            ClusterError::Protocol(format!(
                "shipped segment {digest:032x} failed to decode: {e}"
            ))
        })?;
        trees.insert(digest, tree);
    }
    let mut docs = Vec::with_capacity(manifest.len());
    for &d in &manifest {
        let Some(tree) = trees.get(&d) else {
            return Err(ClusterError::Protocol(
                "manifest digest unresolved after shipping".into(),
            ));
        };
        docs.push((d, tree.clone()));
    }
    evict_cache(cache_dir, budget, &seen);
    Ok(CorpusHandle::from_shipped(name, cache_dir, docs))
}

/// Drain frames until `Shutdown` or EOF (post-rejection limbo).
fn wait_for_shutdown(reader: &mut Box<dyn Stream>) {
    reader.set_read_timeout(Some(Duration::from_secs(30))).ok();
    loop {
        match read_frame(reader) {
            Ok(Some(Frame::Shutdown)) | Ok(None) | Err(_) => break,
            Ok(Some(_)) => {}
        }
    }
}

/// Sole owner of the connection's write half: serialize whole frames
/// from the channel, stop on the first failed write (coordinator gone).
fn writer_loop(mut stream: Box<dyn Stream>, rx: Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
    }
}

/// Sole owner of the corpus handle: work the queue in FIFO order. Every
/// request gets an answer frame (possibly an empty one meaning "could
/// not"), so the coordinator never waits on silence from a live worker.
fn compute_loop(
    mut handle: CorpusHandle,
    config: DiscoveryConfig,
    plan: CorpusPlan,
    work: Receiver<Work>,
    out: Sender<Frame>,
    exit_after: Option<u64>,
) {
    let map = SchemaMap::new(plan.schema().as_ref());
    let plan_fp = plan.plan_fp();
    let mut prepared: Option<PreparedCorpus> = None;
    let mut passes_done = 0u64;
    while let Ok(item) = work.recv() {
        match item {
            Work::Encode(digest) => {
                let built = handle.tree_by_digest(digest).map(|tree| {
                    let partial = build_partial(tree, &map, &config.encode);
                    let bytes = encode_partial(&partial);
                    (partial, bytes)
                });
                let bytes = match built {
                    Some((partial, bytes)) => {
                        handle.store_partial(plan_fp, digest, partial);
                        bytes
                    }
                    // Our view lacks that segment (corpus changed under
                    // us): an empty Partial tells the coordinator to
                    // build it locally.
                    None => Vec::new(),
                };
                out.send(Frame::Partial { digest, bytes }).ok();
            }
            Work::Push(digest, bytes) => {
                // A prebuilt partial from the coordinator; a block that
                // fails to decode is simply not cached (we rebuild from
                // the tree during Build instead).
                if let Ok(partial) = xfd_relation::decode_partial(&bytes, &map, &config.encode) {
                    handle.store_partial(plan_fp, digest, partial);
                }
            }
            Work::Ship(partials) => {
                // The batched form of Push: the coordinator's whole
                // partial set in one frame.
                for (digest, bytes) in partials {
                    if let Ok(partial) = xfd_relation::decode_partial(&bytes, &map, &config.encode)
                    {
                        handle.store_partial(plan_fp, digest, partial);
                    }
                }
            }
            Work::Build(digests) => {
                if digests != handle.doc_digests() {
                    // Different document view — our forest could never
                    // match. Ack with fingerprint 0 so the coordinator
                    // drops us instead of waiting.
                    out.send(Frame::ForestAck { forest_fp: 0 }).ok();
                    continue;
                }
                let p = handle.merged_forest(&config, &plan);
                let my_fp = forest_fingerprint(p.forest());
                prepared = Some(p);
                out.send(Frame::ForestAck { forest_fp: my_fp }).ok();
            }
            Work::Pass(task_id, bytes) => {
                if exit_after.is_some_and(|limit| passes_done >= limit) {
                    // Fault injection: die hard with the task unanswered,
                    // exactly like a crash mid-pass.
                    std::process::exit(9);
                }
                passes_done += 1;
                let output = match (WaveTask::decode_bytes(&bytes), prepared.as_ref()) {
                    (Ok(task), Some(p)) if task_in_bounds(p.forest(), &task) => {
                        run_task(p.forest(), &config, &task)
                    }
                    // No forest yet or an undecodable/out-of-range task:
                    // an empty answer routes it back to local compute.
                    _ => Vec::new(),
                };
                out.send(Frame::TaskResult { task_id, output }).ok();
            }
        }
    }
}
