//! The worker side: connect to the coordinator's socket, re-derive the
//! plan from a read-only view of the corpus, then serve encode / merge /
//! pass requests until `Shutdown` or EOF.
//!
//! Three threads, no shared locks:
//!
//! * the **main** thread reads frames and dispatches — heartbeats are
//!   answered here so liveness holds even while a merge is running;
//! * a **compute** thread owns the corpus handle and works the queue in
//!   FIFO order;
//! * a **writer** thread owns the write half of the socket, serializing
//!   whole frames from one channel (answers and `Pong`s interleave at
//!   frame boundaries, never inside one).

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

use discoverxfd::{decode_config, run_task, task_in_bounds, DiscoveryConfig, WaveTask};
use xfd_corpus::{CorpusHandle, CorpusPlan, CorpusStore, PreparedCorpus};
use xfd_relation::{build_partial, encode_partial, forest_fingerprint};
use xfd_schema::SchemaMap;

use crate::frame::{read_frame, write_frame, Frame, PROTOCOL_VERSION};
use crate::ClusterError;

/// How a worker process was invoked.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The coordinator's Unix socket.
    pub socket: PathBuf,
    /// This worker's index, echoed in the `Join` frame.
    pub index: u32,
    /// Fault injection: report a deliberately wrong plan fingerprint in
    /// the handshake (exercises the coordinator's typed rejection).
    pub corrupt_plan: bool,
    /// Fault injection: die with `exit(9)` upon receiving pass task
    /// number N+1, leaving it unanswered (exercises retry/reassignment).
    pub exit_after_tasks: Option<u64>,
}

/// Parse worker flags (`--socket <path> [--index N] [--corrupt-plan]
/// [--exit-after-tasks N]`), shared by the `discoverxfd worker`
/// subcommand and the `xfd-cluster-worker` test binary.
pub fn parse_worker_args(args: &[String]) -> Result<WorkerOptions, String> {
    let mut socket: Option<PathBuf> = None;
    let mut index = 0u32;
    let mut corrupt_plan = false;
    let mut exit_after_tasks = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let v = it.next().ok_or("--socket needs a path")?;
                socket = Some(PathBuf::from(v));
            }
            "--index" => {
                let v = it.next().ok_or("--index needs a number")?;
                index = v.parse().map_err(|_| format!("bad --index '{v}'"))?;
            }
            "--corrupt-plan" => corrupt_plan = true,
            "--exit-after-tasks" => {
                let v = it.next().ok_or("--exit-after-tasks needs a number")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --exit-after-tasks '{v}'"))?;
                exit_after_tasks = Some(n);
            }
            other => return Err(format!("unknown worker option '{other}'")),
        }
    }
    Ok(WorkerOptions {
        socket: socket.ok_or("--socket is required")?,
        index,
        corrupt_plan,
        exit_after_tasks,
    })
}

/// Work items the reader forwards to the compute thread, in arrival
/// order.
enum Work {
    Encode(u128),
    Push(u128, Vec<u8>),
    Build(Vec<u128>),
    Pass(u64, Vec<u8>),
}

/// Run the worker protocol to completion. Returns when the coordinator
/// sends `Shutdown` or closes the socket; errors cover only the phase
/// before any work is accepted (connect, handshake, corpus open).
pub fn run_worker(opts: &WorkerOptions) -> Result<(), ClusterError> {
    let mut reader = std::os::unix::net::UnixStream::connect(&opts.socket)?;
    let write_half = reader.try_clone()?;
    let (out_tx, out_rx) = channel::<Frame>();
    let writer = std::thread::spawn(move || writer_loop(write_half, out_rx));

    // Handshake: announce ourselves, receive the job, re-derive the plan
    // fingerprint from our own read-only view and report it back.
    out_tx
        .send(Frame::Join {
            version: PROTOCOL_VERSION,
            index: opts.index,
        })
        .ok();
    let (plan_fp, corpus_dir, config_bytes) = match read_frame(&mut reader)? {
        Some(Frame::Plan {
            plan_fp,
            corpus_dir,
            config,
        }) => (plan_fp, corpus_dir, config),
        Some(_) => return Err(ClusterError::Protocol("expected a Plan frame".into())),
        None => return Ok(()), // coordinator went away before assigning anything
    };
    let config = decode_config(&config_bytes)
        .map_err(|e| ClusterError::Protocol(format!("undecodable config: {e}")))?;
    let dir = PathBuf::from(&corpus_dir);
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| ClusterError::Config(format!("bad corpus dir '{corpus_dir}'")))?
        .to_string();
    let root = dir
        .parent()
        .ok_or_else(|| ClusterError::Config(format!("corpus dir '{corpus_dir}' has no parent")))?
        .to_path_buf();
    let mut handle = CorpusStore::new(root).open_readonly(&name)?;
    let plan = handle.plan(&config);
    let mut my_fp = plan.plan_fp();
    if opts.corrupt_plan {
        my_fp ^= 0xDEAD_BEEF;
    }
    out_tx.send(Frame::PlanAck { plan_fp: my_fp }).ok();
    if my_fp != plan_fp {
        // Rejected: wait for the coordinator's Shutdown (or EOF) so the
        // frame above is not lost to a racing close.
        wait_for_shutdown(&mut reader);
        drop(out_tx);
        writer.join().ok();
        return Ok(());
    }

    // Admitted: hand the corpus to the compute thread and keep reading.
    let (work_tx, work_rx) = channel::<Work>();
    let compute_out = out_tx.clone();
    let exit_after = opts.exit_after_tasks;
    let compute = std::thread::spawn(move || {
        compute_loop(handle, config, plan, work_rx, compute_out, exit_after)
    });
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Ping)) => {
                out_tx.send(Frame::Pong).ok();
            }
            Ok(Some(Frame::Encode { digest })) => {
                work_tx.send(Work::Encode(digest)).ok();
            }
            Ok(Some(Frame::Push { digest, bytes })) => {
                work_tx.send(Work::Push(digest, bytes)).ok();
            }
            Ok(Some(Frame::Build { digests, .. })) => {
                work_tx.send(Work::Build(digests)).ok();
            }
            Ok(Some(Frame::Pass { task_id, task })) => {
                work_tx.send(Work::Pass(task_id, task)).ok();
            }
            Ok(Some(Frame::Shutdown)) | Ok(None) => break,
            Ok(Some(_)) => {
                out_tx
                    .send(Frame::WorkerError {
                        message: "unexpected frame from coordinator".into(),
                    })
                    .ok();
            }
            Err(_) => break,
        }
    }
    drop(work_tx);
    compute.join().ok();
    drop(out_tx);
    writer.join().ok();
    Ok(())
}

/// Drain frames until `Shutdown` or EOF (post-rejection limbo).
fn wait_for_shutdown(reader: &mut std::os::unix::net::UnixStream) {
    reader.set_read_timeout(Some(Duration::from_secs(30))).ok();
    loop {
        match read_frame(reader) {
            Ok(Some(Frame::Shutdown)) | Ok(None) | Err(_) => break,
            Ok(Some(_)) => {}
        }
    }
}

/// Sole owner of the socket's write half: serialize whole frames from
/// the channel, stop on the first failed write (coordinator gone).
fn writer_loop(mut stream: std::os::unix::net::UnixStream, rx: Receiver<Frame>) {
    while let Ok(frame) = rx.recv() {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
    }
}

/// Sole owner of the corpus handle: work the queue in FIFO order. Every
/// request gets an answer frame (possibly an empty one meaning "could
/// not"), so the coordinator never waits on silence from a live worker.
fn compute_loop(
    mut handle: CorpusHandle,
    config: DiscoveryConfig,
    plan: CorpusPlan,
    work: Receiver<Work>,
    out: Sender<Frame>,
    exit_after: Option<u64>,
) {
    let map = SchemaMap::new(plan.schema().as_ref());
    let plan_fp = plan.plan_fp();
    let mut prepared: Option<PreparedCorpus> = None;
    let mut passes_done = 0u64;
    while let Ok(item) = work.recv() {
        match item {
            Work::Encode(digest) => {
                let built = handle.tree_by_digest(digest).map(|tree| {
                    let partial = build_partial(tree, &map, &config.encode);
                    let bytes = encode_partial(&partial);
                    (partial, bytes)
                });
                let bytes = match built {
                    Some((partial, bytes)) => {
                        handle.store_partial(plan_fp, digest, partial);
                        bytes
                    }
                    // Our view lacks that segment (corpus changed under
                    // us): an empty Partial tells the coordinator to
                    // build it locally.
                    None => Vec::new(),
                };
                out.send(Frame::Partial { digest, bytes }).ok();
            }
            Work::Push(digest, bytes) => {
                // A prebuilt partial from the coordinator; a block that
                // fails to decode is simply not cached (we rebuild from
                // the tree during Build instead).
                if let Ok(partial) = xfd_relation::decode_partial(&bytes, &map, &config.encode) {
                    handle.store_partial(plan_fp, digest, partial);
                }
            }
            Work::Build(digests) => {
                if digests != handle.doc_digests() {
                    // Different document view — our forest could never
                    // match. Ack with fingerprint 0 so the coordinator
                    // drops us instead of waiting.
                    out.send(Frame::ForestAck { forest_fp: 0 }).ok();
                    continue;
                }
                let p = handle.merged_forest(&config, &plan);
                let my_fp = forest_fingerprint(p.forest());
                prepared = Some(p);
                out.send(Frame::ForestAck { forest_fp: my_fp }).ok();
            }
            Work::Pass(task_id, bytes) => {
                if exit_after.is_some_and(|limit| passes_done >= limit) {
                    // Fault injection: die hard with the task unanswered,
                    // exactly like a crash mid-pass.
                    std::process::exit(9);
                }
                passes_done += 1;
                let output = match (WaveTask::decode_bytes(&bytes), prepared.as_ref()) {
                    (Ok(task), Some(p)) if task_in_bounds(p.forest(), &task) => {
                        run_task(p.forest(), &config, &task)
                    }
                    // No forest yet or an undecodable/out-of-range task:
                    // an empty answer routes it back to local compute.
                    _ => Vec::new(),
                };
                out.send(Frame::TaskResult { task_id, output }).ok();
            }
        }
    }
}
