//! Property tests for the `TreeTuple` segment codec: random trees round-trip
//! exactly, and random/mutated byte blocks never panic the decoder.

use proptest::prelude::*;
use xfd_relation::treetuple::{decode_tree, encode_tree, trees_equal, DecodeError};
use xfd_xml::{DataTree, NodeId};

/// Build a tree from a flat spec: each entry attaches a node to an already
/// existing one (`back` picks how far back in creation order), with a label
/// drawn from a small alphabet and an optional value from an open alphabet.
fn build_tree(root_label: &str, spec: &[(usize, u8, Option<String>)]) -> DataTree {
    let mut tree = DataTree::with_root(root_label);
    let mut nodes = vec![NodeId(0)];
    for (back, label_pick, value) in spec {
        let parent = nodes[nodes.len() - 1 - back % nodes.len()];
        let label = ["a", "b", "c", "item", "名前"][*label_pick as usize % 5];
        let node = tree.add_child(parent, label);
        if let Some(v) = value {
            tree.set_value(node, v);
        }
        nodes.push(node);
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn random_trees_round_trip(
        root in "[a-z]{1,8}",
        spec in proptest::collection::vec(
            (0usize..10_000, 0u8..255, proptest::option::of(".{0,12}")),
            0..64,
        ),
    ) {
        let tree = build_tree(&root, &spec);
        let bytes = encode_tree(&tree);
        let back = decode_tree(&bytes).expect("encoded tree must decode");
        prop_assert!(trees_equal(&tree, &back));
        // Node keys are positional, so re-encoding is byte-identical.
        prop_assert_eq!(encode_tree(&back), bytes);
    }

    #[test]
    fn truncated_segments_never_decode(
        spec in proptest::collection::vec(
            (0usize..10_000, 0u8..255, proptest::option::of("[a-z]{0,4}")),
            0..16,
        ),
        cut_pick in 0usize..10_000,
    ) {
        let tree = build_tree("r", &spec);
        let bytes = encode_tree(&tree);
        let cut = cut_pick % bytes.len();
        prop_assert!(decode_tree(&bytes[..cut]).is_err());
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..255, 0..256)) {
        // Errors are fine; panics and non-error garbage trees are not.
        if let Ok(tree) = decode_tree(&bytes) {
            prop_assert!(tree.node_count() >= 1);
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        spec in proptest::collection::vec(
            (0usize..10_000, 0u8..255, proptest::option::of("[a-z]{0,4}")),
            0..16,
        ),
        pos_pick in 0usize..10_000,
        flip in 1u8..255,
    ) {
        let tree = build_tree("r", &spec);
        let mut bytes = encode_tree(&tree);
        let pos = pos_pick % bytes.len();
        bytes[pos] ^= flip;
        let _ = decode_tree(&bytes);
    }
}

#[test]
fn empty_segment_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"XTT1");
    bytes.extend_from_slice(&0u32.to_le_bytes()); // no strings
    bytes.extend_from_slice(&0u32.to_le_bytes()); // no nodes
    assert_eq!(decode_tree(&bytes).err(), Some(DecodeError::Empty));
}
