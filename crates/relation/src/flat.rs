//! The flat representation (Figure 5): the fully unnested single relation
//! of tree tuples in the sense of Arenas & Libkin \[3\].
//!
//! Every schema element contributes one column; each row is a *tree tuple*,
//! picking exactly one data node per schema element (or ⊥ when missing).
//! Simple elements contribute their value, complex elements their node key
//! (matching the `1, 10, WA, 12, 13, Borders, ...` rows of Figure 5).
//!
//! Rows multiply across parallel set elements — the scaling pathology
//! Section 4.1 calls out ("if each book had two review elements, the total
//! number of tuples would double"). [`flatten`] therefore takes a row cap
//! and fails with [`FlatError::RowLimit`] instead of exhausting memory.

use std::collections::HashMap;
use std::fmt;

use xfd_schema::{ElemId, Schema, SchemaMap};
use xfd_xml::{DataTree, NodeId};

use crate::dictionary::Dictionary;

/// Why flattening failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatError {
    /// The cartesian expansion exceeded the row cap.
    RowLimit {
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::RowLimit { cap } => {
                write!(f, "flat representation exceeds the row cap of {cap} tuples")
            }
        }
    }
}

impl std::error::Error for FlatError {}

/// The single unnested relation.
#[derive(Debug)]
pub struct FlatRelation {
    /// Column names: absolute schema paths, in schema DFS order.
    pub column_names: Vec<String>,
    /// The schema element behind each column.
    pub column_elems: Vec<ElemId>,
    /// Column-major cells: `cells[col][row]`; `None` is ⊥.
    pub cells: Vec<Vec<Option<u64>>>,
    /// Shared dictionary for the simple-value cells.
    pub dictionary: Dictionary,
    n_rows: usize,
}

impl FlatRelation {
    /// Number of rows (tree tuples).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (schema elements).
    pub fn n_cols(&self) -> usize {
        self.column_names.len()
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.n_rows * self.n_cols()
    }

    /// Column index by absolute path string.
    pub fn column_by_path(&self, path: &str) -> Option<usize> {
        self.column_names.iter().position(|n| n == path)
    }

    /// The cells of one column.
    pub fn column_cells(&self, col: usize) -> &[Option<u64>] {
        &self.cells[col]
    }
}

/// Flatten `tree` into the single relation of tree tuples, refusing to
/// produce more than `max_rows` rows.
pub fn flatten(
    tree: &DataTree,
    schema: &Schema,
    max_rows: usize,
) -> Result<FlatRelation, FlatError> {
    let map = SchemaMap::new(schema);
    let columns: Vec<ElemId> = map.elements().iter().map(|e| e.id).collect();
    let col_of: HashMap<ElemId, usize> = columns.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let mut child_elem: HashMap<(ElemId, &str), ElemId> = HashMap::new();
    for e in map.elements() {
        if let Some(parent) = e.parent {
            child_elem.insert((parent, map.get(e.id).label.as_str()), e.id);
        }
    }

    let mut dictionary = Dictionary::new();
    let width = columns.len();
    let ctx = FlattenCtx {
        tree,
        map: &map,
        col_of: &col_of,
        child_elem: &child_elem,
        width,
        max_rows,
    };
    let rows = ctx.rows_for(tree.root(), map.root(), &mut dictionary)?;

    let n_rows = rows.len();
    let mut cells: Vec<Vec<Option<u64>>> = vec![Vec::with_capacity(n_rows); width];
    for row in rows {
        for (c, v) in row.into_iter().enumerate() {
            cells[c].push(v);
        }
    }
    Ok(FlatRelation {
        column_names: map.elements().iter().map(|e| e.path.to_string()).collect(),
        column_elems: columns,
        cells,
        dictionary,
        n_rows,
    })
}

struct FlattenCtx<'a> {
    tree: &'a DataTree,
    map: &'a SchemaMap,
    col_of: &'a HashMap<ElemId, usize>,
    child_elem: &'a HashMap<(ElemId, &'a str), ElemId>,
    width: usize,
    max_rows: usize,
}

type Row = Vec<Option<u64>>;

impl FlattenCtx<'_> {
    /// All tree-tuple fragments for the subtree at `node` (columns outside
    /// the subtree stay ⊥ and are merged by the caller).
    fn rows_for(
        &self,
        node: NodeId,
        elem: ElemId,
        dictionary: &mut Dictionary,
    ) -> Result<Vec<Row>, FlatError> {
        let mut base: Row = vec![None; self.width];
        let col = self.col_of[&elem];
        let e = self.map.get(elem);
        base[col] = if e.is_simple {
            self.tree.value(node).map(|v| dictionary.intern_str(v))
        } else {
            Some(u64::from(node.0))
        };

        let mut result = vec![base];
        // Group data children by schema element, preserving schema order.
        let mut instances: HashMap<ElemId, Vec<NodeId>> = HashMap::new();
        for &c in self.tree.children(node) {
            if let Some(&ce) = self.child_elem.get(&(elem, self.tree.label(c))) {
                instances.entry(ce).or_default().push(c);
            }
        }
        for &ce in self.map.children_of(elem) {
            let Some(insts) = instances.get(&ce) else {
                continue; // missing element: its subtree columns stay ⊥
            };
            let mut fragments: Vec<Row> = Vec::new();
            for &inst in insts {
                fragments.extend(self.rows_for(inst, ce, dictionary)?);
            }
            // Cartesian merge.
            if result.len().saturating_mul(fragments.len()) > self.max_rows {
                return Err(FlatError::RowLimit { cap: self.max_rows });
            }
            let mut merged = Vec::with_capacity(result.len() * fragments.len());
            for r in &result {
                for f in &fragments {
                    let mut row = r.clone();
                    for (i, v) in f.iter().enumerate() {
                        if v.is_some() {
                            debug_assert!(row[i].is_none(), "disjoint column ranges");
                            row[i] = *v;
                        }
                    }
                    merged.push(row);
                }
            }
            result = merged;
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::tests::warehouse;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    #[test]
    fn warehouse_flattens_to_figure_5_shape() {
        let t = warehouse();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        // One row per author (books with 1 author → 1 row, with 2 → 2):
        // book(Post):1, book(R,G):2, book(R,G):2, book(R,G):2 = 7 rows.
        assert_eq!(flat.n_rows(), 7);
        assert_eq!(flat.n_cols(), 12);
        let author = flat
            .column_by_path("/warehouse/state/store/book/author")
            .unwrap();
        let authors: Vec<&str> = flat
            .column_cells(author)
            .iter()
            .map(|c| flat.dictionary.resolve_str(c.unwrap()))
            .collect();
        assert_eq!(authors.iter().filter(|a| **a == "Ramakrishnan").count(), 3);
        assert_eq!(authors.iter().filter(|a| **a == "Gehrke").count(), 3);
        assert_eq!(authors.iter().filter(|a| **a == "Post").count(), 1);
    }

    #[test]
    fn titles_repeat_per_author_redundantly() {
        // The flat representation stores title once per author — the
        // redundancy Section 4.1 attributes to it.
        let t = warehouse();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        let title = flat
            .column_by_path("/warehouse/state/store/book/title")
            .unwrap();
        let dbms = flat
            .column_cells(title)
            .iter()
            .filter(|c| {
                c.map(|v| flat.dictionary.resolve_str(v) == "DBMS")
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(dbms, 6, "DBMS title appears once per (book, author) pair");
    }

    #[test]
    fn parallel_sets_multiply_rows() {
        // 2 a's and 3 b's under one parent → 6 rows.
        let t = parse("<r><a>1</a><a>2</a><b>x</b><b>y</b><b>z</b></r>").unwrap();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        assert_eq!(flat.n_rows(), 6);
    }

    #[test]
    fn missing_elements_are_bottom() {
        let t = parse("<r><item><x>1</x></item><item><y>2</y></item></r>").unwrap();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        assert_eq!(flat.n_rows(), 2);
        let x = flat.column_by_path("/r/item/x").unwrap();
        let y = flat.column_by_path("/r/item/y").unwrap();
        assert_eq!(
            flat.column_cells(x).iter().filter(|c| c.is_none()).count(),
            1
        );
        assert_eq!(
            flat.column_cells(y).iter().filter(|c| c.is_none()).count(),
            1
        );
    }

    #[test]
    fn complex_columns_hold_node_keys() {
        let t = warehouse();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        let contact = flat
            .column_by_path("/warehouse/state/store/contact")
            .unwrap();
        let distinct: std::collections::HashSet<_> =
            flat.column_cells(contact).iter().flatten().collect();
        assert_eq!(distinct.len(), 3, "three stores → three contact node keys");
    }

    #[test]
    fn row_cap_is_enforced() {
        let t = parse("<r><a>1</a><a>2</a><a>3</a><b>x</b><b>y</b><b>z</b></r>").unwrap();
        let s = infer_schema(&t);
        assert_eq!(
            flatten(&t, &s, 8).unwrap_err(),
            FlatError::RowLimit { cap: 8 }
        );
        assert!(flatten(&t, &s, 9).is_ok());
    }

    #[test]
    fn row_count_is_product_of_parallel_set_cardinalities() {
        // Deeper: each of 2 items has 2 u's and 2 v's → per item 4 rows → 8.
        let t = parse(
            "<r><item><u>1</u><u>2</u><v>a</v><v>b</v></item>\
                <item><u>3</u><u>4</u><v>c</v><v>d</v></item></r>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let flat = flatten(&t, &s, 1_000_000).unwrap();
        assert_eq!(flat.n_rows(), 8);
    }
}
