//! Value interning.
//!
//! Partition construction only needs *equality* of cell values, so cells
//! store `u64` identifiers and the dictionary owns each distinct string (or
//! multiset) once. Identifiers are dense and deterministic (insertion
//! order), which keeps runs reproducible.

use xfd_hash::FxHashMap;

/// Interns strings and multisets of `u64` identifiers into dense `u64` ids.
///
/// String ids and multiset ids live in separate namespaces; a column only
/// ever holds ids from one namespace, so they never mix.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    // Every cell of every tuple passes through these maps during
    // encoding; the deterministic multiply-rotate hasher keeps that
    // cheap and reproducible.
    strings: FxHashMap<Box<str>, u64>,
    string_list: Vec<Box<str>>,
    multisets: FxHashMap<Box<[u64]>, u64>,
    multiset_list: Vec<Box<[u64]>>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern a string value.
    pub fn intern_str(&mut self, s: &str) -> u64 {
        if let Some(&id) = self.strings.get(s) {
            return id;
        }
        let id = self.string_list.len() as u64;
        let boxed: Box<str> = s.into();
        self.string_list.push(boxed.clone());
        self.strings.insert(boxed, id);
        id
    }

    /// Resolve a string id.
    pub fn resolve_str(&self, id: u64) -> &str {
        &self.string_list[id as usize]
    }

    /// Intern a multiset of ids. `elems` is sorted internally, so callers
    /// may pass elements in any order; equal multisets (with multiplicity)
    /// receive equal ids.
    pub fn intern_multiset(&mut self, mut elems: Vec<u64>) -> u64 {
        elems.sort_unstable();
        self.intern_sequence(elems)
    }

    /// Intern a *sequence* of ids: order-sensitive (the `OrderMode::Ordered`
    /// variant of set-valued columns). Shares the multiset namespace —
    /// callers must not mix ordered and unordered cells in one column.
    pub fn intern_sequence(&mut self, elems: Vec<u64>) -> u64 {
        let key: Box<[u64]> = elems.into_boxed_slice();
        if let Some(&id) = self.multisets.get(&key) {
            return id;
        }
        let id = self.multiset_list.len() as u64;
        self.multiset_list.push(key.clone());
        self.multisets.insert(key, id);
        id
    }

    /// Resolve a multiset id to its sorted elements.
    pub fn resolve_multiset(&self, id: u64) -> &[u64] {
        &self.multiset_list[id as usize]
    }

    /// Number of distinct strings.
    pub fn num_strings(&self) -> usize {
        self.string_list.len()
    }

    /// Number of distinct multisets.
    pub fn num_multisets(&self) -> usize {
        self.multiset_list.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_intern_idempotently() {
        let mut d = Dictionary::new();
        let a = d.intern_str("DBMS");
        let b = d.intern_str("DBMS");
        let c = d.intern_str("dbms");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.resolve_str(a), "DBMS");
        assert_eq!(d.num_strings(), 2);
    }

    #[test]
    fn multisets_are_order_insensitive_but_multiplicity_sensitive() {
        let mut d = Dictionary::new();
        let ab = d.intern_multiset(vec![1, 2]);
        let ba = d.intern_multiset(vec![2, 1]);
        let aab = d.intern_multiset(vec![1, 1, 2]);
        let empty = d.intern_multiset(vec![]);
        assert_eq!(ab, ba);
        assert_ne!(ab, aab);
        assert_ne!(ab, empty);
        assert_eq!(d.resolve_multiset(aab), &[1, 1, 2]);
        assert_eq!(d.num_multisets(), 3);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut d = Dictionary::new();
        let s = d.intern_str("x");
        let m = d.intern_multiset(vec![]);
        // Both are 0 — separate namespaces by design.
        assert_eq!(s, 0);
        assert_eq!(m, 0);
    }
}
