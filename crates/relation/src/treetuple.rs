//! `TreeTuple` segments: a compact binary codec for [`DataTree`]s.
//!
//! The corpus store persists each ingested document as one *segment*: a
//! self-contained block holding a local string table (the document's
//! value-dictionary delta — exactly the distinct labels and values it
//! uses, in first-use order) followed by the tree tuples, one fixed-width
//! record per node in pre-order. Decoding replays the records through
//! [`DataTree::add_child`], which reassigns the same sequential pre-order
//! node keys, so `decode(encode(t))` reproduces `t` exactly: labels,
//! values, parent edges, sibling order and node ids.
//!
//! Layout (all integers little-endian `u32`):
//!
//! ```text
//! magic "XTT1"
//! n_strings, then per string: byte length + UTF-8 bytes
//! n_nodes,   then per node:   label index | parent id (!0 for the root)
//!                             | value index (!0 for "no value")
//! ```
//!
//! The format is strict: bad magic, out-of-range indices, a non-root
//! parent that does not precede its child, or trailing bytes are all
//! decode errors — a torn or corrupted segment never yields a tree.

use xfd_hash::FxHashMap;
use xfd_xml::{DataTree, NodeId};

/// Magic prefix of every segment ("XML tree tuples, version 1").
pub const TREETUPLE_MAGIC: [u8; 4] = *b"XTT1";

/// Sentinel index meaning "absent" (no parent / no value).
const NONE: u32 = u32::MAX;

/// Why a segment could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic prefix is missing or wrong.
    BadMagic,
    /// The block ends before the advertised content does.
    Truncated,
    /// A string table entry is not valid UTF-8.
    BadUtf8,
    /// A label/value index or parent id is out of range.
    BadIndex(&'static str),
    /// The segment has no nodes (every tree has at least a root).
    Empty,
    /// Bytes remain after the last record.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a TreeTuple segment (bad magic)"),
            DecodeError::Truncated => write!(f, "segment truncated"),
            DecodeError::BadUtf8 => write!(f, "segment string table is not UTF-8"),
            DecodeError::BadIndex(what) => write!(f, "segment has an out-of-range {what}"),
            DecodeError::Empty => write!(f, "segment contains no nodes"),
            DecodeError::TrailingBytes => write!(f, "segment has trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode `tree` into a self-contained segment block.
pub fn encode_tree(tree: &DataTree) -> Vec<u8> {
    // First-use-order local string table over labels and values.
    fn intern<'a>(
        table: &mut Vec<&'a str>,
        index: &mut FxHashMap<&'a str, u32>,
        s: &'a str,
    ) -> u32 {
        if let Some(&i) = index.get(s) {
            return i;
        }
        let i = table.len() as u32;
        table.push(s);
        index.insert(s, i);
        i
    }
    let mut table: Vec<&str> = Vec::new();
    let mut index: FxHashMap<&str, u32> = FxHashMap::default();
    struct Record {
        label: u32,
        parent: u32,
        value: u32,
    }
    let mut records: Vec<Record> = Vec::with_capacity(tree.node_count());
    for node in tree.all_nodes() {
        records.push(Record {
            label: intern(&mut table, &mut index, tree.label(node)),
            parent: tree.parent(node).map_or(NONE, |p| p.0),
            value: tree
                .value(node)
                .map_or(NONE, |v| intern(&mut table, &mut index, v)),
        });
    }

    let mut out = Vec::with_capacity(16 + table.len() * 8 + records.len() * 12);
    out.extend_from_slice(&TREETUPLE_MAGIC);
    out.extend_from_slice(&(table.len() as u32).to_le_bytes());
    for s in &table {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in &records {
        out.extend_from_slice(&r.label.to_le_bytes());
        out.extend_from_slice(&r.parent.to_le_bytes());
        out.extend_from_slice(&r.value.to_le_bytes());
    }
    out
}

pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        let bytes = self.take(1)?;
        bytes.first().copied().ok_or(DecodeError::Truncated)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = <[u8; 4]>::try_from(self.take(4)?).map_err(|_| DecodeError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| DecodeError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }
}

/// Decode a segment block back into the [`DataTree`] it encodes.
pub fn decode_tree(bytes: &[u8]) -> Result<DataTree, DecodeError> {
    let mut c = Cursor::new(bytes);
    if c.take(4)? != TREETUPLE_MAGIC {
        return Err(DecodeError::BadMagic);
    }

    let n_strings = c.u32()? as usize;
    // Each string needs at least a 4-byte length; bound before allocating.
    if n_strings > bytes.len() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut table: Vec<&str> = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = c.u32()? as usize;
        let s = std::str::from_utf8(c.take(len)?).map_err(|_| DecodeError::BadUtf8)?;
        table.push(s);
    }
    let string_at = |i: u32| -> Result<&str, DecodeError> {
        table
            .get(i as usize)
            .copied()
            .ok_or(DecodeError::BadIndex("string index"))
    };

    let n_nodes = c.u32()? as usize;
    if n_nodes == 0 {
        return Err(DecodeError::Empty);
    }
    if n_nodes > (bytes.len() - c.pos) / 12 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut tree: Option<DataTree> = None;
    for id in 0..n_nodes as u32 {
        let label = c.u32()?;
        let parent = c.u32()?;
        let value = c.u32()?;
        let node = match (&mut tree, parent) {
            (None, NONE) => {
                tree = Some(DataTree::with_root(string_at(label)?));
                NodeId(0)
            }
            (None, _) => return Err(DecodeError::BadIndex("root parent")),
            (Some(_), NONE) => return Err(DecodeError::BadIndex("second root")),
            (Some(t), p) => {
                // Pre-order: a parent always precedes its children.
                if p >= id {
                    return Err(DecodeError::BadIndex("parent id"));
                }
                t.add_child(NodeId(p), string_at(label)?)
            }
        };
        if value != NONE {
            let v = string_at(value)?;
            match tree.as_mut() {
                Some(t) => t.set_value(node, v),
                // Every arm above either installed a root or returned.
                None => return Err(DecodeError::BadIndex("value before root")),
            }
        }
    }
    if c.pos != bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    tree.ok_or(DecodeError::Empty)
}

/// Structural equality of two trees: same nodes in the same pre-order with
/// the same labels, values and parent edges. (`DataTree` deliberately does
/// not implement `PartialEq`; interner internals may differ.)
pub fn trees_equal(a: &DataTree, b: &DataTree) -> bool {
    if a.node_count() != b.node_count() {
        return false;
    }
    a.all_nodes().zip(b.all_nodes()).all(|(x, y)| {
        a.label(x) == b.label(y)
            && a.value(x) == b.value(y)
            && a.parent(x).map(|p| p.0) == b.parent(y).map(|p| p.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::parse;

    fn roundtrip(xml: &str) {
        let t = parse(xml).unwrap();
        let bytes = encode_tree(&t);
        let back = decode_tree(&bytes).unwrap();
        assert!(trees_equal(&t, &back), "round-trip mismatch for {xml}");
    }

    #[test]
    fn encodes_and_decodes_small_documents() {
        roundtrip("<r/>");
        roundtrip("<r><a>1</a><a>1</a><b x='y'>2</b></r>");
        roundtrip("<w><s><n>WA</n><b><i>1</i></b></s><s><n>KY</n></s></w>");
    }

    #[test]
    fn string_table_deduplicates_repeated_values() {
        let t = parse("<r><a>dup</a><a>dup</a><a>dup</a></r>").unwrap();
        let bytes = encode_tree(&t);
        // "dup" must appear exactly once in the block.
        let needle = b"dup";
        let count = bytes.windows(needle.len()).filter(|w| w == needle).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let t = parse("<r><a>1</a></r>").unwrap();
        let bytes = encode_tree(&t);
        assert_eq!(decode_tree(b"nope").err(), Some(DecodeError::BadMagic));
        assert_eq!(decode_tree(&bytes[..3]).err(), Some(DecodeError::Truncated));
        // Every strict prefix fails; none panics or yields a tree.
        for cut in 0..bytes.len() {
            assert!(decode_tree(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let t = parse("<r/>").unwrap();
        let mut bytes = encode_tree(&t);
        bytes.push(0);
        assert_eq!(decode_tree(&bytes).err(), Some(DecodeError::TrailingBytes));
    }

    #[test]
    fn rejects_corrupt_indices() {
        let t = parse("<r><a>1</a></r>").unwrap();
        let bytes = encode_tree(&t);
        // Flip bytes one at a time; decode must never panic (errors or a
        // different-but-valid tree are both acceptable outcomes).
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0xff;
            let _ = decode_tree(&dirty);
        }
    }

    #[test]
    fn decoded_tree_preserves_preorder_node_keys() {
        let t = parse("<w><s><n>WA</n></s><s><n>KY</n></s></w>").unwrap();
        let back = decode_tree(&encode_tree(&t)).unwrap();
        for (a, b) in t.all_nodes().zip(back.all_nodes()) {
            assert_eq!(a, b);
            assert_eq!(t.children(a), back.children(b));
        }
    }
}
