//! Relations and the relation forest (hierarchical representation,
//! Figure 6 of the paper).

use std::collections::HashMap;

use xfd_schema::{ElemId, SchemaMap};
use xfd_xml::{NodeId, Path};

use crate::dictionary::Dictionary;

/// Identifier of a relation within a [`Forest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a tuple within one relation.
pub type TupleIdx = u32;

/// What a column's cells mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// A simple (leaf) schema element; cells are string-dictionary ids.
    Simple,
    /// A complex non-repeatable element; cells are node keys or value-class
    /// ids depending on [`crate::ComplexColumnMode`].
    Complex,
    /// A child set element (Section 4.4 reconstruction); cells are
    /// multiset-dictionary ids over the children's value classes.
    SetValue,
}

/// One column of a relation.
#[derive(Debug, Clone)]
pub struct Column {
    /// The schema element this column materializes.
    pub elem: ElemId,
    /// Path relative to the relation's pivot (e.g. `./contact/name`).
    pub rel_path: Path,
    /// Display name (relative path without the leading `./`).
    pub name: String,
    /// Cell semantics.
    pub kind: ColumnKind,
    /// One cell per tuple; `None` is ⊥ (the element is missing).
    pub cells: Vec<Option<u64>>,
}

/// One relation `R_p` of the hierarchical representation: `@key` is the
/// pivot node per tuple ([`Relation::node_keys`]), `parent` is the owning
/// tuple in the parent relation ([`Relation::parent_of`]), and the ordinary
/// columns follow.
#[derive(Debug, Clone)]
pub struct Relation {
    /// This relation's id.
    pub id: RelId,
    /// The pivot schema element (a set element, or the root).
    pub pivot: ElemId,
    /// The pivot path (identifies the tuple class `C_p`).
    pub pivot_path: Path,
    /// Display name: the pivot label.
    pub name: String,
    /// Parent relation in the relation tree (`None` for the root relation).
    pub parent: Option<RelId>,
    /// Columns (simple, complex, then set-valued).
    pub columns: Vec<Column>,
    /// `@key`: the pivot data node of each tuple.
    pub node_keys: Vec<NodeId>,
    /// `parent`: for each tuple, the owning tuple in the parent relation.
    /// Empty for the root relation.
    pub parent_of: Vec<TupleIdx>,
}

impl Relation {
    /// Number of tuples.
    pub fn n_tuples(&self) -> usize {
        self.node_keys.len()
    }

    /// Number of ordinary columns (excluding `@key`/`parent`).
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Find a column by its path relative to the pivot.
    pub fn column_by_rel_path(&self, rel_path: &Path) -> Option<usize> {
        self.columns.iter().position(|c| &c.rel_path == rel_path)
    }

    /// Find a column by the schema element it materializes.
    pub fn column_by_elem(&self, elem: ElemId) -> Option<usize> {
        self.columns.iter().position(|c| c.elem == elem)
    }
}

/// Size statistics of a hierarchical encoding, for the representation
/// blow-up experiment (reconstructed Figure 5 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ForestStats {
    /// Number of relations.
    pub relations: usize,
    /// Total tuples across relations.
    pub tuples: usize,
    /// Total ordinary columns across relations.
    pub columns: usize,
    /// Total cells (tuples × columns summed per relation).
    pub cells: usize,
}

/// The full hierarchical representation: relations arranged in a tree
/// mirroring the nesting of set elements, plus the shared dictionary.
#[derive(Debug)]
pub struct Forest {
    /// Relations in schema DFS order: a parent relation always precedes its
    /// child relations.
    pub relations: Vec<Relation>,
    /// The shared value dictionary.
    pub dictionary: Dictionary,
    /// The schema map the encoding was driven by.
    pub schema: SchemaMap,
    by_pivot: HashMap<ElemId, RelId>,
}

impl Forest {
    /// Assemble a forest (used by the encoder).
    pub fn new(relations: Vec<Relation>, dictionary: Dictionary, schema: SchemaMap) -> Self {
        let by_pivot = relations.iter().map(|r| (r.pivot, r.id)).collect();
        Forest {
            relations,
            dictionary,
            schema,
            by_pivot,
        }
    }

    /// The root relation (single tuple, anchors root-level attributes).
    pub fn root(&self) -> RelId {
        RelId(0)
    }

    /// Relation by id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Relation owning a pivot element.
    pub fn relation_of_pivot(&self, pivot: ElemId) -> Option<RelId> {
        self.by_pivot.get(&pivot).copied()
    }

    /// Relation whose pivot path equals `path`.
    pub fn relation_by_path(&self, path: &Path) -> Option<RelId> {
        self.relations
            .iter()
            .find(|r| &r.pivot_path == path)
            .map(|r| r.id)
    }

    /// Child relations of `id` in the relation tree.
    pub fn children_of(&self, id: RelId) -> Vec<RelId> {
        self.relations
            .iter()
            .filter(|r| r.parent == Some(id))
            .map(|r| r.id)
            .collect()
    }

    /// Relations in bottom-up order (children strictly before parents) —
    /// the traversal order of `DiscoverXFD`.
    pub fn bottom_up(&self) -> Vec<RelId> {
        // DFS order guarantees parents precede children, so the reverse is
        // a valid bottom-up order.
        (0..self.relations.len() as u32).rev().map(RelId).collect()
    }

    /// Size statistics.
    pub fn stats(&self) -> ForestStats {
        let mut s = ForestStats {
            relations: self.relations.len(),
            ..Default::default()
        };
        for r in &self.relations {
            s.tuples += r.n_tuples();
            s.columns += r.n_columns();
            s.cells += r.n_tuples() * r.n_columns();
        }
        s
    }

    /// Render the forest in the style of the paper's Figure 6 (for the CLI
    /// and debugging). Cells are resolved through the dictionary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.relations {
            let _ = writeln!(out, "R_{}  (pivot {})", r.name, r.pivot_path);
            let header: Vec<&str> = ["@key", "parent"]
                .into_iter()
                .chain(r.columns.iter().map(|c| c.name.as_str()))
                .collect();
            let _ = writeln!(out, "  {}", header.join(" | "));
            for t in 0..r.n_tuples() {
                let mut row: Vec<String> = vec![
                    r.node_keys[t].0.to_string(),
                    r.parent_of
                        .get(t)
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "-".into()),
                ];
                for c in &r.columns {
                    row.push(match (c.cells[t], c.kind) {
                        (None, _) => "⊥".to_string(),
                        (Some(v), ColumnKind::Simple) => self.dictionary.resolve_str(v).to_string(),
                        (Some(v), ColumnKind::Complex) => format!("#{v}"),
                        (Some(v), ColumnKind::SetValue) => {
                            format!("{{{} elems}}", self.dictionary.resolve_multiset(v).len())
                        }
                    });
                }
                let _ = writeln!(out, "  {}", row.join(" | "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use xfd_schema::{infer_schema, SchemaMap};
    use xfd_xml::parse;

    #[test]
    fn bottom_up_visits_children_before_parents() {
        let t = parse("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>").unwrap();
        let schema = infer_schema(&t);
        let forest = crate::encode(&t, &schema, &crate::EncodeConfig::default());
        let order = forest.bottom_up();
        for (i, &id) in order.iter().enumerate() {
            if let Some(parent) = forest.relation(id).parent {
                let parent_pos = order.iter().position(|&x| x == parent).unwrap();
                assert!(parent_pos > i, "parent must come after child");
            }
        }
    }

    #[test]
    fn forest_stats_add_up() {
        let t = parse("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>").unwrap();
        let schema = infer_schema(&t);
        let forest = crate::encode(&t, &schema, &crate::EncodeConfig::default());
        let stats = forest.stats();
        assert_eq!(stats.relations, forest.relations.len());
        assert!(stats.tuples >= 5, "root + 2 a + 3 b");
    }

    #[test]
    fn empty_schema_map_lookup() {
        let t = parse("<r><a>1</a></r>").unwrap();
        let schema = infer_schema(&t);
        let m = SchemaMap::new(&schema);
        let forest = crate::encode(&t, &schema, &crate::EncodeConfig::default());
        assert!(forest.relation_of_pivot(m.root()).is_some());
        assert!(forest.relation_by_path(&"/zzz".parse().unwrap()).is_none());
    }
}
