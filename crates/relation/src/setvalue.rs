//! Set-valued columns — the reconstruction of the paper's Section 4.4
//! ("discovering FDs involving set elements" via *set partitions*).
//!
//! For each child set element `e` of a pivot `p`, the parent relation `R_p`
//! gains a column whose cell for tuple `t` is the canonical identifier of
//! the **multiset of value-equality classes** (Definition 3) of the
//! `e`-children of `t`'s pivot node. Two tuples share a cell id iff their
//! `./e` paths are path-value equal (Definition 4): equal ids ⟺ a
//! one-to-one node-value-equal correspondence exists. A tuple with no
//! `e`-children gets ⊥ (the path matches no node, Definition 7).
//!
//! With these columns in place, FDs over set elements — FD 3
//! `{./ISBN} → ./author` and FD 4 `{./author, ./title} → ./ISBN` — are
//! ordinary attribute-partition FDs, and the unchanged lattice algorithms
//! discover them. This is the "set partition" of Section 4.1's preview:
//! the attribute partition induced by a set element's canonical multisets.

use xfd_schema::SchemaMap;
use xfd_xml::{EqClasses, OrderMode};

use crate::dictionary::Dictionary;
use crate::encode::SetColumnMode;
use crate::relation::{Column, ColumnKind, Relation};

/// Append set-valued columns to every parent relation, per `mode`.
///
/// `relations` must be in schema DFS order (parents before children), as
/// produced by the encoder. With [`OrderMode::Ordered`], cells identify
/// *sequences* of child values rather than multisets.
pub fn add_set_columns(
    relations: &mut [Relation],
    map: &SchemaMap,
    classes: &EqClasses,
    dictionary: &mut Dictionary,
    mode: SetColumnMode,
    order: OrderMode,
) {
    debug_assert_ne!(mode, SetColumnMode::None);
    // Collect (parent index, column) first: we read child relations while
    // building columns for parents.
    let mut new_columns: Vec<(usize, Column)> = Vec::new();
    for child in relations.iter() {
        let Some(parent_rel) = child.parent else {
            continue;
        };
        let elem = map.get(child.pivot);
        if mode == SetColumnMode::SimpleOnly && !elem.is_simple {
            continue;
        }
        let parent = &relations[parent_rel.index()];
        let mut per_parent: Vec<Vec<u64>> = vec![Vec::new(); parent.n_tuples()];
        for t in 0..child.n_tuples() {
            let p = child.parent_of[t] as usize;
            per_parent[p].push(u64::from(classes.class_of(child.node_keys[t]).0));
        }
        let cells: Vec<Option<u64>> = per_parent
            .into_iter()
            .map(|ms| {
                if ms.is_empty() {
                    None
                } else {
                    Some(match order {
                        OrderMode::Unordered => dictionary.intern_multiset(ms),
                        OrderMode::Ordered => dictionary.intern_sequence(ms),
                    })
                }
            })
            .collect();
        let rel_path = elem.path.relative_to(&parent.pivot_path);
        let name = rel_path.to_string().trim_start_matches("./").to_string();
        new_columns.push((
            parent_rel.index(),
            Column {
                elem: child.pivot,
                rel_path,
                name,
                kind: ColumnKind::SetValue,
                cells,
            },
        ));
    }
    for (idx, col) in new_columns {
        relations[idx].columns.push(col);
    }
}

#[cfg(test)]
mod tests {
    use crate::encode::{encode, EncodeConfig};
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// FD 3 semantics: same ISBN ⇒ same *set* of authors must be checkable
    /// through plain cell equality.
    #[test]
    fn set_cells_realize_path_value_equality() {
        let t = parse(
            "<r>\
             <book><isbn>A</isbn><au>R</au><au>G</au></book>\
             <book><isbn>A</isbn><au>G</au><au>R</au></book>\
             <book><isbn>B</isbn><au>R</au></book>\
             </r>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let f = encode(&t, &s, &EncodeConfig::default());
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let au = book.column_by_rel_path(&"./au".parse().unwrap()).unwrap();
        let cells = &book.columns[au].cells;
        assert_eq!(cells[0], cells[1], "order-insensitive");
        assert_ne!(cells[0], cells[2]);
    }

    /// Nested sets: a set of records each containing a set.
    #[test]
    fn nested_set_columns_compare_whole_subtrees() {
        let t = parse(
            "<r>\
             <store><book><au>x</au><au>y</au></book><book><au>z</au></book></store>\
             <store><book><au>z</au></book><book><au>y</au><au>x</au></book></store>\
             <store><book><au>x</au></book><book><au>z</au></book></store>\
             </r>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let f = encode(&t, &s, &EncodeConfig::default());
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        let bk = store
            .column_by_rel_path(&"./book".parse().unwrap())
            .unwrap();
        let cells = &store.columns[bk].cells;
        // Stores 0 and 1 hold the same multiset of book subtrees (order of
        // books and of authors within books ignored); store 2 differs.
        assert_eq!(cells[0], cells[1]);
        assert_ne!(cells[0], cells[2]);
    }

    /// Ordered mode (Section 4.5 variant): reordered authors no longer
    /// share a cell.
    #[test]
    fn ordered_mode_distinguishes_sequences() {
        use xfd_xml::OrderMode;
        let t = parse(
            "<r>\
             <book><au>R</au><au>G</au></book>\
             <book><au>G</au><au>R</au></book>\
             <book><au>R</au><au>G</au></book>\
             </r>",
        )
        .unwrap();
        let s = infer_schema(&t);
        let cfg = EncodeConfig {
            order: OrderMode::Ordered,
            ..Default::default()
        };
        let f = encode(&t, &s, &cfg);
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let au = book.column_by_rel_path(&"./au".parse().unwrap()).unwrap();
        let cells = &book.columns[au].cells;
        assert_ne!(cells[0], cells[1], "R,G vs G,R differ as sequences");
        assert_eq!(cells[0], cells[2], "identical sequences share a cell");
    }

    /// The set column of a deeper set element is still anchored at the
    /// owning relation with the right relative path.
    #[test]
    fn set_under_complex_element_gets_compound_rel_path() {
        let t =
            parse("<r><s><c><ph>1</ph><ph>2</ph></c></s><s><c><ph>2</ph><ph>1</ph></c></s></r>")
                .unwrap();
        let s = infer_schema(&t);
        let f = encode(&t, &s, &EncodeConfig::default());
        let s_rel = f.relations.iter().find(|r| r.name == "s").unwrap();
        let col = s_rel
            .column_by_rel_path(&"./c/ph".parse().unwrap())
            .expect("set column for ./c/ph");
        let cells = &s_rel.columns[col].cells;
        assert_eq!(cells[0], cells[1]);
    }
}
