//! CSV export of the hierarchical and flat representations — for loading
//! into SQLite/pandas/duckdb when eyeballing what discovery saw.

use std::fmt::Write as _;

use crate::flat::FlatRelation;
use crate::relation::{ColumnKind, Forest, Relation};

/// RFC-4180-style field quoting (quote when needed, double inner quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Export one relation as CSV: `@key,parent,<columns...>`. Cells resolve
/// through the forest's dictionary; ⊥ becomes an empty field; complex
/// cells render as `#<id>`, set cells as `{id}`.
pub fn relation_to_csv(forest: &Forest, rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = ["@key".to_string(), "parent".to_string()]
        .into_iter()
        .chain(rel.columns.iter().map(|c| c.name.clone()))
        .map(|h| csv_field(&h))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for t in 0..rel.n_tuples() {
        let mut row: Vec<String> = vec![
            rel.node_keys[t].0.to_string(),
            rel.parent_of
                .get(t)
                .map(|p| p.to_string())
                .unwrap_or_default(),
        ];
        for c in &rel.columns {
            row.push(match (c.cells[t], c.kind) {
                (None, _) => String::new(),
                (Some(v), ColumnKind::Simple) => csv_field(forest.dictionary.resolve_str(v)),
                (Some(v), ColumnKind::Complex) => format!("#{v}"),
                (Some(v), ColumnKind::SetValue) => format!("{{{v}}}"),
            });
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Export every relation of the forest, concatenated with `## R_<name>`
/// separators (one logical file per relation).
pub fn forest_to_csv(forest: &Forest) -> String {
    let mut out = String::new();
    for rel in &forest.relations {
        let _ = writeln!(out, "## R_{} ({})", rel.name, rel.pivot_path);
        out.push_str(&relation_to_csv(forest, rel));
        out.push('\n');
    }
    out
}

/// Export the flat relation as CSV (column names are schema paths).
pub fn flat_to_csv(flat: &FlatRelation) -> String {
    let mut out = String::new();
    let header: Vec<String> = flat.column_names.iter().map(|h| csv_field(h)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for row in 0..flat.n_rows() {
        let mut cells: Vec<String> = Vec::with_capacity(flat.n_cols());
        for col in 0..flat.n_cols() {
            cells.push(match flat.column_cells(col)[row] {
                None => String::new(),
                Some(v) => csv_field(&format!("{v}")),
            });
        }
        let _ = writeln!(out, "{}", cells.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, EncodeConfig};
    use crate::flat::flatten;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn forest() -> Forest {
        let t = parse(
            "<w><store><name>A, \"quoted\"</name>\
               <book><i>1</i></book><book><i>2</i></book></store>\
               <store><name>B</name><book><i>1</i></book></store></w>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        encode(&t, &schema, &EncodeConfig::default())
    }

    #[test]
    fn relation_csv_has_header_and_rows() {
        let f = forest();
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let csv = relation_to_csv(&f, book);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "@key,parent,i");
        assert_eq!(lines.count(), 3, "three books total");
    }

    #[test]
    fn quoting_follows_rfc_4180() {
        let f = forest();
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        let csv = relation_to_csv(&f, store);
        assert!(csv.contains("\"A, \"\"quoted\"\"\""), "{csv}");
    }

    #[test]
    fn forest_csv_contains_every_relation() {
        let f = forest();
        let csv = forest_to_csv(&f);
        for name in ["## R_w", "## R_store", "## R_book"] {
            assert!(csv.contains(name), "{csv}");
        }
    }

    #[test]
    fn flat_csv_dimensions() {
        let t = parse("<r><a>1</a><a>2</a><b>x</b></r>").unwrap();
        let schema = infer_schema(&t);
        let flat = flatten(&t, &schema, 1000).unwrap();
        let csv = flat_to_csv(&flat);
        assert_eq!(csv.lines().count(), 1 + flat.n_rows());
        assert!(csv.starts_with("/r,/r/a,/r/b"));
    }

    #[test]
    fn null_cells_are_empty_fields() {
        let t = parse("<w><book><i>1</i><p>9</p></book><book><i>2</i></book></w>").unwrap();
        let schema = infer_schema(&t);
        let f = encode(&t, &schema, &EncodeConfig::default());
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let csv = relation_to_csv(&f, book);
        let last = csv.lines().last().unwrap();
        assert!(last.ends_with(','), "missing price is empty: {last}");
    }
}
