//! Generalized tree tuples (Definition 5), materialized.
//!
//! The discovery pipeline never builds tuples explicitly (the hierarchical
//! relations *are* the tuples, per Section 4.1), but the notion itself is
//! the paper's central definition, so this module constructs the actual
//! projected tree `t^T_{n_p}` for a pivot node — Figure 3(B) — for
//! inspection, teaching, and the test suite's fidelity checks:
//!
//! a node `n` belongs to the tuple iff
//! 1. `n` is a descendant or ancestor of the pivot `n_p`, or
//! 2. `n` is a non-repeatable direct descendant of an ancestor of `n_p`
//!    (no set element between the ancestor and `n`).

use std::collections::HashSet;

use xfd_schema::{Schema, SchemaMap};
use xfd_xml::builder::TreeWriter;
use xfd_xml::{DataTree, NodeId, Path};

/// Which original nodes belong to the generalized tree tuple of `pivot`.
pub fn gtt_members(tree: &DataTree, schema: &Schema, pivot: NodeId) -> HashSet<NodeId> {
    let map = SchemaMap::new(schema);
    let mut members: HashSet<NodeId> = HashSet::new();
    // Ancestors (including the root) and the pivot itself.
    let mut ancestors = Vec::new();
    let mut cur = Some(pivot);
    while let Some(c) = cur {
        ancestors.push(c);
        members.insert(c);
        cur = tree.parent(c);
    }
    // All descendants of the pivot.
    for d in tree.descendants(pivot) {
        members.insert(d);
    }
    // Non-repeatable direct descendants of every proper ancestor: walk down
    // from each ancestor through non-set elements only (and never into the
    // branch already covered).
    let is_set = |n: NodeId| -> bool {
        let path = Path::absolute(tree.label_path(n));
        map.by_path(&path)
            .map(|id| map.get(id).is_set)
            .unwrap_or(false)
    };
    for &anc in ancestors.iter().skip(1) {
        // BFS through non-set children.
        let mut frontier = vec![anc];
        while let Some(n) = frontier.pop() {
            for &c in tree.children(n) {
                if members.contains(&c) {
                    continue; // the pivot branch, already included
                }
                if !is_set(c) {
                    members.insert(c);
                    frontier.push(c);
                }
            }
        }
    }
    members
}

/// Materialize the generalized tree tuple of `pivot` as a standalone tree
/// (the projection of Definition 5, preserving document order).
///
/// Membership is closed under parents, so the projection is a single
/// connected tree rooted at the original root.
pub fn generalized_tree_tuple(tree: &DataTree, schema: &Schema, pivot: NodeId) -> DataTree {
    let members = gtt_members(tree, schema, pivot);
    let mut w = TreeWriter::new(tree.label(tree.root()));
    for &c in tree.children(tree.root()) {
        w.copy_filtered(tree, c, &mut |n| members.contains(&n));
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    fn warehouse() -> DataTree {
        parse(
            "<warehouse>\
             <state><name>WA</name>\
               <store><contact><name>Borders</name><address>Seattle</address></contact>\
                 <book><ISBN>i1</ISBN><author>Post</author><title>D</title><price>19</price></book>\
                 <book><ISBN>i2</ISBN><author>R</author><author>G</author><title>DBMS</title><price>59</price></book>\
               </store></state>\
             <state><name>KY</name>\
               <store><contact><name>B2</name><address>Lex</address></contact>\
                 <book><ISBN>i2</ISBN><author>R</author><author>G</author><title>DBMS</title><price>59</price></book>\
               </store>\
               <store><contact><name>W</name><address>Lex</address></contact>\
                 <book><ISBN>i2</ISBN><author>R</author><author>G</author><title>DBMS</title></book>\
               </store></state>\
             </warehouse>",
        )
        .unwrap()
    }

    /// Figure 3(B): the GTT of book 30 keeps BOTH its authors, the chain
    /// of ancestors, and the non-repeatable direct descendants of those
    /// ancestors (state name, store contact) — but not sibling books or
    /// the other state.
    #[test]
    fn figure_3b_membership() {
        let t = warehouse();
        let s = infer_schema(&t);
        let books = "/warehouse/state/store/book"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let book30 = books[1]; // the two-author WA book
        let members = gtt_members(&t, &s, book30);

        let contains_path = |p: &str, expect: usize| {
            let nodes = p.parse::<Path>().unwrap().resolve_all(&t);
            let got = nodes.iter().filter(|n| members.contains(n)).count();
            (nodes, got, expect)
        };
        // Both authors of book 30 are in (the Definition 5 improvement
        // over Figure 3(A)).
        let (_, got, _) = contains_path("/warehouse/state/store/book/author", 2);
        assert_eq!(got, 2);
        // Exactly one book (the pivot), one store, one state.
        let (_, got, _) = contains_path("/warehouse/state/store/book", 1);
        assert_eq!(got, 1);
        let (_, got, _) = contains_path("/warehouse/state/store", 1);
        assert_eq!(got, 1);
        let (_, got, _) = contains_path("/warehouse/state", 1);
        assert_eq!(got, 1);
        // The pivot's state's name and store contact come along (rule 2).
        let (nodes, got, _) = contains_path("/warehouse/state/name", 1);
        assert_eq!(got, 1);
        assert!(members.contains(&nodes[0]), "WA name is the member");
        let (_, got, _) = contains_path("/warehouse/state/store/contact/name", 1);
        assert_eq!(got, 1);
        // Root present.
        assert!(members.contains(&t.root()));
    }

    /// Tuple classes (Definition 6): every pivot of a class yields a
    /// distinct tuple; the number of tuples equals the number of pivots.
    #[test]
    fn one_tuple_per_pivot_node() {
        let t = warehouse();
        let s = infer_schema(&t);
        let books = "/warehouse/state/store/book"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let sets: Vec<HashSet<NodeId>> = books.iter().map(|&b| gtt_members(&t, &s, b)).collect();
        for i in 0..sets.len() {
            for j in i + 1..sets.len() {
                assert_ne!(sets[i], sets[j], "tuples of distinct pivots differ");
            }
        }
    }

    /// The materialized Figure 3(B) tree: node counts line up with the
    /// membership set, and the projection parses/serializes cleanly.
    #[test]
    fn figure_3b_materialization() {
        let t = warehouse();
        let s = infer_schema(&t);
        let books = "/warehouse/state/store/book"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let book30 = books[1];
        let members = gtt_members(&t, &s, book30);
        let tuple = generalized_tree_tuple(&t, &s, book30);
        assert_eq!(tuple.node_count(), members.len());
        // Both authors survive in the projection.
        assert_eq!(
            "/warehouse/state/store/book/author"
                .parse::<Path>()
                .unwrap()
                .resolve_all(&tuple)
                .len(),
            2
        );
        // Exactly one state with its name (WA).
        let names = "/warehouse/state/name"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&tuple);
        assert_eq!(names.len(), 1);
        assert_eq!(tuple.value(names[0]), Some("WA"));
        // Round-trips as XML.
        let xml = xfd_xml::to_xml_string(&tuple);
        assert!(xfd_xml::parse(&xml).is_ok());
    }

    /// Theorem 1 on real data: a C_contact-style tuple (pivot = contact,
    /// non-repeatable) has the same members as its lowest-repeatable-
    /// ancestor C_store tuple minus the store's other set branches — i.e.
    /// every contact GTT is contained in its store GTT.
    #[test]
    fn theorem_1_containment() {
        let t = warehouse();
        let s = infer_schema(&t);
        let contacts = "/warehouse/state/store/contact"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        let stores = "/warehouse/state/store"
            .parse::<Path>()
            .unwrap()
            .resolve_all(&t);
        for (c, st) in contacts.iter().zip(stores.iter()) {
            let cm = gtt_members(&t, &s, *c);
            let sm = gtt_members(&t, &s, *st);
            assert!(cm.is_subset(&sm), "contact tuple ⊆ store tuple");
        }
    }
}
