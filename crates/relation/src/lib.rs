#![warn(missing_docs)]
//! # xfd-relation
//!
//! The two relational encodings of an XML database that Section 4.1 of the
//! paper contrasts:
//!
//! * the **hierarchical representation** (Figure 6): one relation per
//!   essential tuple class, holding `@key`, `parent`, one column per
//!   non-repeatable schema element owned by the pivot, and — our
//!   reconstruction of Section 4.4 — one *set-valued column* per child set
//!   element whose cells are canonical multiset identifiers, so that FDs
//!   over set elements (Constraints 3 and 4) reduce to ordinary attribute
//!   partitions;
//! * the **flat representation** (Figure 5): the fully unnested single
//!   relation of tree tuples in the sense of Arenas & Libkin, used as the
//!   baseline substrate. Its row count multiplies across parallel set
//!   elements; [`flat::FlatError::RowLimit`] guards against blow-up.
//!
//! [`Forest`] owns the full hierarchical encoding: the relations, the
//! parent/child relation tree that `DiscoverXFD` walks bottom-up, and the
//! shared value [`Dictionary`].

pub mod dictionary;
pub mod encode;
pub mod export;
pub mod flat;
pub mod gtt;
pub mod relation;
pub mod setvalue;
pub mod shard;
pub mod treetuple;

pub use dictionary::Dictionary;
pub use encode::{encode, ComplexColumnMode, EncodeConfig, SetColumnMode};
pub use flat::{flatten, FlatError, FlatRelation};
pub use relation::{Column, ColumnKind, Forest, ForestStats, RelId, Relation, TupleIdx};
pub use shard::{
    build_partial, build_partials, decode_partial, encode_collection, encode_partial,
    forest_fingerprint, merge_partials, SegmentPartial, PARTIAL_MAGIC,
};
pub use treetuple::{decode_tree, encode_tree, trees_equal, DecodeError};
pub use xfd_xml::OrderMode;
