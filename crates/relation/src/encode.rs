//! Encoding a data tree into the hierarchical representation (Figure 6).
//!
//! One relation per pivot (the document root plus every set element); each
//! relation holds the pivot node key per tuple (`@key`), the owning tuple
//! in the parent relation (`parent`), one column per non-repeatable schema
//! element owned by the pivot, and one set-valued column per child set
//! element (Section 4.4 reconstruction, see [`crate::setvalue`]).

use std::collections::HashMap;

use xfd_schema::{ElemId, Schema, SchemaMap};
use xfd_xml::{DataTree, EqClasses, NodeId, Path};

use crate::dictionary::Dictionary;
use crate::relation::{Column, ColumnKind, Forest, RelId, Relation, TupleIdx};
use crate::setvalue::add_set_columns;

/// Which child set elements materialize as set-valued columns of their
/// parent relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetColumnMode {
    /// No set-valued columns: the expressiveness of the prior XML FD
    /// notions (\[3\], \[24\]) — Constraints 3 and 4 become undiscoverable.
    None,
    /// Only set elements with simple item types (e.g. `author: SetOf str`).
    SimpleOnly,
    /// Every child set element, nested sets included (default).
    #[default]
    All,
}

/// How complex non-repeatable elements (e.g. `contact`) materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComplexColumnMode {
    /// Cells are the node keys, exactly as in the paper's Figures 5–6.
    /// Complex columns are then key-like within their relation.
    #[default]
    NodeKey,
    /// Cells are subtree value-equality classes (Definition 3) — an
    /// extension enabling FDs that compare complex elements by value.
    ValueClass,
    /// Do not materialize complex columns at all.
    Omit,
}

/// Encoder configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodeConfig {
    /// Set-valued column policy.
    pub set_columns: SetColumnMode,
    /// Complex column policy.
    pub complex_columns: ComplexColumnMode,
    /// Sibling-order sensitivity of all value equality (subtree classes
    /// and set-valued cells) — the Section 4.5 "impact of order" variant.
    pub order: xfd_xml::OrderMode,
    /// Compare numerically-typed leaf values by numeric value rather than
    /// by string (so `01`, `1` and `1.0` agree where the inferred type is
    /// `int`/`float`). Off by default — the paper compares strings.
    pub numeric_values: bool,
}

/// Does `config` require subtree value-equality classes?
pub(crate) fn need_classes(config: &EncodeConfig) -> bool {
    config.set_columns != SetColumnMode::None
        || config.complex_columns == ComplexColumnMode::ValueClass
}

/// The schema-derived frame of a forest: empty relations (one per pivot, in
/// schema DFS order) plus the lookup tables the tree walk needs. Building
/// it is independent of any data tree, so the sharded collection encoder
/// re-derives the identical skeleton for every segment.
pub(crate) struct Skeleton<'a> {
    pub(crate) relations: Vec<Relation>,
    /// elem -> (relation, column) for non-pivot columns.
    pub(crate) column_of_elem: HashMap<ElemId, (RelId, usize)>,
    /// Child-element lookup by (parent elem, label).
    pub(crate) child_elem: HashMap<(ElemId, &'a str), ElemId>,
}

/// Encode `tree` (assumed to conform to `schema`) into a [`Forest`].
pub fn encode(tree: &DataTree, schema: &Schema, config: &EncodeConfig) -> Forest {
    let map = SchemaMap::new(schema);
    let classes = if need_classes(config) {
        Some(EqClasses::compute_with(tree, config.order))
    } else {
        None
    };

    let Skeleton {
        mut relations,
        column_of_elem,
        child_elem,
    } = build_skeleton(&map, config);

    // --- Single pass over the data tree. ---------------------------------
    let mut dictionary = Dictionary::new();
    let mut encoder = Encoder {
        tree,
        map: &map,
        config,
        classes: classes.as_ref(),
        rank: None,
        relations: &mut relations,
        column_of_elem: &column_of_elem,
        child_elem: &child_elem,
        dictionary: &mut dictionary,
    };
    let root_rel = RelId(0);
    let root_tuple = encoder.new_tuple(root_rel, tree.root(), 0);
    encoder.set_pivot_value(root_rel, root_tuple, tree.root(), map.root());
    encoder.visit_children(tree.root(), map.root(), root_rel, root_tuple);
    // The root relation has no parent; drop the placeholder parent pointer.
    relations[0].parent_of.clear();

    // --- Set-valued columns (Section 4.4 reconstruction). ----------------
    if let Some(classes) = &classes {
        if config.set_columns != SetColumnMode::None {
            add_set_columns(
                &mut relations,
                &map,
                classes,
                &mut dictionary,
                config.set_columns,
                config.order,
            );
        }
    }

    Forest::new(relations, dictionary, map)
}

/// Build the empty relation skeleton and lookup tables for `map`.
pub(crate) fn build_skeleton<'a>(map: &'a SchemaMap, config: &EncodeConfig) -> Skeleton<'a> {
    // --- Create one relation per pivot, in schema DFS order. -------------
    let pivots = map.pivots();
    let mut rel_of_pivot: HashMap<ElemId, RelId> = HashMap::new();
    let mut relations: Vec<Relation> = Vec::with_capacity(pivots.len());
    let mut column_of_elem: HashMap<ElemId, (RelId, usize)> = HashMap::new();

    for &pivot in &pivots {
        let rel_id = RelId(relations.len() as u32);
        rel_of_pivot.insert(pivot, rel_id);
        let pelem = map.get(pivot);
        let mut columns: Vec<Column> = Vec::new();
        if pelem.is_simple {
            // A simple pivot (e.g. `author: SetOf str`) carries its own
            // value in a `.` column, as R_author does in Figure 6.
            columns.push(Column {
                elem: pivot,
                rel_path: Path::self_path(),
                name: pelem.label.clone(),
                kind: ColumnKind::Simple,
                cells: Vec::new(),
            });
            column_of_elem.insert(pivot, (rel_id, 0));
        }
        for attr in map.attributes_of(pivot) {
            let a = map.get(attr);
            let kind = if a.is_simple {
                ColumnKind::Simple
            } else {
                match config.complex_columns {
                    ComplexColumnMode::Omit => continue,
                    _ => ColumnKind::Complex,
                }
            };
            let rel_path = a.path.relative_to(&pelem.path);
            let name = rel_path.to_string().trim_start_matches("./").to_string();
            column_of_elem.insert(attr, (rel_id, columns.len()));
            columns.push(Column {
                elem: attr,
                rel_path,
                name,
                kind,
                cells: Vec::new(),
            });
        }
        relations.push(Relation {
            id: rel_id,
            pivot,
            pivot_path: pelem.path.clone(),
            name: pelem.label.clone(),
            parent: map.parent_pivot_of(pivot).map(|p| rel_of_pivot[&p]),
            columns,
            node_keys: Vec::new(),
            parent_of: Vec::new(),
        });
    }

    // Child-element lookup by (parent elem, label).
    let mut child_elem: HashMap<(ElemId, &str), ElemId> = HashMap::new();
    for e in map.elements() {
        if let Some(parent) = e.parent {
            child_elem.insert((parent, map.get(e.id).label.as_str()), e.id);
        }
    }

    Skeleton {
        relations,
        column_of_elem,
        child_elem,
    }
}

pub(crate) struct Encoder<'a> {
    pub(crate) tree: &'a DataTree,
    pub(crate) map: &'a SchemaMap,
    pub(crate) config: &'a EncodeConfig,
    pub(crate) classes: Option<&'a EqClasses>,
    /// When encoding a collection *segment*: the tree's pre-order rank
    /// table. Node keys and `NodeKey` cells are then recorded as pre-order
    /// ranks (segment-relative), which the merge shifts into the grafted
    /// tree's node-id space by adding the segment's node offset.
    pub(crate) rank: Option<&'a [u32]>,
    pub(crate) relations: &'a mut Vec<Relation>,
    pub(crate) column_of_elem: &'a HashMap<ElemId, (RelId, usize)>,
    pub(crate) child_elem: &'a HashMap<(ElemId, &'a str), ElemId>,
    pub(crate) dictionary: &'a mut Dictionary,
}

impl Encoder<'_> {
    fn key_of(&self, node: NodeId) -> NodeId {
        match self.rank {
            Some(rank) => NodeId(rank[node.index()]),
            None => node,
        }
    }

    /// Append a fresh all-⊥ tuple to `rel`.
    pub(crate) fn new_tuple(
        &mut self,
        rel: RelId,
        node: NodeId,
        parent_tuple: TupleIdx,
    ) -> TupleIdx {
        let key = self.key_of(node);
        let r = &mut self.relations[rel.index()];
        let t = r.n_tuples() as TupleIdx;
        r.node_keys.push(key);
        r.parent_of.push(parent_tuple);
        for c in &mut r.columns {
            c.cells.push(None);
        }
        t
    }

    fn set_cell(&mut self, rel: RelId, col: usize, tuple: TupleIdx, value: u64) {
        self.relations[rel.index()].columns[col].cells[tuple as usize] = Some(value);
    }

    /// Record the value of a simple pivot node in its `.` column.
    fn set_pivot_value(&mut self, rel: RelId, tuple: TupleIdx, node: NodeId, elem: ElemId) {
        if let Some(&(r, c)) = self.column_of_elem.get(&elem) {
            if r == rel {
                if let Some(v) = self.tree.value(node) {
                    let id = self.intern_value(elem, v);
                    self.set_cell(rel, c, tuple, id);
                }
            }
        }
    }

    /// Intern a leaf value, canonicalizing numeric forms when configured.
    fn intern_value(&mut self, elem: ElemId, v: &str) -> u64 {
        use xfd_schema::SimpleType;
        if self.config.numeric_values {
            match self.map.get(elem).simple_type {
                Some(SimpleType::Int) => {
                    if let Ok(n) = v.trim().parse::<i64>() {
                        return self.dictionary.intern_str(&n.to_string());
                    }
                }
                Some(SimpleType::Float) => {
                    if let Ok(f) = v.trim().parse::<f64>() {
                        return self.dictionary.intern_str(&format!("{f}"));
                    }
                }
                _ => {}
            }
        }
        self.dictionary.intern_str(v)
    }

    fn visit_children(&mut self, node: NodeId, elem: ElemId, rel: RelId, tuple: TupleIdx) {
        let children: Vec<NodeId> = self.tree.children(node).to_vec();
        for c in children {
            let label = self.tree.label(c);
            let Some(&celem) = self.child_elem.get(&(elem, label)) else {
                // Data not covered by the schema; inferred schemas never
                // reach this, hand-written ones may — skip silently, the
                // conformance checker reports it.
                continue;
            };
            self.visit_child(c, celem, rel, tuple);
        }
    }

    /// Encode one child node `c` (whose schema element is `celem`) owned by
    /// `tuple` of `rel`, then recurse. Entry point for the sharded
    /// collection encoder, which starts at a segment's document root with
    /// `(rel, tuple)` = the placeholder root-relation tuple.
    pub(crate) fn visit_child(&mut self, c: NodeId, celem: ElemId, rel: RelId, tuple: TupleIdx) {
        let ce = self.map.get(celem);
        if ce.is_set {
            let crel = RelId(
                self.relations
                    .iter()
                    .position(|r| r.pivot == celem)
                    .expect("pivot relation") as u32,
            );
            let ct = self.new_tuple(crel, c, tuple);
            if ce.is_simple {
                self.set_pivot_value(crel, ct, c, celem);
            }
            self.visit_children(c, celem, crel, ct);
        } else {
            if let Some(&(r, col)) = self.column_of_elem.get(&celem) {
                debug_assert_eq!(r, rel, "non-set element lands in the owning relation");
                if ce.is_simple {
                    if let Some(v) = self.tree.value(c) {
                        let id = self.intern_value(celem, v);
                        self.set_cell(rel, col, tuple, id);
                    }
                } else {
                    let id = match self.config.complex_columns {
                        ComplexColumnMode::NodeKey => u64::from(self.key_of(c).0),
                        ComplexColumnMode::ValueClass => u64::from(
                            self.classes
                                .expect("classes computed for ValueClass")
                                .class_of(c)
                                .0,
                        ),
                        ComplexColumnMode::Omit => unreachable!("omitted columns are skipped"),
                    };
                    self.set_cell(rel, col, tuple, id);
                }
            }
            self.visit_children(c, celem, rel, tuple);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// The paper's Figure 1 document (keys differ but structure matches).
    pub(crate) fn warehouse() -> DataTree {
        parse(
            "<warehouse>\
             <state><name>WA</name>\
               <store><contact><name>Borders</name><address>Seattle</address></contact>\
                 <book><ISBN>1-0676-7</ISBN><author>Post</author><title>Dreams</title><price>19.99</price></book>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
               </store></state>\
             <state><name>KY</name>\
               <store><contact><name>Borders</name><address>Lexington</address></contact>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
               </store>\
               <store><contact><name>WHSmith</name><address>Lexington</address></contact>\
                 <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title></book>\
               </store></state>\
             </warehouse>",
        )
        .unwrap()
    }

    fn forest() -> Forest {
        let t = warehouse();
        let s = infer_schema(&t);
        encode(&t, &s, &EncodeConfig::default())
    }

    #[test]
    fn one_relation_per_pivot() {
        let f = forest();
        let names: Vec<&str> = f.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["warehouse", "state", "store", "book", "author"]);
    }

    #[test]
    fn tuple_counts_match_figure_6() {
        let f = forest();
        let by_name = |n: &str| f.relations.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("warehouse").n_tuples(), 1);
        assert_eq!(by_name("state").n_tuples(), 2);
        assert_eq!(by_name("store").n_tuples(), 3);
        assert_eq!(by_name("book").n_tuples(), 4);
        assert_eq!(by_name("author").n_tuples(), 7);
    }

    #[test]
    fn book_columns_match_figure_6() {
        let f = forest();
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let cols: Vec<&str> = book.columns.iter().map(|c| c.name.as_str()).collect();
        // ISBN, title, price + the author set-valued column.
        assert_eq!(cols, vec!["ISBN", "title", "price", "author"]);
        assert_eq!(book.columns[3].kind, ColumnKind::SetValue);
    }

    #[test]
    fn store_columns_include_complex_contact() {
        let f = forest();
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        let cols: Vec<(&str, ColumnKind)> = store
            .columns
            .iter()
            .map(|c| (c.name.as_str(), c.kind))
            .collect();
        assert_eq!(
            cols,
            vec![
                ("contact", ColumnKind::Complex),
                ("contact/name", ColumnKind::Simple),
                ("contact/address", ColumnKind::Simple),
                ("book", ColumnKind::SetValue),
            ]
        );
    }

    #[test]
    fn missing_price_is_null() {
        let f = forest();
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let price = book
            .column_by_rel_path(&"./price".parse().unwrap())
            .unwrap();
        let cells = &book.columns[price].cells;
        assert_eq!(
            cells.iter().filter(|c| c.is_none()).count(),
            1,
            "book 80 has no price"
        );
    }

    #[test]
    fn set_column_cells_agree_for_equal_author_sets() {
        let f = forest();
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let author = book
            .column_by_rel_path(&"./author".parse().unwrap())
            .unwrap();
        let cells = &book.columns[author].cells;
        // Books 1,2,3 (tuples with {Ramakrishnan, Gehrke}) share a cell id;
        // book 0 ({Post}) differs.
        assert_eq!(cells[1], cells[2]);
        assert_eq!(cells[2], cells[3]);
        assert_ne!(cells[0], cells[1]);
        assert!(cells.iter().all(Option::is_some));
    }

    #[test]
    fn parent_pointers_reconstruct_generalized_tree_tuples() {
        let f = forest();
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        // Books 0,1 belong to store 0 (WA); book 2 to store 1; book 3 to store 2.
        assert_eq!(book.parent_of, vec![0, 0, 1, 2]);
        assert_eq!(store.parent_of, vec![0, 1, 1]);
    }

    #[test]
    fn simple_pivot_relation_has_value_column() {
        let f = forest();
        let author = f.relations.iter().find(|r| r.name == "author").unwrap();
        assert_eq!(author.columns.len(), 1);
        assert_eq!(author.columns[0].rel_path, Path::self_path());
        let vals: Vec<&str> = author.columns[0]
            .cells
            .iter()
            .map(|c| f.dictionary.resolve_str(c.unwrap()))
            .collect();
        assert_eq!(vals[0], "Post");
        assert!(vals.contains(&"Ramakrishnan"));
        assert!(vals.contains(&"Gehrke"));
    }

    #[test]
    fn complex_value_class_mode_shares_ids_for_equal_subtrees() {
        let t = parse(
            "<r><s><c><n>X</n></c><i>1</i></s><s><c><n>X</n></c><i>2</i></s><s><c><n>Y</n></c><i>3</i></s></r>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let cfg = EncodeConfig {
            complex_columns: ComplexColumnMode::ValueClass,
            ..Default::default()
        };
        let f = encode(&t, &schema, &cfg);
        let s_rel = f.relations.iter().find(|r| r.name == "s").unwrap();
        let c_col = s_rel.column_by_rel_path(&"./c".parse().unwrap()).unwrap();
        let cells = &s_rel.columns[c_col].cells;
        assert_eq!(cells[0], cells[1], "equal subtrees share a class");
        assert_ne!(cells[0], cells[2]);
    }

    #[test]
    fn complex_node_key_mode_is_key_like() {
        let t = parse("<r><s><c><n>X</n></c></s><s><c><n>X</n></c></s></r>").unwrap();
        let schema = infer_schema(&t);
        let f = encode(&t, &schema, &EncodeConfig::default());
        let s_rel = f.relations.iter().find(|r| r.name == "s").unwrap();
        let c_col = s_rel.column_by_rel_path(&"./c".parse().unwrap()).unwrap();
        let cells = &s_rel.columns[c_col].cells;
        assert_ne!(cells[0], cells[1], "node keys are unique");
    }

    #[test]
    fn omit_modes_drop_columns() {
        let t = warehouse();
        let schema = infer_schema(&t);
        let cfg = EncodeConfig {
            set_columns: SetColumnMode::None,
            complex_columns: ComplexColumnMode::Omit,
            ..Default::default()
        };
        let f = encode(&t, &schema, &cfg);
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        let cols: Vec<&str> = store.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cols, vec!["contact/name", "contact/address"]);
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let cols: Vec<&str> = book.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cols, vec!["ISBN", "title", "price"]);
    }

    #[test]
    fn simple_only_set_columns_exclude_complex_sets() {
        let t = warehouse();
        let schema = infer_schema(&t);
        let cfg = EncodeConfig {
            set_columns: SetColumnMode::SimpleOnly,
            ..Default::default()
        };
        let f = encode(&t, &schema, &cfg);
        let store = f.relations.iter().find(|r| r.name == "store").unwrap();
        assert!(store.columns.iter().all(|c| c.kind != ColumnKind::SetValue));
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        assert!(book.columns.iter().any(|c| c.kind == ColumnKind::SetValue));
    }

    #[test]
    fn books_without_authors_get_null_set_cells() {
        let t = parse(
            "<r><book><i>1</i></book><book><i>2</i><a>x</a></book><book><i>3</i><a>x</a><a>x</a></book></r>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        let f = encode(&t, &schema, &EncodeConfig::default());
        let book = f.relations.iter().find(|r| r.name == "book").unwrap();
        let a_col = book.column_by_rel_path(&"./a".parse().unwrap()).unwrap();
        let cells = &book.columns[a_col].cells;
        assert_eq!(cells[0], None, "no authors → ⊥ (path matches no node)");
        assert!(cells[1].is_some());
        assert_ne!(cells[1], cells[2], "multiset {{x}} ≠ {{x,x}}");
    }

    #[test]
    fn render_produces_readable_tables() {
        let f = forest();
        let text = f.render();
        assert!(text.contains("R_book"));
        assert!(text.contains("ISBN"));
        assert!(text.contains("⊥"), "missing price renders as bottom");
    }

    #[test]
    fn numeric_values_canonicalize_when_enabled() {
        let t = parse(
            "<r><b><n>01</n><f>1.50</f></b><b><n>1</n><f>1.5</f></b><b><n>2</n><f>2.5</f></b></r>",
        )
        .unwrap();
        let schema = infer_schema(&t);
        // Default: string comparison — "01" and "1" differ.
        let plain = encode(&t, &schema, &EncodeConfig::default());
        let book = plain.relations.iter().find(|r| r.name == "b").unwrap();
        let n = book.column_by_rel_path(&"./n".parse().unwrap()).unwrap();
        assert_ne!(book.columns[n].cells[0], book.columns[n].cells[1]);
        // Numeric mode: they agree, and so do the float forms.
        let cfg = EncodeConfig {
            numeric_values: true,
            ..Default::default()
        };
        let numeric = encode(&t, &schema, &cfg);
        let book = numeric.relations.iter().find(|r| r.name == "b").unwrap();
        let n = book.column_by_rel_path(&"./n".parse().unwrap()).unwrap();
        let f_col = book.column_by_rel_path(&"./f".parse().unwrap()).unwrap();
        assert_eq!(book.columns[n].cells[0], book.columns[n].cells[1]);
        assert_ne!(book.columns[n].cells[0], book.columns[n].cells[2]);
        assert_eq!(book.columns[f_col].cells[0], book.columns[f_col].cells[1]);
    }
}
