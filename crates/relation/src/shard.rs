//! Segment-sharded collection encoding.
//!
//! Collection discovery grafts every document under a synthetic
//! `<collection>` root and encodes the grafted tree in one serial pass.
//! This module produces the **byte-identical** [`Forest`] without ever
//! materializing the merged tree: each document (*segment*) is encoded
//! independently into a [`SegmentPartial`] — embarrassingly parallel and
//! cacheable per segment — and the partials are merged deterministically.
//!
//! Determinism rests on three alignment facts, each mirrored from the
//! serial pipeline:
//!
//! * **Node keys.** `TreeWriter::copy_subtree` assigns pre-order ids, so a
//!   node's merged id is its segment-local pre-order rank plus the
//!   segment's node offset (`1 +` the sizes of all earlier segments).
//!   Partials record ranks; the merge adds offsets.
//! * **Value classes.** `EqClasses` assigns class ids by first appearance
//!   in a reverse arena scan, which on the grafted tree visits segments in
//!   *reverse* order (each in reverse pre-order) and the collection root
//!   last. Re-consing per-segment [`ClassTable`]s in exactly that order
//!   reproduces the merged ids verbatim.
//! * **Dictionary ids.** The serial walk interns strings in document DFS
//!   order, segment by segment; re-interning each partial's local
//!   dictionary in id order, in segment order, yields the same dense ids.
//!   Multiset ids are only created afterwards by
//!   [`add_set_columns`], which both pipelines share.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use xfd_schema::{Schema, SchemaMap};
use xfd_xml::{preorder_of, ClassTable, DataTree, EqClasses, NodeId, OrderMode, ValueClassId};

use crate::dictionary::Dictionary;
use crate::encode::{
    build_skeleton, need_classes, ComplexColumnMode, EncodeConfig, Encoder, SetColumnMode, Skeleton,
};
use crate::relation::{ColumnKind, Forest, RelId, Relation, TupleIdx};
use crate::setvalue::add_set_columns;

/// One document's contribution to the collection forest, expressed in
/// segment-local coordinates: node keys and `NodeKey` cells are pre-order
/// ranks, `ValueClass` cells are local class-table ids, and simple cells
/// are local dictionary ids. All coordinates are shifted or remapped by
/// [`merge_partials`]; a partial is therefore valid for *any* position in
/// *any* collection encoded under the same schema and configuration.
pub struct SegmentPartial {
    relations: Vec<Relation>,
    dictionary: Dictionary,
    table: Option<ClassTable>,
    node_count: usize,
}

impl SegmentPartial {
    /// Number of nodes in the source segment.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Rough heap footprint, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for r in &self.relations {
            bytes += r.node_keys.len() * 4 + r.parent_of.len() * 4;
            for c in &r.columns {
                bytes += c.cells.len() * std::mem::size_of::<Option<u64>>();
            }
        }
        for id in 0..self.dictionary.num_strings() {
            bytes += self.dictionary.resolve_str(id as u64).len() + 24;
        }
        if let Some(t) = &self.table {
            bytes += t.class_by_rank.len() * 4;
            for s in &t.shapes {
                bytes += s.label.len()
                    + s.value.as_ref().map_or(0, |v| v.len())
                    + s.children.len() * 4
                    + 48;
            }
        }
        bytes
    }
}

/// Encode one segment of a collection against the collection schema.
///
/// `map` must be the schema map of the *collection* schema (root =
/// the synthetic collection element whose children are document roots).
pub fn build_partial(tree: &DataTree, map: &SchemaMap, config: &EncodeConfig) -> SegmentPartial {
    let (preorder, rank) = preorder_of(tree);
    let table = if need_classes(config) {
        Some(ClassTable::compute(tree, config.order, &preorder, &rank))
    } else {
        None
    };
    // The encoder consumes classes indexed by arena id; re-index the
    // rank-indexed table.
    let classes = table.as_ref().map(|t| {
        let mut by_arena = vec![ValueClassId(0); tree.node_count()];
        for (idx, slot) in by_arena.iter_mut().enumerate() {
            *slot = ValueClassId(t.class_by_rank[rank[idx] as usize]);
        }
        EqClasses::from_raw(by_arena, t.num_classes() as u32)
    });

    let Skeleton {
        mut relations,
        column_of_elem,
        child_elem,
    } = build_skeleton(map, config);
    let mut dictionary = Dictionary::new();
    let mut encoder = Encoder {
        tree,
        map,
        config,
        classes: classes.as_ref(),
        rank: Some(&rank),
        relations: &mut relations,
        column_of_elem: &column_of_elem,
        child_elem: &child_elem,
        dictionary: &mut dictionary,
    };
    // Placeholder for the collection root's single tuple; its cells hold
    // this segment's contribution (non-⊥ only where this segment's
    // document root owns the column) and are overlaid at merge time.
    let root_tuple = encoder.new_tuple(RelId(0), tree.root(), 0);
    debug_assert_eq!(root_tuple, 0);
    let label = tree.label(tree.root());
    if let Some(&celem) = child_elem.get(&(map.root(), label)) {
        encoder.visit_child(tree.root(), celem, RelId(0), 0);
    }
    SegmentPartial {
        relations,
        dictionary,
        table,
        node_count: tree.node_count(),
    }
}

/// Global shape key for re-consing per-segment class tables; labels are
/// strings because interner symbols are per-tree.
type GlobalShape = (Box<str>, Option<Box<str>>, Box<[u32]>);

/// Merge segment partials into the collection [`Forest`], byte-identical
/// to serially encoding the grafted collection tree. `parts` must be in
/// segment (document) order and all encoded under `map`'s schema and the
/// same `config`.
pub fn merge_partials(map: SchemaMap, config: &EncodeConfig, parts: &[&SegmentPartial]) -> Forest {
    let Skeleton { mut relations, .. } = build_skeleton(&map, config);
    let nrel = relations.len();
    for part in parts {
        debug_assert_eq!(part.relations.len(), nrel, "partials share the schema");
    }

    // Node offsets: collection root is node 0, segments follow in order.
    let mut node_off: Vec<u32> = Vec::with_capacity(parts.len());
    let mut total_nodes = 1usize;
    for part in parts {
        node_off.push(total_nodes as u32);
        total_nodes += part.node_count;
    }

    // Global value classes: cons segment tables in reverse segment order
    // (each table already lists classes in reverse pre-order first-use
    // order), then the collection root, mirroring the reverse arena scan
    // of `EqClasses::compute_with` on the grafted tree.
    let mut class_maps: Vec<Vec<u32>> = vec![Vec::new(); parts.len()];
    let mut num_global_classes = 0u32;
    let mut root_class = 0u32;
    if need_classes(config) {
        let mut cons: HashMap<GlobalShape, u32> = HashMap::new();
        for (i, part) in parts.iter().enumerate().rev() {
            let table = part.table.as_ref().expect("partials built with classes");
            let mut local_to_global = vec![0u32; table.num_classes()];
            for (local, shape) in table.shapes.iter().enumerate() {
                // Children have strictly smaller local ids, so they are
                // already remapped; re-sort because the remap is not
                // monotone across segments.
                let mut kids: Vec<u32> = shape
                    .children
                    .iter()
                    .map(|&c| local_to_global[c as usize])
                    .collect();
                if config.order == OrderMode::Unordered {
                    kids.sort_unstable();
                }
                let key: GlobalShape = (shape.label.clone(), shape.value.clone(), kids.into());
                let next = cons.len() as u32;
                local_to_global[local] = *cons.entry(key).or_insert(next);
            }
            class_maps[i] = local_to_global;
        }
        let mut kids: Vec<u32> = parts
            .iter()
            .enumerate()
            .map(|(i, part)| {
                let table = part.table.as_ref().expect("partials built with classes");
                class_maps[i][table.class_by_rank[0] as usize]
            })
            .collect();
        if config.order == OrderMode::Unordered {
            kids.sort_unstable();
        }
        let root_label: Box<str> = map.get(map.root()).label.as_str().into();
        let key: GlobalShape = (root_label, None, kids.into());
        let next = cons.len() as u32;
        root_class = *cons.entry(key).or_insert(next);
        num_global_classes = cons.len() as u32;
    }

    // Dictionary: re-intern each segment's strings in local-id order,
    // segment order — the order the serial DFS walk first meets them.
    let mut dictionary = Dictionary::new();
    let string_maps: Vec<Vec<u64>> = parts
        .iter()
        .map(|part| {
            (0..part.dictionary.num_strings())
                .map(|id| dictionary.intern_str(part.dictionary.resolve_str(id as u64)))
                .collect()
        })
        .collect();

    let remap_cell = |kind: ColumnKind, v: u64, seg: usize| -> u64 {
        match kind {
            ColumnKind::Simple => string_maps[seg][v as usize],
            ColumnKind::Complex => match config.complex_columns {
                ComplexColumnMode::NodeKey => v + u64::from(node_off[seg]),
                ComplexColumnMode::ValueClass => u64::from(class_maps[seg][v as usize]),
                ComplexColumnMode::Omit => unreachable!("omitted columns are skipped"),
            },
            ColumnKind::SetValue => unreachable!("set columns are added after the merge"),
        }
    };

    // Root relation: the collection root's single tuple. A non-set
    // document root (label unique across the collection) lands its columns
    // here; at most one segment contributes a non-⊥ value per column.
    relations[0].node_keys.push(NodeId(0));
    for c in &mut relations[0].columns {
        c.cells.push(None);
    }
    for (i, part) in parts.iter().enumerate() {
        for (c, col) in part.relations[0].columns.iter().enumerate() {
            if let Some(v) = col.cells.first().copied().flatten() {
                let kind = relations[0].columns[c].kind;
                let mapped = remap_cell(kind, v, i);
                let dst = &mut relations[0].columns[c].cells[0];
                debug_assert!(dst.is_none(), "root columns are single-segment");
                *dst = Some(mapped);
            }
        }
    }

    // Child relations: concatenate per-segment tuples in segment order
    // (the serial DFS meets each segment's tuples as a contiguous block).
    // Parent pointers shift by the parent relation's tuple count over
    // earlier segments — zero when the parent is the root relation, whose
    // placeholder tuple 0 is shared.
    let mut prefix: Vec<TupleIdx> = vec![0; nrel];
    for (i, part) in parts.iter().enumerate() {
        for (r, rel) in relations.iter_mut().enumerate().skip(1) {
            let src = &part.relations[r];
            let parent = rel.parent.expect("non-root relation has a parent");
            let parent_shift = if parent.index() == 0 {
                0
            } else {
                prefix[parent.index()]
            };
            rel.node_keys
                .extend(src.node_keys.iter().map(|k| NodeId(k.0 + node_off[i])));
            rel.parent_of
                .extend(src.parent_of.iter().map(|&p| p + parent_shift));
            for (c, col) in src.columns.iter().enumerate() {
                let kind = rel.columns[c].kind;
                rel.columns[c].cells.extend(
                    col.cells
                        .iter()
                        .map(|cell| cell.map(|v| remap_cell(kind, v, i))),
                );
            }
        }
        for (r, p) in prefix.iter_mut().enumerate().skip(1) {
            *p += part.relations[r].n_tuples() as TupleIdx;
        }
    }

    // Set-valued columns, over the synthesized global classes.
    if need_classes(config) && config.set_columns != SetColumnMode::None {
        let mut class = vec![ValueClassId(0); total_nodes];
        class[0] = ValueClassId(root_class);
        for (i, part) in parts.iter().enumerate() {
            let table = part.table.as_ref().expect("partials built with classes");
            let off = node_off[i] as usize;
            for (k, &local) in table.class_by_rank.iter().enumerate() {
                class[off + k] = ValueClassId(class_maps[i][local as usize]);
            }
        }
        let classes = EqClasses::from_raw(class, num_global_classes);
        add_set_columns(
            &mut relations,
            &map,
            &classes,
            &mut dictionary,
            config.set_columns,
            config.order,
        );
    }

    Forest::new(relations, dictionary, map)
}

/// Encode a document collection by sharding over segments: build one
/// [`SegmentPartial`] per document — on a `std::thread::scope` pool when
/// `threads > 1` — and merge. Produces the same forest as serially
/// encoding the grafted collection tree, for every thread count.
pub fn encode_collection(
    trees: &[&DataTree],
    schema: &Schema,
    config: &EncodeConfig,
    threads: usize,
) -> Forest {
    let map = SchemaMap::new(schema);
    let parts = build_partials(trees, &map, config, threads);
    let refs: Vec<&SegmentPartial> = parts.iter().collect();
    merge_partials(map, config, &refs)
}

/// Build one partial per tree, fanning out over a scoped worker pool.
pub fn build_partials(
    trees: &[&DataTree],
    map: &SchemaMap,
    config: &EncodeConfig,
    threads: usize,
) -> Vec<SegmentPartial> {
    let workers = threads.min(trees.len());
    if workers <= 1 {
        return trees
            .iter()
            .map(|t| build_partial(t, map, config))
            .collect();
    }
    let slots: Vec<OnceLock<SegmentPartial>> = (0..trees.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(tree) = trees.get(i) else { break };
                let partial = build_partial(tree, map, config);
                let _ = slots[i].set(partial);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// Graft documents under a synthetic `<collection>` root exactly as
    /// the core driver's `merge_collection` does.
    fn grafted(trees: &[&DataTree]) -> DataTree {
        let mut w = xfd_xml::builder::TreeWriter::new("collection");
        for t in trees {
            w.copy_subtree(t, t.root());
        }
        w.finish()
    }

    fn assert_forest_eq(a: &Forest, b: &Forest) {
        assert_eq!(a.relations.len(), b.relations.len(), "relation count");
        for (ra, rb) in a.relations.iter().zip(&b.relations) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.name, rb.name, "relation name");
            assert_eq!(ra.pivot_path, rb.pivot_path);
            assert_eq!(ra.parent, rb.parent);
            assert_eq!(ra.node_keys, rb.node_keys, "node keys of {}", ra.name);
            assert_eq!(ra.parent_of, rb.parent_of, "parents of {}", ra.name);
            assert_eq!(ra.columns.len(), rb.columns.len(), "columns of {}", ra.name);
            for (ca, cb) in ra.columns.iter().zip(&rb.columns) {
                assert_eq!(ca.name, cb.name);
                assert_eq!(ca.rel_path, cb.rel_path);
                assert_eq!(ca.kind, cb.kind);
                assert_eq!(ca.cells, cb.cells, "cells of {}.{}", ra.name, ca.name);
            }
        }
        assert_eq!(a.dictionary.num_strings(), b.dictionary.num_strings());
        for id in 0..a.dictionary.num_strings() as u64 {
            assert_eq!(a.dictionary.resolve_str(id), b.dictionary.resolve_str(id));
        }
        assert_eq!(a.dictionary.num_multisets(), b.dictionary.num_multisets());
        for id in 0..a.dictionary.num_multisets() as u64 {
            assert_eq!(
                a.dictionary.resolve_multiset(id),
                b.dictionary.resolve_multiset(id)
            );
        }
    }

    fn check_parity(docs: &[&str], config: &EncodeConfig) {
        let trees: Vec<DataTree> = docs.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let merged = grafted(&refs);
        let schema = infer_schema(&merged);
        let serial = encode(&merged, &schema, config);
        for threads in [1, 4] {
            let sharded = encode_collection(&refs, &schema, config, threads);
            assert_forest_eq(&sharded, &serial);
        }
    }

    const STORES: &[&str] = &[
        "<store><contact><name>Borders</name><address>Seattle</address></contact>\
         <book><ISBN>1-0676-7</ISBN><author>Post</author><title>Dreams</title><price>19.99</price></book>\
         <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
         </store>",
        "<store><contact><name>Borders</name><address>Lexington</address></contact>\
         <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
         </store>",
        "<store><contact><name>WHSmith</name><address>Lexington</address></contact>\
         <book><ISBN>1-55860-438-3</ISBN><author>Gehrke</author><author>Ramakrishnan</author><title>DBMS</title></book>\
         </store>",
    ];

    #[test]
    fn parity_default_config() {
        check_parity(STORES, &EncodeConfig::default());
    }

    #[test]
    fn parity_value_class_mode() {
        check_parity(
            STORES,
            &EncodeConfig {
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_ordered_mode() {
        check_parity(
            STORES,
            &EncodeConfig {
                order: OrderMode::Ordered,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_ordered_value_class() {
        check_parity(
            STORES,
            &EncodeConfig {
                order: OrderMode::Ordered,
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_numeric_values() {
        check_parity(
            &["<r><n>01</n><n>1</n></r>", "<r><n>1.50</n><n>2</n></r>"],
            &EncodeConfig {
                numeric_values: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_no_classes_needed() {
        check_parity(
            STORES,
            &EncodeConfig {
                set_columns: SetColumnMode::None,
                complex_columns: ComplexColumnMode::Omit,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_simple_only_set_columns() {
        check_parity(
            STORES,
            &EncodeConfig {
                set_columns: SetColumnMode::SimpleOnly,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_mixed_root_labels_non_set_roots_land_on_root_relation() {
        // `r` and `s` each appear once: both document roots are non-set
        // complex children of the collection root, exercising the root
        // tuple overlay for Complex (NodeKey) and nested Simple columns.
        check_parity(
            &["<r><a>1</a><c><d>x</d></c></r>", "<s><b>2</b><b>3</b></s>"],
            &EncodeConfig::default(),
        );
        check_parity(
            &["<r><a>1</a><c><d>x</d></c></r>", "<s><b>2</b><b>3</b></s>"],
            &EncodeConfig {
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_identical_segments_share_classes() {
        let doc = "<store><book><ISBN>X</ISBN><author>A</author><author>B</author></book></store>";
        check_parity(&[doc, doc, doc], &EncodeConfig::default());
    }

    #[test]
    fn parity_single_segment() {
        check_parity(&[STORES[0]], &EncodeConfig::default());
    }

    #[test]
    fn parity_empty_collection() {
        check_parity(&[], &EncodeConfig::default());
    }

    #[test]
    fn partials_merge_identically_regardless_of_build_order() {
        // Partials are position-independent: building them separately and
        // merging in a different arrangement matches serial encoding of
        // the rearranged collection.
        let trees: Vec<DataTree> = STORES.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let schema = infer_schema(&grafted(&refs));
        let map = SchemaMap::new(&schema);
        let config = EncodeConfig::default();
        let parts: Vec<SegmentPartial> = refs
            .iter()
            .map(|t| build_partial(t, &map, &config))
            .collect();

        let rearranged: Vec<&DataTree> = vec![&trees[2], &trees[0], &trees[1]];
        let serial = encode(&grafted(&rearranged), &schema, &config);
        let picked: Vec<&SegmentPartial> = vec![&parts[2], &parts[0], &parts[1]];
        let sharded = merge_partials(SchemaMap::new(&schema), &config, &picked);
        assert_forest_eq(&sharded, &serial);
    }
}
