//! Segment-sharded collection encoding.
//!
//! Collection discovery grafts every document under a synthetic
//! `<collection>` root and encodes the grafted tree in one serial pass.
//! This module produces the **byte-identical** [`Forest`] without ever
//! materializing the merged tree: each document (*segment*) is encoded
//! independently into a [`SegmentPartial`] — embarrassingly parallel and
//! cacheable per segment — and the partials are merged deterministically.
//!
//! Determinism rests on three alignment facts, each mirrored from the
//! serial pipeline:
//!
//! * **Node keys.** `TreeWriter::copy_subtree` assigns pre-order ids, so a
//!   node's merged id is its segment-local pre-order rank plus the
//!   segment's node offset (`1 +` the sizes of all earlier segments).
//!   Partials record ranks; the merge adds offsets.
//! * **Value classes.** `EqClasses` assigns class ids by first appearance
//!   in a reverse arena scan, which on the grafted tree visits segments in
//!   *reverse* order (each in reverse pre-order) and the collection root
//!   last. Re-consing per-segment [`ClassTable`]s in exactly that order
//!   reproduces the merged ids verbatim.
//! * **Dictionary ids.** The serial walk interns strings in document DFS
//!   order, segment by segment; re-interning each partial's local
//!   dictionary in id order, in segment order, yields the same dense ids.
//!   Multiset ids are only created afterwards by
//!   [`add_set_columns`], which both pipelines share.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use xfd_schema::{Schema, SchemaMap};
use xfd_xml::{preorder_of, ClassTable, DataTree, EqClasses, NodeId, OrderMode, ValueClassId};

use crate::dictionary::Dictionary;
use crate::encode::{
    build_skeleton, need_classes, ComplexColumnMode, EncodeConfig, Encoder, SetColumnMode, Skeleton,
};
use crate::relation::{ColumnKind, Forest, RelId, Relation, TupleIdx};
use crate::setvalue::add_set_columns;
use crate::treetuple::DecodeError;

/// One document's contribution to the collection forest, expressed in
/// segment-local coordinates: node keys and `NodeKey` cells are pre-order
/// ranks, `ValueClass` cells are local class-table ids, and simple cells
/// are local dictionary ids. All coordinates are shifted or remapped by
/// [`merge_partials`]; a partial is therefore valid for *any* position in
/// *any* collection encoded under the same schema and configuration.
pub struct SegmentPartial {
    relations: Vec<Relation>,
    dictionary: Dictionary,
    table: Option<ClassTable>,
    node_count: usize,
}

impl SegmentPartial {
    /// Number of nodes in the source segment.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Rough heap footprint, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        for r in &self.relations {
            bytes += r.node_keys.len() * 4 + r.parent_of.len() * 4;
            for c in &r.columns {
                bytes += c.cells.len() * std::mem::size_of::<Option<u64>>();
            }
        }
        for id in 0..self.dictionary.num_strings() {
            bytes += self.dictionary.resolve_str(id as u64).len() + 24;
        }
        if let Some(t) = &self.table {
            bytes += t.class_by_rank.len() * 4;
            for s in &t.shapes {
                bytes += s.label.len()
                    + s.value.as_ref().map_or(0, |v| v.len())
                    + s.children.len() * 4
                    + 48;
            }
        }
        bytes
    }
}

/// Encode one segment of a collection against the collection schema.
///
/// `map` must be the schema map of the *collection* schema (root =
/// the synthetic collection element whose children are document roots).
pub fn build_partial(tree: &DataTree, map: &SchemaMap, config: &EncodeConfig) -> SegmentPartial {
    let (preorder, rank) = preorder_of(tree);
    let table = if need_classes(config) {
        Some(ClassTable::compute(tree, config.order, &preorder, &rank))
    } else {
        None
    };
    // The encoder consumes classes indexed by arena id; re-index the
    // rank-indexed table.
    let classes = table.as_ref().map(|t| {
        let mut by_arena = vec![ValueClassId(0); tree.node_count()];
        for (slot, &rk) in by_arena.iter_mut().zip(rank.iter()) {
            if let Some(&class) = t.class_by_rank.get(rk as usize) {
                *slot = ValueClassId(class);
            }
        }
        EqClasses::from_raw(by_arena, t.num_classes() as u32)
    });

    let Skeleton {
        mut relations,
        column_of_elem,
        child_elem,
    } = build_skeleton(map, config);
    let mut dictionary = Dictionary::new();
    let mut encoder = Encoder {
        tree,
        map,
        config,
        classes: classes.as_ref(),
        rank: Some(&rank),
        relations: &mut relations,
        column_of_elem: &column_of_elem,
        child_elem: &child_elem,
        dictionary: &mut dictionary,
    };
    // Placeholder for the collection root's single tuple; its cells hold
    // this segment's contribution (non-⊥ only where this segment's
    // document root owns the column) and are overlaid at merge time.
    let root_tuple = encoder.new_tuple(RelId(0), tree.root(), 0);
    debug_assert_eq!(root_tuple, 0);
    let label = tree.label(tree.root());
    if let Some(&celem) = child_elem.get(&(map.root(), label)) {
        encoder.visit_child(tree.root(), celem, RelId(0), 0);
    }
    SegmentPartial {
        relations,
        dictionary,
        table,
        node_count: tree.node_count(),
    }
}

/// Global shape key for re-consing per-segment class tables; labels are
/// strings because interner symbols are per-tree.
type GlobalShape = (Box<str>, Option<Box<str>>, Box<[u32]>);

/// Merge segment partials into the collection [`Forest`], byte-identical
/// to serially encoding the grafted collection tree. `parts` must be in
/// segment (document) order and all encoded under `map`'s schema and the
/// same `config`. With `threads > 1` the per-relation concatenation runs
/// on scoped workers (each relation is filled whole by one worker, so the
/// output is identical at any thread count).
pub fn merge_partials(
    map: SchemaMap,
    config: &EncodeConfig,
    parts: &[&SegmentPartial],
    threads: usize,
) -> Forest {
    let Skeleton { mut relations, .. } = build_skeleton(&map, config);
    let nrel = relations.len();
    for part in parts {
        debug_assert_eq!(part.relations.len(), nrel, "partials share the schema");
    }

    // Node offsets: collection root is node 0, segments follow in order.
    let mut node_off: Vec<u32> = Vec::with_capacity(parts.len());
    let mut total_nodes = 1usize;
    for part in parts {
        node_off.push(total_nodes as u32);
        total_nodes += part.node_count;
    }

    // Global value classes: cons segment tables in reverse segment order
    // (each table already lists classes in reverse pre-order first-use
    // order), then the collection root, mirroring the reverse arena scan
    // of `EqClasses::compute_with` on the grafted tree.
    let mut class_maps: Vec<Vec<u32>> = vec![Vec::new(); parts.len()];
    let mut num_global_classes = 0u32;
    let mut root_class = 0u32;
    if need_classes(config) {
        let mut cons: HashMap<GlobalShape, u32> = HashMap::new();
        for (i, part) in parts.iter().enumerate().rev() {
            debug_assert!(part.table.is_some(), "partials built with classes");
            let Some(table) = part.table.as_ref() else {
                continue;
            };
            let mut local_to_global: Vec<u32> = Vec::with_capacity(table.shapes.len());
            for shape in table.shapes.iter() {
                // Children have strictly smaller local ids, so they are
                // already remapped; re-sort because the remap is not
                // monotone across segments.
                let mut kids: Vec<u32> = shape
                    .children
                    .iter()
                    .map(|&c| local_to_global.get(c as usize).copied().unwrap_or(0))
                    .collect();
                if config.order == OrderMode::Unordered {
                    kids.sort_unstable();
                }
                let key: GlobalShape = (shape.label.clone(), shape.value.clone(), kids.into());
                let next = cons.len() as u32;
                local_to_global.push(*cons.entry(key).or_insert(next));
            }
            if let Some(slot) = class_maps.get_mut(i) {
                *slot = local_to_global;
            }
        }
        let mut kids: Vec<u32> = parts
            .iter()
            .enumerate()
            .filter_map(|(i, part)| {
                debug_assert!(part.table.is_some(), "partials built with classes");
                let table = part.table.as_ref()?;
                let local = table.class_by_rank.first().copied()?;
                class_maps.get(i)?.get(local as usize).copied()
            })
            .collect();
        if config.order == OrderMode::Unordered {
            kids.sort_unstable();
        }
        let root_label: Box<str> = map.get(map.root()).label.as_str().into();
        let key: GlobalShape = (root_label, None, kids.into());
        let next = cons.len() as u32;
        root_class = *cons.entry(key).or_insert(next);
        num_global_classes = cons.len() as u32;
    }

    // Dictionary: re-intern each segment's strings in local-id order,
    // segment order — the order the serial DFS walk first meets them.
    let mut dictionary = Dictionary::new();
    let string_maps: Vec<Vec<u64>> = parts
        .iter()
        .map(|part| {
            (0..part.dictionary.num_strings())
                .map(|id| dictionary.intern_str(part.dictionary.resolve_str(id as u64)))
                .collect()
        })
        .collect();

    // Cell values are structurally in range for any partial built under this
    // plan (wire input is bounds-checked by `decode_partial`); the fallbacks
    // below are never hit on valid input and exist so a violated invariant
    // degrades to a deterministic wrong cell instead of a panic that kills
    // a merge worker mid-job.
    let remap_cell = |kind: ColumnKind, v: u64, seg: usize| -> u64 {
        match kind {
            ColumnKind::Simple => string_maps
                .get(seg)
                .and_then(|m| m.get(v as usize))
                .copied()
                .unwrap_or(0),
            ColumnKind::Complex => match config.complex_columns {
                ComplexColumnMode::NodeKey => {
                    v + u64::from(node_off.get(seg).copied().unwrap_or(0))
                }
                ComplexColumnMode::ValueClass => class_maps
                    .get(seg)
                    .and_then(|m| m.get(v as usize))
                    .copied()
                    .map_or(0, u64::from),
                // Omitted columns never materialize cells; pass through.
                ComplexColumnMode::Omit => v,
            },
            // Set columns are only added after the merge; pass through.
            ColumnKind::SetValue => v,
        }
    };

    // Root relation: the collection root's single tuple. A non-set
    // document root (label unique across the collection) lands its columns
    // here; at most one segment contributes a non-⊥ value per column.
    if let Some(root) = relations.first_mut() {
        root.node_keys.push(NodeId(0));
        for c in &mut root.columns {
            c.cells.push(None);
        }
        for (i, part) in parts.iter().enumerate() {
            let Some(src_root) = part.relations.first() else {
                continue;
            };
            for (dst, col) in root.columns.iter_mut().zip(&src_root.columns) {
                if let Some(v) = col.cells.first().copied().flatten() {
                    let mapped = remap_cell(dst.kind, v, i);
                    if let Some(cell) = dst.cells.first_mut() {
                        debug_assert!(cell.is_none(), "root columns are single-segment");
                        *cell = Some(mapped);
                    }
                }
            }
        }
    }

    // Child relations: concatenate per-segment tuples in segment order
    // (the serial DFS meets each segment's tuples as a contiguous block).
    // Parent pointers shift by the parent relation's tuple count over
    // earlier segments — zero when the parent is the root relation, whose
    // placeholder tuple 0 is shared. `tuple_prefix[r][i]` is relation `r`'s
    // tuple count over segments `0..i`; with the prefixes precomputed every
    // relation concatenates independently, so the loop fans out over the
    // worker pool — one relation per task, identical output at any count.
    let mut tuple_prefix: Vec<Vec<TupleIdx>> = Vec::with_capacity(nrel);
    for r in 0..nrel {
        let mut acc: TupleIdx = 0;
        let mut pre = Vec::with_capacity(parts.len());
        for part in parts {
            pre.push(acc);
            acc += part
                .relations
                .get(r)
                .map_or(0, |rel| rel.n_tuples() as TupleIdx);
        }
        tuple_prefix.push(pre);
    }
    let fill = |r: usize, rel: &mut Relation| {
        debug_assert!(rel.parent.is_some(), "non-root relation has a parent");
        let Some(parent) = rel.parent else {
            return;
        };
        for (i, part) in parts.iter().enumerate() {
            let Some(src) = part.relations.get(r) else {
                continue;
            };
            let parent_shift = if parent.index() == 0 {
                0
            } else {
                tuple_prefix
                    .get(parent.index())
                    .and_then(|pre| pre.get(i))
                    .copied()
                    .unwrap_or(0)
            };
            let off = node_off.get(i).copied().unwrap_or(0);
            rel.node_keys
                .extend(src.node_keys.iter().map(|k| NodeId(k.0 + off)));
            rel.parent_of
                .extend(src.parent_of.iter().map(|&p| p + parent_shift));
            for (dst, col) in rel.columns.iter_mut().zip(&src.columns) {
                let kind = dst.kind;
                dst.cells.extend(
                    col.cells
                        .iter()
                        .map(|cell| cell.map(|v| remap_cell(kind, v, i))),
                );
            }
        }
    };
    let rest = relations.get_mut(1..).unwrap_or_default();
    let workers = threads.min(rest.len());
    if workers <= 1 {
        for (j, rel) in rest.iter_mut().enumerate() {
            fill(j + 1, rel);
        }
    } else {
        // Static LPT assignment: largest relations first, each to the
        // least-loaded bucket. Deterministic, and balanced enough for the
        // handful of relations a schema produces.
        let sizes: Vec<usize> = (1..nrel)
            .map(|r| {
                parts
                    .iter()
                    .map(|p| p.relations.get(r).map_or(0, Relation::n_tuples))
                    .sum()
            })
            .collect();
        let size_of = |j: usize| sizes.get(j).copied().unwrap_or(0);
        let mut order: Vec<usize> = (0..rest.len()).collect();
        order.sort_by_key(|&j| (std::cmp::Reverse(size_of(j)), j));
        let mut buckets: Vec<Vec<(usize, &mut Relation)>> =
            (0..workers).map(|_| Vec::new()).collect();
        let mut load = vec![0usize; workers];
        let mut slots: Vec<Option<&mut Relation>> = rest.iter_mut().map(Some).collect();
        for &j in &order {
            let w = load
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map_or(0, |(w, _)| w);
            if let Some(l) = load.get_mut(w) {
                *l += size_of(j).max(1);
            }
            let Some(rel) = slots.get_mut(j).and_then(Option::take) else {
                continue;
            };
            if let Some(bucket) = buckets.get_mut(w) {
                bucket.push((j + 1, rel));
            }
        }
        let fill = &fill;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for (r, rel) in bucket {
                        fill(r, rel);
                    }
                });
            }
        });
    }

    // Set-valued columns, over the synthesized global classes.
    if need_classes(config) && config.set_columns != SetColumnMode::None {
        let mut class = vec![ValueClassId(0); total_nodes];
        if let Some(slot) = class.first_mut() {
            *slot = ValueClassId(root_class);
        }
        for (i, part) in parts.iter().enumerate() {
            debug_assert!(part.table.is_some(), "partials built with classes");
            let Some(table) = part.table.as_ref() else {
                continue;
            };
            let off = node_off.get(i).copied().unwrap_or(0) as usize;
            for (k, &local) in table.class_by_rank.iter().enumerate() {
                let global = class_maps
                    .get(i)
                    .and_then(|m| m.get(local as usize))
                    .copied()
                    .unwrap_or(0);
                if let Some(slot) = class.get_mut(off + k) {
                    *slot = ValueClassId(global);
                }
            }
        }
        let classes = EqClasses::from_raw(class, num_global_classes);
        add_set_columns(
            &mut relations,
            &map,
            &classes,
            &mut dictionary,
            config.set_columns,
            config.order,
        );
    }

    Forest::new(relations, dictionary, map)
}

/// Encode a document collection by sharding over segments: build one
/// [`SegmentPartial`] per document — on a `std::thread::scope` pool when
/// `threads > 1` — and merge. Produces the same forest as serially
/// encoding the grafted collection tree, for every thread count.
pub fn encode_collection(
    trees: &[&DataTree],
    schema: &Schema,
    config: &EncodeConfig,
    threads: usize,
) -> Forest {
    let map = SchemaMap::new(schema);
    let parts = build_partials(trees, &map, config, threads);
    let refs: Vec<&SegmentPartial> = parts.iter().collect();
    merge_partials(map, config, &refs, threads)
}

/// Build one partial per tree, fanning out over a scoped worker pool.
pub fn build_partials(
    trees: &[&DataTree],
    map: &SchemaMap,
    config: &EncodeConfig,
    threads: usize,
) -> Vec<SegmentPartial> {
    let workers = threads.min(trees.len());
    if workers <= 1 {
        return trees
            .iter()
            .map(|t| build_partial(t, map, config))
            .collect();
    }
    let slots: Vec<OnceLock<SegmentPartial>> = (0..trees.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(tree) = trees.get(i) else { break };
                let partial = build_partial(tree, map, config);
                if let Some(slot) = slots.get(i) {
                    slot.set(partial).ok();
                }
            });
        }
    });
    slots
        .into_iter()
        .zip(trees)
        .map(|(slot, tree)| {
            // A worker fills every slot it claims; rebuilding serially on a
            // missed slot keeps the invariant violation from panicking.
            slot.into_inner()
                .unwrap_or_else(|| build_partial(tree, map, config))
        })
        .collect()
}

/// Magic prefix of an encoded [`SegmentPartial`] ("XFD segment partial,
/// version 1").
pub const PARTIAL_MAGIC: [u8; 4] = *b"XSP1";

/// Sentinel cell meaning ⊥ (dictionary/class/node ids never reach it).
const NONE_CELL: u64 = u64::MAX;

/// Serialize a [`SegmentPartial`] into a self-contained block, in the
/// TreeTuple style (little-endian integers, length-prefixed strings). Only
/// segment-local *data* is written — node keys, parent pointers, cells,
/// dictionary strings and the class table; the relation skeleton is
/// re-derived from the schema on decode, so a block is valid for any
/// process that shares the plan (schema + encode config).
pub fn encode_partial(part: &SegmentPartial) -> Vec<u8> {
    debug_assert_eq!(
        part.dictionary.num_multisets(),
        0,
        "partials never hold multisets (set columns are added after merge)"
    );
    let mut out = Vec::with_capacity(64 + part.approx_bytes() / 2);
    out.extend_from_slice(&PARTIAL_MAGIC);
    out.extend_from_slice(&(part.node_count as u64).to_le_bytes());
    out.extend_from_slice(&(part.dictionary.num_strings() as u32).to_le_bytes());
    for id in 0..part.dictionary.num_strings() as u64 {
        let s = part.dictionary.resolve_str(id);
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    match &part.table {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            out.extend_from_slice(&(t.shapes.len() as u32).to_le_bytes());
            for s in &t.shapes {
                out.extend_from_slice(&(s.label.len() as u32).to_le_bytes());
                out.extend_from_slice(s.label.as_bytes());
                match &s.value {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                        out.extend_from_slice(v.as_bytes());
                    }
                }
                out.extend_from_slice(&(s.children.len() as u32).to_le_bytes());
                for &c in s.children.iter() {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            out.extend_from_slice(&(t.class_by_rank.len() as u32).to_le_bytes());
            for &c in &t.class_by_rank {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out.extend_from_slice(&(part.relations.len() as u32).to_le_bytes());
    for rel in &part.relations {
        out.extend_from_slice(&(rel.node_keys.len() as u32).to_le_bytes());
        for k in &rel.node_keys {
            out.extend_from_slice(&k.0.to_le_bytes());
        }
        out.extend_from_slice(&(rel.parent_of.len() as u32).to_le_bytes());
        for &p in &rel.parent_of {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&(rel.columns.len() as u32).to_le_bytes());
        for col in &rel.columns {
            for cell in &col.cells {
                out.extend_from_slice(&cell.unwrap_or(NONE_CELL).to_le_bytes());
            }
        }
    }
    out
}

/// Decode a block produced by [`encode_partial`] against the same plan
/// (collection schema map + encode config). The format is strict and every
/// index is bounds-checked, so a torn or hostile block errors instead of
/// corrupting a later merge.
pub fn decode_partial(
    bytes: &[u8],
    map: &SchemaMap,
    config: &EncodeConfig,
) -> Result<SegmentPartial, DecodeError> {
    use crate::treetuple::Cursor;
    let mut c = Cursor::new(bytes);
    if c.take(4)? != PARTIAL_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let node_count = c.u64()? as usize;

    let n_strings = c.u32()? as usize;
    if n_strings > c.remaining() / 4 {
        return Err(DecodeError::Truncated);
    }
    let mut dictionary = Dictionary::new();
    for i in 0..n_strings {
        let len = c.u32()? as usize;
        let s = std::str::from_utf8(c.take(len)?).map_err(|_| DecodeError::BadUtf8)?;
        if dictionary.intern_str(s) != i as u64 {
            return Err(DecodeError::BadIndex("duplicate dictionary string"));
        }
    }

    let table = match c.u8()? {
        0 => None,
        1 => {
            let n_shapes = c.u32()? as usize;
            if n_shapes > c.remaining() / 9 {
                return Err(DecodeError::Truncated);
            }
            let mut shapes = Vec::with_capacity(n_shapes);
            for local in 0..n_shapes {
                let len = c.u32()? as usize;
                let label: Box<str> = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| DecodeError::BadUtf8)?
                    .into();
                let value = match c.u8()? {
                    0 => None,
                    1 => {
                        let len = c.u32()? as usize;
                        Some(
                            std::str::from_utf8(c.take(len)?)
                                .map_err(|_| DecodeError::BadUtf8)?
                                .into(),
                        )
                    }
                    _ => return Err(DecodeError::BadIndex("shape value flag")),
                };
                let n_children = c.u32()? as usize;
                if n_children > c.remaining() / 4 {
                    return Err(DecodeError::Truncated);
                }
                let mut children = Vec::with_capacity(n_children);
                for _ in 0..n_children {
                    let child = c.u32()?;
                    // The merge remaps children through ids already consed,
                    // which is only sound when children precede the shape.
                    if child as usize >= local {
                        return Err(DecodeError::BadIndex("shape child"));
                    }
                    children.push(child);
                }
                shapes.push(xfd_xml::ShapeExport {
                    label,
                    value,
                    children: children.into(),
                });
            }
            let n_ranks = c.u32()? as usize;
            if n_ranks != node_count {
                return Err(DecodeError::BadIndex("class-by-rank length"));
            }
            if n_ranks > c.remaining() / 4 {
                return Err(DecodeError::Truncated);
            }
            let mut class_by_rank = Vec::with_capacity(n_ranks);
            for _ in 0..n_ranks {
                let class = c.u32()?;
                if class as usize >= n_shapes {
                    return Err(DecodeError::BadIndex("class id"));
                }
                class_by_rank.push(class);
            }
            Some(ClassTable {
                class_by_rank,
                shapes,
            })
        }
        _ => return Err(DecodeError::BadIndex("class table flag")),
    };
    if table.is_some() != need_classes(config) {
        return Err(DecodeError::BadIndex("class table presence"));
    }
    let n_shapes = table.as_ref().map_or(0, |t| t.shapes.len());

    let Skeleton { mut relations, .. } = build_skeleton(map, config);
    let n_rel = c.u32()? as usize;
    if n_rel != relations.len() {
        return Err(DecodeError::BadIndex("relation count"));
    }
    for r in 0..n_rel {
        let n_tuples = c.u32()? as usize;
        if n_tuples > c.remaining() / 4 {
            return Err(DecodeError::Truncated);
        }
        if r == 0 && n_tuples != 1 {
            return Err(DecodeError::BadIndex("root tuple count"));
        }
        let mut node_keys = Vec::with_capacity(n_tuples);
        for _ in 0..n_tuples {
            let k = c.u32()?;
            if k as usize >= node_count {
                return Err(DecodeError::BadIndex("node key"));
            }
            node_keys.push(NodeId(k));
        }
        // Every partial relation carries one parent pointer per tuple; the
        // root's is the placeholder 0 (dropped by the merge overlay).
        let n_parents = c.u32()? as usize;
        if n_parents != n_tuples {
            return Err(DecodeError::BadIndex("parent count"));
        }
        let mut parent_of = Vec::with_capacity(n_parents);
        for _ in 0..n_parents {
            parent_of.push(c.u32()?);
        }
        let n_cols = c.u32()? as usize;
        let rel = relations
            .get_mut(r)
            .ok_or(DecodeError::BadIndex("relation count"))?;
        if n_cols != rel.columns.len() {
            return Err(DecodeError::BadIndex("column count"));
        }
        rel.node_keys = node_keys;
        rel.parent_of = parent_of;
        for col in &mut rel.columns {
            let mut cells = Vec::with_capacity(n_tuples);
            for _ in 0..n_tuples {
                let v = c.u64()?;
                if v == NONE_CELL {
                    cells.push(None);
                    continue;
                }
                let bound = match col.kind {
                    ColumnKind::Simple => n_strings as u64,
                    ColumnKind::Complex => match config.complex_columns {
                        ComplexColumnMode::NodeKey => node_count as u64,
                        ComplexColumnMode::ValueClass => n_shapes as u64,
                        ComplexColumnMode::Omit => 0,
                    },
                    ColumnKind::SetValue => 0,
                };
                if v >= bound {
                    return Err(DecodeError::BadIndex("cell value"));
                }
                cells.push(Some(v));
            }
            col.cells = cells;
        }
    }
    if c.remaining() != 0 {
        return Err(DecodeError::TrailingBytes);
    }
    // Parent pointers must land inside the parent relation's tuple block.
    for r in 1..n_rel {
        let rel = relations.get(r).ok_or(DecodeError::BadIndex("relation"))?;
        let parent = rel.parent.ok_or(DecodeError::BadIndex("parent relation"))?;
        let parent_tuples = relations
            .get(parent.index())
            .map(|p| p.n_tuples())
            .ok_or(DecodeError::BadIndex("parent relation"))?;
        if rel.parent_of.iter().any(|&p| p as usize >= parent_tuples) {
            return Err(DecodeError::BadIndex("parent pointer"));
        }
    }
    Ok(SegmentPartial {
        relations,
        dictionary,
        table,
        node_count,
    })
}

/// Content fingerprint of a merged forest: every relation's node keys,
/// parent pointers and cells, plus the dictionary — order-sensitive, so two
/// forests fingerprint equal exactly when they encode byte-identically.
/// Cluster workers use it to prove they reconstructed the coordinator's
/// forest before accepting relation passes.
pub fn forest_fingerprint(forest: &Forest) -> u128 {
    let mut d = xfd_hash::ContentDigest::new();
    d.update_u64(forest.relations.len() as u64);
    for rel in &forest.relations {
        d.update_u64(rel.node_keys.len() as u64);
        for k in &rel.node_keys {
            d.update_u64(u64::from(k.0));
        }
        for &p in &rel.parent_of {
            d.update_u64(u64::from(p));
        }
        d.update_u64(rel.columns.len() as u64);
        for col in &rel.columns {
            d.update_u64(match col.kind {
                ColumnKind::Simple => 0,
                ColumnKind::Complex => 1,
                ColumnKind::SetValue => 2,
            });
            for cell in &col.cells {
                d.update_u64(cell.unwrap_or(NONE_CELL));
            }
        }
    }
    d.update_u64(forest.dictionary.num_strings() as u64);
    for id in 0..forest.dictionary.num_strings() as u64 {
        let s = forest.dictionary.resolve_str(id);
        d.update_u64(s.len() as u64);
        d.update(s.as_bytes());
    }
    d.update_u64(forest.dictionary.num_multisets() as u64);
    for id in 0..forest.dictionary.num_multisets() as u64 {
        let elems = forest.dictionary.resolve_multiset(id);
        d.update_u64(elems.len() as u64);
        for &e in elems {
            d.update_u64(e);
        }
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use xfd_schema::infer_schema;
    use xfd_xml::parse;

    /// Graft documents under a synthetic `<collection>` root exactly as
    /// the core driver's `merge_collection` does.
    fn grafted(trees: &[&DataTree]) -> DataTree {
        let mut w = xfd_xml::builder::TreeWriter::new("collection");
        for t in trees {
            w.copy_subtree(t, t.root());
        }
        w.finish()
    }

    fn assert_forest_eq(a: &Forest, b: &Forest) {
        assert_eq!(a.relations.len(), b.relations.len(), "relation count");
        for (ra, rb) in a.relations.iter().zip(&b.relations) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.name, rb.name, "relation name");
            assert_eq!(ra.pivot_path, rb.pivot_path);
            assert_eq!(ra.parent, rb.parent);
            assert_eq!(ra.node_keys, rb.node_keys, "node keys of {}", ra.name);
            assert_eq!(ra.parent_of, rb.parent_of, "parents of {}", ra.name);
            assert_eq!(ra.columns.len(), rb.columns.len(), "columns of {}", ra.name);
            for (ca, cb) in ra.columns.iter().zip(&rb.columns) {
                assert_eq!(ca.name, cb.name);
                assert_eq!(ca.rel_path, cb.rel_path);
                assert_eq!(ca.kind, cb.kind);
                assert_eq!(ca.cells, cb.cells, "cells of {}.{}", ra.name, ca.name);
            }
        }
        assert_eq!(a.dictionary.num_strings(), b.dictionary.num_strings());
        for id in 0..a.dictionary.num_strings() as u64 {
            assert_eq!(a.dictionary.resolve_str(id), b.dictionary.resolve_str(id));
        }
        assert_eq!(a.dictionary.num_multisets(), b.dictionary.num_multisets());
        for id in 0..a.dictionary.num_multisets() as u64 {
            assert_eq!(
                a.dictionary.resolve_multiset(id),
                b.dictionary.resolve_multiset(id)
            );
        }
    }

    fn check_parity(docs: &[&str], config: &EncodeConfig) {
        let trees: Vec<DataTree> = docs.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let merged = grafted(&refs);
        let schema = infer_schema(&merged);
        let serial = encode(&merged, &schema, config);
        for threads in [1, 4] {
            let sharded = encode_collection(&refs, &schema, config, threads);
            assert_forest_eq(&sharded, &serial);
        }
    }

    const STORES: &[&str] = &[
        "<store><contact><name>Borders</name><address>Seattle</address></contact>\
         <book><ISBN>1-0676-7</ISBN><author>Post</author><title>Dreams</title><price>19.99</price></book>\
         <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
         </store>",
        "<store><contact><name>Borders</name><address>Lexington</address></contact>\
         <book><ISBN>1-55860-438-3</ISBN><author>Ramakrishnan</author><author>Gehrke</author><title>DBMS</title><price>59.99</price></book>\
         </store>",
        "<store><contact><name>WHSmith</name><address>Lexington</address></contact>\
         <book><ISBN>1-55860-438-3</ISBN><author>Gehrke</author><author>Ramakrishnan</author><title>DBMS</title></book>\
         </store>",
    ];

    #[test]
    fn parity_default_config() {
        check_parity(STORES, &EncodeConfig::default());
    }

    #[test]
    fn parity_value_class_mode() {
        check_parity(
            STORES,
            &EncodeConfig {
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_ordered_mode() {
        check_parity(
            STORES,
            &EncodeConfig {
                order: OrderMode::Ordered,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_ordered_value_class() {
        check_parity(
            STORES,
            &EncodeConfig {
                order: OrderMode::Ordered,
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_numeric_values() {
        check_parity(
            &["<r><n>01</n><n>1</n></r>", "<r><n>1.50</n><n>2</n></r>"],
            &EncodeConfig {
                numeric_values: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_no_classes_needed() {
        check_parity(
            STORES,
            &EncodeConfig {
                set_columns: SetColumnMode::None,
                complex_columns: ComplexColumnMode::Omit,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_simple_only_set_columns() {
        check_parity(
            STORES,
            &EncodeConfig {
                set_columns: SetColumnMode::SimpleOnly,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_mixed_root_labels_non_set_roots_land_on_root_relation() {
        // `r` and `s` each appear once: both document roots are non-set
        // complex children of the collection root, exercising the root
        // tuple overlay for Complex (NodeKey) and nested Simple columns.
        check_parity(
            &["<r><a>1</a><c><d>x</d></c></r>", "<s><b>2</b><b>3</b></s>"],
            &EncodeConfig::default(),
        );
        check_parity(
            &["<r><a>1</a><c><d>x</d></c></r>", "<s><b>2</b><b>3</b></s>"],
            &EncodeConfig {
                complex_columns: ComplexColumnMode::ValueClass,
                ..Default::default()
            },
        );
    }

    #[test]
    fn parity_identical_segments_share_classes() {
        let doc = "<store><book><ISBN>X</ISBN><author>A</author><author>B</author></book></store>";
        check_parity(&[doc, doc, doc], &EncodeConfig::default());
    }

    #[test]
    fn parity_single_segment() {
        check_parity(&[STORES[0]], &EncodeConfig::default());
    }

    #[test]
    fn parity_empty_collection() {
        check_parity(&[], &EncodeConfig::default());
    }

    #[test]
    fn partials_merge_identically_regardless_of_build_order() {
        // Partials are position-independent: building them separately and
        // merging in a different arrangement matches serial encoding of
        // the rearranged collection.
        let trees: Vec<DataTree> = STORES.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let schema = infer_schema(&grafted(&refs));
        let map = SchemaMap::new(&schema);
        let config = EncodeConfig::default();
        let parts: Vec<SegmentPartial> = refs
            .iter()
            .map(|t| build_partial(t, &map, &config))
            .collect();

        let rearranged: Vec<&DataTree> = vec![&trees[2], &trees[0], &trees[1]];
        let serial = encode(&grafted(&rearranged), &schema, &config);
        let picked: Vec<&SegmentPartial> = vec![&parts[2], &parts[0], &parts[1]];
        let sharded = merge_partials(SchemaMap::new(&schema), &config, &picked, 1);
        assert_forest_eq(&sharded, &serial);
    }

    fn partial_codec_roundtrip(config: &EncodeConfig) {
        let trees: Vec<DataTree> = STORES.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let schema = infer_schema(&grafted(&refs));
        let map = SchemaMap::new(&schema);
        let parts: Vec<SegmentPartial> = refs
            .iter()
            .map(|t| build_partial(t, &map, config))
            .collect();
        let decoded: Vec<SegmentPartial> = parts
            .iter()
            .map(|p| decode_partial(&encode_partial(p), &map, config).expect("round-trip"))
            .collect();
        let direct: Vec<&SegmentPartial> = parts.iter().collect();
        let wired: Vec<&SegmentPartial> = decoded.iter().collect();
        let a = merge_partials(SchemaMap::new(&schema), config, &direct, 1);
        let b = merge_partials(SchemaMap::new(&schema), config, &wired, 1);
        assert_forest_eq(&a, &b);
        assert_eq!(forest_fingerprint(&a), forest_fingerprint(&b));
    }

    #[test]
    fn partial_codec_roundtrips_default_config() {
        partial_codec_roundtrip(&EncodeConfig::default());
    }

    #[test]
    fn partial_codec_roundtrips_value_class_mode() {
        partial_codec_roundtrip(&EncodeConfig {
            complex_columns: ComplexColumnMode::ValueClass,
            ..Default::default()
        });
    }

    #[test]
    fn partial_codec_roundtrips_without_classes() {
        partial_codec_roundtrip(&EncodeConfig {
            set_columns: SetColumnMode::None,
            complex_columns: ComplexColumnMode::Omit,
            ..Default::default()
        });
    }

    #[test]
    fn partial_decode_rejects_corruption() {
        let tree = parse(STORES[0]).unwrap();
        let refs = [&tree];
        let schema = infer_schema(&grafted(&refs));
        let map = SchemaMap::new(&schema);
        let config = EncodeConfig::default();
        let bytes = encode_partial(&build_partial(&tree, &map, &config));
        assert_eq!(
            decode_partial(b"nope", &map, &config).err(),
            Some(DecodeError::BadMagic)
        );
        // Every strict prefix fails; none panics or yields a partial.
        for cut in 0..bytes.len() {
            assert!(
                decode_partial(&bytes[..cut], &map, &config).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_partial(&trailing, &map, &config).err(),
            Some(DecodeError::TrailingBytes)
        );
        // Single-byte corruption must never panic (errors or a valid but
        // different partial are both acceptable).
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0xff;
            let _ = decode_partial(&dirty, &map, &config);
        }
        // A mismatched plan (different class-table expectations) is typed.
        let no_classes = EncodeConfig {
            set_columns: SetColumnMode::None,
            complex_columns: ComplexColumnMode::Omit,
            ..Default::default()
        };
        assert!(decode_partial(&bytes, &map, &no_classes).is_err());
    }

    #[test]
    fn forest_fingerprint_tracks_content() {
        let trees: Vec<DataTree> = STORES.iter().map(|d| parse(d).unwrap()).collect();
        let refs: Vec<&DataTree> = trees.iter().collect();
        let schema = infer_schema(&grafted(&refs));
        let config = EncodeConfig::default();
        let a = encode_collection(&refs, &schema, &config, 1);
        let b = encode_collection(&refs, &schema, &config, 4);
        assert_eq!(forest_fingerprint(&a), forest_fingerprint(&b));
        let fewer: Vec<&DataTree> = trees.iter().take(2).collect();
        let schema2 = infer_schema(&grafted(&fewer));
        let c = encode_collection(&fewer, &schema2, &config, 1);
        assert_ne!(forest_fingerprint(&a), forest_fingerprint(&c));
    }
}
