//! Property tests for schema inference: inferred schemas always admit the
//! data they were inferred from, and inference is stable under
//! serialization round-trips.

use proptest::prelude::*;
use xfd_schema::{check, infer_schema, nested_representation, SchemaMap};
use xfd_xml::builder::TreeWriter;
use xfd_xml::{parse, to_xml_string, DataTree};

#[derive(Debug, Clone)]
enum Node {
    Leaf(u8),
    Inner(Vec<(u8, Node)>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = (0u8..6).prop_map(Node::Leaf);
    leaf.prop_recursive(3, 20, 4, |inner| {
        proptest::collection::vec((0u8..3, inner), 0..4).prop_map(Node::Inner)
    })
}

fn build(node: &Node) -> DataTree {
    let mut w = TreeWriter::new("root");
    fn emit(w: &mut TreeWriter, label: u8, node: &Node) {
        match node {
            Node::Leaf(v) => {
                w.leaf(&format!("e{label}"), &format!("v{v}"));
            }
            Node::Inner(children) => {
                w.open(&format!("e{label}"));
                for (l, c) in children {
                    emit(w, *l, c);
                }
                w.close();
            }
        }
    }
    if let Node::Inner(children) = node {
        for (l, c) in children {
            emit(&mut w, *l, c);
        }
    }
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Soundness: a document always conforms to its own inferred schema.
    #[test]
    fn inferred_schema_admits_its_document(node in node_strategy()) {
        let tree = build(&node);
        let schema = infer_schema(&tree);
        prop_assert_eq!(check(&tree, &schema), Ok(()));
    }

    /// Stability: inference commutes with serialize∘parse.
    #[test]
    fn inference_stable_under_roundtrip(node in node_strategy()) {
        let tree = build(&node);
        let schema1 = infer_schema(&tree);
        let reparsed = parse(&to_xml_string(&tree)).unwrap();
        let schema2 = infer_schema(&reparsed);
        prop_assert_eq!(
            nested_representation(&schema1),
            nested_representation(&schema2)
        );
    }

    /// SchemaMap structure invariants: every element's owner pivot is an
    /// ancestor-or-root pivot, and pivots' owners form a tree.
    #[test]
    fn schema_map_invariants(node in node_strategy()) {
        let tree = build(&node);
        let schema = infer_schema(&tree);
        let map = SchemaMap::new(&schema);
        for e in map.elements() {
            if let Some(op) = e.owner_pivot {
                let owner = map.get(op);
                prop_assert!(owner.is_pivot());
                prop_assert!(
                    owner.path.is_prefix_of(&e.path),
                    "owner {} not a prefix of {}", owner.path, e.path
                );
            } else {
                prop_assert!(e.parent.is_none(), "only the root lacks an owner");
            }
        }
        // attributes_of ∪ child_pivots_of partitions the non-root elements.
        let mut covered = 0usize;
        for p in map.pivots() {
            covered += map.attributes_of(p).len() + map.child_pivots_of(p).len();
        }
        prop_assert_eq!(covered, map.len() - 1);
    }
}
