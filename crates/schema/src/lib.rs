#![warn(missing_docs)]
//! # xfd-schema
//!
//! Schema model for the DiscoverXFD system — Definition 1 of the paper:
//! a schema `S = (E, T, r)` with element types
//!
//! ```text
//! τ ::= str | int | float | SetOf τ | Rcd[e1: τ1, ..., en: τn] | Choice[...]
//! ```
//!
//! rendered in the *nested relational representation* of the paper's
//! Figure 2. The crate provides:
//!
//! * the type model itself ([`ElementType`], [`Schema`]);
//! * schema inference from data trees ([`infer_schema`]) — an element
//!   is `SetOf` iff some parent instance holds two or more children with the
//!   same label; leaf types are the tightest of `int`/`float`/`str`;
//! * conformance checking ([`check`]);
//! * [`SchemaMap`]: a flattened index over all schema element paths with the
//!   prefix structure FD discovery needs — repeatable paths, lowest
//!   repeatable ancestors (Theorem 1) and essential pivot paths
//!   (Section 3.2.2).

pub mod conformance;
pub mod diff;
pub mod fixtures;
pub mod infer;
pub mod map;
pub mod render;
pub mod types;
pub mod xsd;

pub use conformance::{check, ConformanceError};
pub use infer::{infer_schema, infer_schema_from_summaries, summarize, SchemaSummary};
pub use map::{ElemId, SchemaElement, SchemaMap};
pub use render::nested_representation;
pub use types::{ElementType, Field, Schema, SimpleType};
