//! Rendering of a schema in the nested relational representation of the
//! paper's Figure 2.

use std::fmt::Write as _;

use crate::types::{ElementType, Schema};

/// Render `schema` in the paper's Figure 2 style:
///
/// ```text
/// warehouse: Rcd
///   state: SetOf Rcd
///     name: str
///     store: SetOf Rcd
///       ...
/// ```
pub fn nested_representation(schema: &Schema) -> String {
    let mut out = String::new();
    render_field(&mut out, schema.root_label(), &schema.root().ty, 0);
    out
}

fn render_field(out: &mut String, name: &str, ty: &ElementType, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = writeln!(out, "{name}: {ty}");
    if let Some(fields) = ty.fields() {
        for f in fields {
            render_field(out, &f.name, &f.ty, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::warehouse_schema;

    #[test]
    fn warehouse_renders_like_figure_2() {
        let text = nested_representation(&warehouse_schema());
        let expected = "\
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
";
        assert_eq!(text, expected);
    }

    #[test]
    fn choice_renders_with_keyword() {
        use crate::types::{ElementType, Field, Schema};
        let s = Schema::new(Field::new(
            "r",
            ElementType::Choice(vec![Field::new("a", ElementType::int())]),
        ));
        let text = nested_representation(&s);
        assert!(text.contains("r: Choice"));
        assert!(text.contains("  a: int"));
    }
}
