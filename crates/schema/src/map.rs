//! [`SchemaMap`]: a flattened, indexed view of all schema elements.
//!
//! FD discovery needs path/prefix structure that is awkward to recompute
//! against the recursive [`Schema`] type:
//!
//! * the set of **repeatable paths** (Section 2.1) — each is the pivot path
//!   of an *essential tuple class* (Section 3.2.2) and maps to one relation
//!   of the hierarchical representation (Figure 6);
//! * every element's **lowest repeatable ancestor** (Theorem 1), which
//!   decides which relation the element's data lands in;
//! * the parent/child structure among pivots, i.e. the relation tree that
//!   `DiscoverXFD` walks bottom-up.
//!
//! The document root acts as a synthetic top pivot: its (single-tuple)
//! relation anchors root-level non-repeatable elements and gives top-level
//! set elements a parent relation. It is *not* an essential tuple class in
//! the paper's sense, and the discovery layer never reports FDs pivoted on
//! it (Definition 10 filters them).

use std::collections::HashMap;

use xfd_xml::Path;

use crate::types::{ElementType, Schema, SimpleType};

/// Index of an element within a [`SchemaMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub u32);

impl ElemId {
    /// Arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One schema element with its precomputed structure.
#[derive(Debug, Clone)]
pub struct SchemaElement {
    /// This element's id.
    pub id: ElemId,
    /// Absolute path of the element.
    pub path: Path,
    /// The element label (last path component).
    pub label: String,
    /// Is the associated type `SetOf τ`?
    pub is_set: bool,
    /// Is the type (under any `SetOf`) simple?
    pub is_simple: bool,
    /// For simple(-ish) elements, the simple type.
    pub simple_type: Option<SimpleType>,
    /// Parent element (`None` for the root).
    pub parent: Option<ElemId>,
    /// The pivot element whose relation owns this element's data: the
    /// element at the longest repeatable **proper** prefix of `path`, or the
    /// root when there is none. `None` only for the root itself.
    pub owner_pivot: Option<ElemId>,
    /// Is the parent type a `Choice`?
    pub in_choice: bool,
}

impl SchemaElement {
    /// Is this element a pivot (root or set element)?
    pub fn is_pivot(&self) -> bool {
        self.is_set || self.parent.is_none()
    }
}

/// Flattened schema with prefix structure; see the module docs.
#[derive(Debug, Clone)]
pub struct SchemaMap {
    elements: Vec<SchemaElement>,
    by_path: HashMap<String, ElemId>,
    children: Vec<Vec<ElemId>>,
}

impl SchemaMap {
    /// Build the map from a schema.
    pub fn new(schema: &Schema) -> Self {
        let mut map = SchemaMap {
            elements: Vec::new(),
            by_path: HashMap::new(),
            children: Vec::new(),
        };
        let root_path = Path::absolute([schema.root_label()]);
        let root_id = map.push(SchemaElement {
            id: ElemId(0),
            path: root_path,
            label: schema.root_label().to_string(),
            is_set: false,
            is_simple: schema.root().ty.is_simple(),
            simple_type: simple_of(&schema.root().ty),
            parent: None,
            owner_pivot: None,
            in_choice: false,
        });
        map.walk(&schema.root().ty, root_id, root_id);
        map
    }

    fn push(&mut self, mut elem: SchemaElement) -> ElemId {
        let id = ElemId(self.elements.len() as u32);
        elem.id = id;
        self.by_path.insert(elem.path.to_string(), id);
        self.elements.push(elem);
        self.children.push(Vec::new());
        id
    }

    fn walk(&mut self, ty: &ElementType, parent: ElemId, nearest_pivot: ElemId) {
        let in_choice = matches!(ty.unwrap_set(), ElementType::Choice(_));
        let Some(fields) = ty.fields() else { return };
        let fields = fields.to_vec();
        for field in fields {
            let is_set = field.ty.is_set();
            let path = self.elements[parent.index()].path.child(&field.name);
            let id = self.push(SchemaElement {
                id: ElemId(0),
                path,
                label: field.name.clone(),
                is_set,
                is_simple: field.ty.is_simple(),
                simple_type: simple_of(&field.ty),
                parent: Some(parent),
                owner_pivot: Some(nearest_pivot),
                in_choice,
            });
            self.children[parent.index()].push(id);
            let next_pivot = if is_set { id } else { nearest_pivot };
            self.walk(&field.ty, id, next_pivot);
        }
    }

    /// The root element id (always `ElemId(0)`).
    pub fn root(&self) -> ElemId {
        ElemId(0)
    }

    /// All elements, in schema DFS order.
    pub fn elements(&self) -> &[SchemaElement] {
        &self.elements
    }

    /// Element by id.
    pub fn get(&self, id: ElemId) -> &SchemaElement {
        &self.elements[id.index()]
    }

    /// Element by absolute path.
    pub fn by_path(&self, path: &Path) -> Option<ElemId> {
        self.by_path.get(&path.to_string()).copied()
    }

    /// Direct schema children of an element.
    pub fn children_of(&self, id: ElemId) -> &[ElemId] {
        &self.children[id.index()]
    }

    /// All pivots: the root plus every set element, in DFS order (so a
    /// pivot always precedes its descendant pivots).
    pub fn pivots(&self) -> Vec<ElemId> {
        self.elements
            .iter()
            .filter(|e| e.is_pivot())
            .map(|e| e.id)
            .collect()
    }

    /// Essential pivots only (set elements, excluding the synthetic root
    /// pivot) — the essential tuple classes of Section 3.2.2.
    pub fn essential_pivots(&self) -> Vec<ElemId> {
        self.elements
            .iter()
            .filter(|e| e.is_set)
            .map(|e| e.id)
            .collect()
    }

    /// The non-set elements whose data lives in `pivot`'s relation: elements
    /// `e ≠ root` with `owner_pivot(e) == pivot` and `e` not a set element.
    /// These are the relation's ordinary columns (simple and complex), in
    /// DFS order — matching Figure 6.
    pub fn attributes_of(&self, pivot: ElemId) -> Vec<ElemId> {
        self.elements
            .iter()
            .filter(|e| !e.is_set && e.parent.is_some() && e.owner_pivot == Some(pivot))
            .map(|e| e.id)
            .collect()
    }

    /// The set elements directly governed by `pivot`'s relation — the child
    /// relations in the hierarchical representation.
    pub fn child_pivots_of(&self, pivot: ElemId) -> Vec<ElemId> {
        self.elements
            .iter()
            .filter(|e| e.is_set && e.owner_pivot == Some(pivot))
            .map(|e| e.id)
            .collect()
    }

    /// The owning pivot of an arbitrary element: itself if it is a pivot,
    /// otherwise its lowest repeatable ancestor (or the root).
    pub fn pivot_of(&self, id: ElemId) -> ElemId {
        let e = self.get(id);
        if e.is_pivot() {
            id
        } else {
            e.owner_pivot
                .expect("non-root elements have an owner pivot")
        }
    }

    /// The relation-tree parent of a pivot: the pivot owning its data.
    /// `None` for the root pivot.
    pub fn parent_pivot_of(&self, pivot: ElemId) -> Option<ElemId> {
        self.get(pivot).owner_pivot
    }

    /// Number of schema elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the schema has no elements (impossible via `new`).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

fn simple_of(ty: &ElementType) -> Option<SimpleType> {
    match ty.unwrap_set() {
        ElementType::Simple(s) => Some(*s),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::warehouse_schema;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn map() -> SchemaMap {
        SchemaMap::new(&warehouse_schema())
    }

    #[test]
    fn all_figure_2_elements_are_present() {
        let m = map();
        for path in [
            "/warehouse",
            "/warehouse/state",
            "/warehouse/state/name",
            "/warehouse/state/store",
            "/warehouse/state/store/contact",
            "/warehouse/state/store/contact/name",
            "/warehouse/state/store/contact/address",
            "/warehouse/state/store/book",
            "/warehouse/state/store/book/ISBN",
            "/warehouse/state/store/book/author",
            "/warehouse/state/store/book/title",
            "/warehouse/state/store/book/price",
        ] {
            assert!(m.by_path(&p(path)).is_some(), "missing {path}");
        }
        assert_eq!(m.len(), 12);
    }

    #[test]
    fn pivots_are_root_plus_set_elements() {
        let m = map();
        let pivot_paths: Vec<String> = m
            .pivots()
            .iter()
            .map(|&id| m.get(id).path.to_string())
            .collect();
        assert_eq!(
            pivot_paths,
            vec![
                "/warehouse",
                "/warehouse/state",
                "/warehouse/state/store",
                "/warehouse/state/store/book",
                "/warehouse/state/store/book/author",
            ]
        );
        // Essential pivots exclude the root.
        assert_eq!(m.essential_pivots().len(), 4);
    }

    #[test]
    fn attributes_match_figure_6() {
        let m = map();
        let store = m.by_path(&p("/warehouse/state/store")).unwrap();
        let attrs: Vec<String> = m
            .attributes_of(store)
            .iter()
            .map(|&id| m.get(id).path.to_string())
            .collect();
        assert_eq!(
            attrs,
            vec![
                "/warehouse/state/store/contact",
                "/warehouse/state/store/contact/name",
                "/warehouse/state/store/contact/address",
            ]
        );
        let book = m.by_path(&p("/warehouse/state/store/book")).unwrap();
        let attrs: Vec<String> = m
            .attributes_of(book)
            .iter()
            .map(|&id| m.get(id).label.clone())
            .collect();
        assert_eq!(attrs, vec!["ISBN", "title", "price"]);
    }

    #[test]
    fn child_pivots_form_the_relation_tree() {
        let m = map();
        let root = m.root();
        let state = m.by_path(&p("/warehouse/state")).unwrap();
        let store = m.by_path(&p("/warehouse/state/store")).unwrap();
        let book = m.by_path(&p("/warehouse/state/store/book")).unwrap();
        let author = m.by_path(&p("/warehouse/state/store/book/author")).unwrap();
        assert_eq!(m.child_pivots_of(root), vec![state]);
        assert_eq!(m.child_pivots_of(state), vec![store]);
        assert_eq!(m.child_pivots_of(store), vec![book]);
        assert_eq!(m.child_pivots_of(book), vec![author]);
        assert_eq!(m.parent_pivot_of(book), Some(store));
        assert_eq!(m.parent_pivot_of(root), None);
    }

    #[test]
    fn owner_pivot_is_lowest_repeatable_ancestor() {
        let m = map();
        let cname = m
            .by_path(&p("/warehouse/state/store/contact/name"))
            .unwrap();
        let store = m.by_path(&p("/warehouse/state/store")).unwrap();
        assert_eq!(m.pivot_of(cname), store);
        // state/name is owned by the state pivot.
        let sname = m.by_path(&p("/warehouse/state/name")).unwrap();
        let state = m.by_path(&p("/warehouse/state")).unwrap();
        assert_eq!(m.pivot_of(sname), state);
    }

    #[test]
    fn root_level_attributes_belong_to_root_pivot() {
        use crate::types::{ElementType, Field, Schema};
        let s = Schema::new(Field::new(
            "db",
            ElementType::Rcd(vec![
                Field::new("version", ElementType::str()),
                Field::new("item", ElementType::set_of(ElementType::str())),
            ]),
        ));
        let m = SchemaMap::new(&s);
        let version = m.by_path(&p("/db/version")).unwrap();
        assert_eq!(m.pivot_of(version), m.root());
        assert_eq!(m.attributes_of(m.root()), vec![version]);
    }

    #[test]
    fn choice_membership_is_tracked() {
        use crate::types::{ElementType, Field, Schema};
        let s = Schema::new(Field::new(
            "r",
            ElementType::Choice(vec![
                Field::new("a", ElementType::str()),
                Field::new("b", ElementType::str()),
            ]),
        ));
        let m = SchemaMap::new(&s);
        let a = m.by_path(&p("/r/a")).unwrap();
        assert!(m.get(a).in_choice);
    }
}
