//! Shared schema fixtures used by tests across the workspace.

use crate::types::{ElementType, Field, Schema};

/// The schema of the paper's Figure 2 (the `warehouse` document).
pub fn warehouse_schema() -> Schema {
    Schema::new(Field::new(
        "warehouse",
        ElementType::Rcd(vec![Field::new(
            "state",
            ElementType::set_of(ElementType::Rcd(vec![
                Field::new("name", ElementType::str()),
                Field::new(
                    "store",
                    ElementType::set_of(ElementType::Rcd(vec![
                        Field::new(
                            "contact",
                            ElementType::Rcd(vec![
                                Field::new("name", ElementType::str()),
                                Field::new("address", ElementType::str()),
                            ]),
                        ),
                        Field::new(
                            "book",
                            ElementType::set_of(ElementType::Rcd(vec![
                                Field::new("ISBN", ElementType::str()),
                                Field::new("author", ElementType::set_of(ElementType::str())),
                                Field::new("title", ElementType::str()),
                                Field::new("price", ElementType::str()),
                            ])),
                        ),
                    ])),
                ),
            ])),
        )]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warehouse_schema_is_well_formed() {
        let s = warehouse_schema();
        assert_eq!(s.root_label(), "warehouse");
        assert!(s.is_repeatable_path(&"/warehouse/state/store".parse().unwrap()));
    }
}
