//! Schema drift: compare two (usually inferred) schemas — which elements
//! appeared, disappeared, changed type, or changed cardinality. Pairs with
//! the constraint drift of `discoverxfd::diff` for version audits.

use std::collections::BTreeMap;
use std::fmt;

use crate::map::SchemaMap;
use crate::types::Schema;

/// One element-level change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaChange {
    /// Element exists only in the new schema.
    Added {
        /// Absolute path.
        path: String,
        /// Rendered type.
        ty: String,
    },
    /// Element exists only in the old schema.
    Removed {
        /// Absolute path.
        path: String,
    },
    /// Element changed between scalar kinds (e.g. `int` → `str`) or
    /// between simple and complex.
    TypeChanged {
        /// Absolute path.
        path: String,
        /// Old rendered type.
        old: String,
        /// New rendered type.
        new: String,
    },
    /// Element changed multiplicity (`SetOf` gained or lost).
    CardinalityChanged {
        /// Absolute path.
        path: String,
        /// Is it a set element now?
        now_set: bool,
    },
}

impl fmt::Display for SchemaChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaChange::Added { path, ty } => write!(f, "+ {path}: {ty}"),
            SchemaChange::Removed { path } => write!(f, "- {path}"),
            SchemaChange::TypeChanged { path, old, new } => {
                write!(f, "~ {path}: {old} -> {new}")
            }
            SchemaChange::CardinalityChanged { path, now_set } => {
                if *now_set {
                    write!(f, "~ {path}: became a set element (SetOf)")
                } else {
                    write!(f, "~ {path}: no longer a set element")
                }
            }
        }
    }
}

/// Render an element's effective type for reporting.
fn type_string(map: &SchemaMap, id: crate::map::ElemId) -> String {
    let e = map.get(id);
    let base = match e.simple_type {
        Some(st) => st.to_string(),
        None => "Rcd".to_string(),
    };
    if e.is_set {
        format!("SetOf {base}")
    } else {
        base
    }
}

/// Compute element-level changes from `old` to `new`.
pub fn diff_schemas(old: &Schema, new: &Schema) -> Vec<SchemaChange> {
    let old_map = SchemaMap::new(old);
    let new_map = SchemaMap::new(new);
    let index = |map: &SchemaMap| -> BTreeMap<String, (bool, String)> {
        map.elements()
            .iter()
            .map(|e| (e.path.to_string(), (e.is_set, type_string(map, e.id))))
            .collect()
    };
    let old_idx = index(&old_map);
    let new_idx = index(&new_map);
    let mut changes = Vec::new();
    for (path, (old_set, old_ty)) in &old_idx {
        match new_idx.get(path) {
            None => changes.push(SchemaChange::Removed { path: path.clone() }),
            Some((new_set, new_ty)) => {
                if old_set != new_set {
                    changes.push(SchemaChange::CardinalityChanged {
                        path: path.clone(),
                        now_set: *new_set,
                    });
                }
                // Compare base type ignoring the SetOf wrapper (cardinality
                // is reported separately).
                let strip = |t: &str| t.trim_start_matches("SetOf ").to_string();
                if strip(old_ty) != strip(new_ty) {
                    changes.push(SchemaChange::TypeChanged {
                        path: path.clone(),
                        old: old_ty.clone(),
                        new: new_ty.clone(),
                    });
                }
            }
        }
    }
    for (path, (_, ty)) in &new_idx {
        if !old_idx.contains_key(path) {
            changes.push(SchemaChange::Added {
                path: path.clone(),
                ty: ty.clone(),
            });
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_schema;
    use xfd_xml::parse;

    fn schema_of(xml: &str) -> Schema {
        infer_schema(&parse(xml).unwrap())
    }

    #[test]
    fn identical_schemas_have_no_changes() {
        let s = schema_of("<r><a>1</a><b><c>x</c></b></r>");
        assert!(diff_schemas(&s, &s).is_empty());
    }

    #[test]
    fn added_and_removed_elements() {
        let old = schema_of("<r><a>1</a></r>");
        let new = schema_of("<r><b>2</b></r>");
        let changes = diff_schemas(&old, &new);
        assert!(changes.contains(&SchemaChange::Removed {
            path: "/r/a".into()
        }));
        assert!(changes
            .iter()
            .any(|c| matches!(c, SchemaChange::Added { path, .. } if path == "/r/b")));
    }

    #[test]
    fn type_changes_are_detected() {
        let old = schema_of("<r><a>1</a></r>"); // int
        let new = schema_of("<r><a>one</a></r>"); // str
        let changes = diff_schemas(&old, &new);
        assert!(changes
            .iter()
            .any(|c| matches!(c, SchemaChange::TypeChanged { path, old, new }
                if path == "/r/a" && old == "int" && new == "str")));
    }

    #[test]
    fn cardinality_changes_are_detected() {
        let old = schema_of("<r><a>1</a></r>");
        let new = schema_of("<r><a>1</a><a>2</a></r>");
        let changes = diff_schemas(&old, &new);
        assert!(changes.iter().any(|c| matches!(
            c,
            SchemaChange::CardinalityChanged { path, now_set: true } if path == "/r/a"
        )));
        // Type itself (int) unchanged → no TypeChanged entry.
        assert!(!changes
            .iter()
            .any(|c| matches!(c, SchemaChange::TypeChanged { .. })));
    }

    #[test]
    fn simple_to_complex_is_a_type_change() {
        let old = schema_of("<r><a>1</a></r>");
        let new = schema_of("<r><a><x>1</x></a></r>");
        let changes = diff_schemas(&old, &new);
        assert!(changes
            .iter()
            .any(|c| matches!(c, SchemaChange::TypeChanged { path, new, .. }
                if path == "/r/a" && new == "Rcd")));
    }

    #[test]
    fn display_forms_are_compact() {
        let c = SchemaChange::Added {
            path: "/r/x".into(),
            ty: "str".into(),
        };
        assert_eq!(c.to_string(), "+ /r/x: str");
    }
}
