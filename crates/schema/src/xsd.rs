//! Export a schema as W3C XML Schema (XSD) text — so inferred schemas can
//! feed standard tooling. The mapping follows Definition 1's
//! correspondence to XML Schema constructs (the paper notes its types are
//! "the core constructs in XML Schema"):
//!
//! * `Rcd` → `xs:complexType` with `xs:sequence` (order was ignored, so a
//!   sequence in first-seen order is emitted);
//! * `Choice` → `xs:choice`;
//! * `SetOf τ` → `maxOccurs="unbounded"` on the element;
//! * `str`/`int`/`float` → `xs:string`/`xs:integer`/`xs:decimal`;
//! * `@name` fields → `xs:attribute` (the inverse of the parser's
//!   attributes-as-children encoding); the synthetic `@text` field becomes
//!   `mixed="true"` on its parent.
//!
//! Inference cannot observe optionality guarantees, so every child element
//! is emitted with `minOccurs="0"` (the weakest sound cardinality).

use std::fmt::Write as _;

use crate::types::{ElementType, Field, Schema, SimpleType};

fn xsd_simple(st: SimpleType) -> &'static str {
    match st {
        SimpleType::Int => "xs:integer",
        SimpleType::Float => "xs:decimal",
        SimpleType::Str => "xs:string",
    }
}

/// Render the schema as an XSD document.
pub fn to_xsd(schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    render_element(&mut out, schema.root(), false, 1);
    out.push_str("</xs:schema>\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_element(out: &mut String, field: &Field, inside: bool, depth: usize) {
    debug_assert!(!field.name.starts_with('@'), "attributes render separately");
    let occurs = if field.ty.is_set() {
        " minOccurs=\"0\" maxOccurs=\"unbounded\""
    } else if inside {
        " minOccurs=\"0\""
    } else {
        ""
    };
    match field.ty.unwrap_set() {
        ElementType::Simple(st) => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "<xs:element name=\"{}\" type=\"{}\"{occurs}/>",
                field.name,
                xsd_simple(*st)
            );
        }
        ElementType::Rcd(fields) | ElementType::Choice(fields) => {
            let is_choice = matches!(field.ty.unwrap_set(), ElementType::Choice(_));
            let (attrs, elems): (Vec<&Field>, Vec<&Field>) =
                fields.iter().partition(|f| f.name.starts_with('@'));
            let mixed = attrs.iter().any(|f| f.name == "@text");
            indent(out, depth);
            let _ = writeln!(out, "<xs:element name=\"{}\"{occurs}>", field.name);
            indent(out, depth + 1);
            let _ = writeln!(
                out,
                "<xs:complexType{}>",
                if mixed { " mixed=\"true\"" } else { "" }
            );
            if !elems.is_empty() {
                indent(out, depth + 2);
                let _ = writeln!(
                    out,
                    "<{}>",
                    if is_choice {
                        "xs:choice"
                    } else {
                        "xs:sequence"
                    }
                );
                for f in &elems {
                    render_element(out, f, true, depth + 3);
                }
                indent(out, depth + 2);
                let _ = writeln!(
                    out,
                    "</{}>",
                    if is_choice {
                        "xs:choice"
                    } else {
                        "xs:sequence"
                    }
                );
            }
            for f in attrs.iter().filter(|f| f.name != "@text") {
                let st = match f.ty.unwrap_set() {
                    ElementType::Simple(st) => *st,
                    _ => SimpleType::Str,
                };
                indent(out, depth + 2);
                let _ = writeln!(
                    out,
                    "<xs:attribute name=\"{}\" type=\"{}\"/>",
                    &f.name[1..],
                    xsd_simple(st)
                );
            }
            indent(out, depth + 1);
            out.push_str("</xs:complexType>\n");
            indent(out, depth);
            out.push_str("</xs:element>\n");
        }
        ElementType::SetOf(_) => unreachable!("unwrap_set strips SetOf"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::warehouse_schema;
    use crate::infer::infer_schema;
    use xfd_xml::parse;

    #[test]
    fn warehouse_xsd_has_the_expected_constructs() {
        let xsd = to_xsd(&warehouse_schema());
        assert!(xsd.starts_with("<?xml"));
        assert!(xsd.contains("<xs:element name=\"warehouse\">"), "{xsd}");
        assert!(
            xsd.contains("<xs:element name=\"state\" minOccurs=\"0\" maxOccurs=\"unbounded\">"),
            "{xsd}"
        );
        assert!(
            xsd.contains("<xs:element name=\"author\" type=\"xs:string\" minOccurs=\"0\" maxOccurs=\"unbounded\"/>"),
            "{xsd}"
        );
        assert!(xsd.contains("<xs:sequence>"));
        assert!(xsd.trim_end().ends_with("</xs:schema>"));
    }

    #[test]
    fn xsd_is_well_formed_xml() {
        // Our own parser can check well-formedness of our own XSD output.
        let xsd = to_xsd(&warehouse_schema());
        let tree = parse(&xsd).expect("XSD parses as XML");
        assert_eq!(tree.label(tree.root()), "xs:schema");
    }

    #[test]
    fn attributes_render_as_xs_attribute() {
        let t = parse("<r><item id=\"1\"/><item id=\"2\"/></r>").unwrap();
        let xsd = to_xsd(&infer_schema(&t));
        assert!(
            xsd.contains("<xs:attribute name=\"id\" type=\"xs:integer\"/>"),
            "{xsd}"
        );
    }

    #[test]
    fn mixed_content_renders_mixed_true() {
        let t = parse("<r><p>text <b>bold</b></p><p>x <b>y</b></p></r>").unwrap();
        let xsd = to_xsd(&infer_schema(&t));
        assert!(xsd.contains("mixed=\"true\""), "{xsd}");
        assert!(
            !xsd.contains("@text"),
            "synthetic field must not leak: {xsd}"
        );
    }

    #[test]
    fn numeric_leaf_types_map_to_xsd_types() {
        let t = parse("<r><n>1</n><n>2</n><f>1.5</f><f>2</f></r>").unwrap();
        let xsd = to_xsd(&infer_schema(&t));
        assert!(xsd.contains("name=\"n\" type=\"xs:integer\""), "{xsd}");
        assert!(xsd.contains("name=\"f\" type=\"xs:decimal\""), "{xsd}");
    }
}
