//! Conformance checking: does a data tree conform to a schema?
//!
//! The paper adopts the conformance notion of XML Schema and assumes all
//! data trees conform. This module verifies that assumption and reports
//! every violation (not just the first), so the CLI can explain why an
//! inferred schema does or does not fit other documents.

use std::collections::HashMap;
use std::fmt;

use xfd_xml::{DataTree, NodeId};

use crate::types::{ElementType, Schema};

/// One conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The document root has a different label than the schema root.
    RootLabelMismatch {
        /// Label required by the schema.
        expected: String,
        /// Label found in the document.
        found: String,
    },
    /// A node whose label is not declared under its parent's type.
    UndeclaredElement {
        /// Offending node.
        node: NodeId,
        /// Its label.
        label: String,
    },
    /// Two or more same-labeled children under a parent whose type for that
    /// label is not `SetOf`.
    MultiplicityViolation {
        /// The parent node.
        parent: NodeId,
        /// The repeated label.
        label: String,
        /// How many occurrences were found.
        count: usize,
    },
    /// A leaf value outside its declared simple type's domain.
    ValueTypeMismatch {
        /// Offending node.
        node: NodeId,
        /// The offending value.
        value: String,
        /// The declared type, rendered.
        expected: String,
    },
    /// A value directly on an element with a complex type that has no
    /// `@text` field to absorb it.
    ValueOnComplexElement {
        /// Offending node.
        node: NodeId,
    },
    /// A `Choice` element with zero or multiple alternatives present.
    ChoiceViolation {
        /// The choice-typed node.
        node: NodeId,
        /// Number of distinct alternatives present.
        present: usize,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::RootLabelMismatch { expected, found } => {
                write!(
                    f,
                    "root label mismatch: expected <{expected}>, found <{found}>"
                )
            }
            ConformanceError::UndeclaredElement { node, label } => {
                write!(f, "node {} has undeclared label {label:?}", node.0)
            }
            ConformanceError::MultiplicityViolation {
                parent,
                label,
                count,
            } => write!(
                f,
                "node {} has {count} children labeled {label:?} but the schema type is not SetOf",
                parent.0
            ),
            ConformanceError::ValueTypeMismatch {
                node,
                value,
                expected,
            } => {
                write!(
                    f,
                    "node {} value {value:?} is not a valid {expected}",
                    node.0
                )
            }
            ConformanceError::ValueOnComplexElement { node } => {
                write!(f, "node {} carries a value but its type is complex", node.0)
            }
            ConformanceError::ChoiceViolation { node, present } => write!(
                f,
                "node {} is Choice-typed but {present} alternatives are present",
                node.0
            ),
        }
    }
}

/// Check `tree` against `schema`; `Ok(())` or every violation found.
pub fn check(tree: &DataTree, schema: &Schema) -> Result<(), Vec<ConformanceError>> {
    let mut errors = Vec::new();
    let root = tree.root();
    if tree.label(root) != schema.root_label() {
        errors.push(ConformanceError::RootLabelMismatch {
            expected: schema.root_label().to_string(),
            found: tree.label(root).to_string(),
        });
        return Err(errors);
    }
    check_node(tree, root, &schema.root().ty, &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn check_node(tree: &DataTree, node: NodeId, ty: &ElementType, errors: &mut Vec<ConformanceError>) {
    let base = ty.unwrap_set();
    match base {
        ElementType::Simple(st) => {
            if let Some(v) = tree.value(node) {
                if !st.admits(v) {
                    errors.push(ConformanceError::ValueTypeMismatch {
                        node,
                        value: v.to_string(),
                        expected: st.to_string(),
                    });
                }
            }
            for &c in tree.children(node) {
                errors.push(ConformanceError::UndeclaredElement {
                    node: c,
                    label: tree.label(c).to_string(),
                });
            }
        }
        ElementType::Rcd(fields) | ElementType::Choice(fields) => {
            if tree.value(node).is_some() && !fields.iter().any(|f| f.name == "@text") {
                errors.push(ConformanceError::ValueOnComplexElement { node });
            }
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for &c in tree.children(node) {
                *counts.entry(tree.label(c)).or_insert(0) += 1;
            }
            if matches!(base, ElementType::Choice(_)) {
                let present = counts.len();
                if present != 1 {
                    errors.push(ConformanceError::ChoiceViolation { node, present });
                }
            }
            for &c in tree.children(node) {
                let label = tree.label(c);
                match fields.iter().find(|f| f.name == label) {
                    Some(field) => {
                        if !field.ty.is_set() && counts[label] > 1 {
                            // Report once per (parent, label).
                            let already = errors.iter().any(|e| {
                                matches!(e, ConformanceError::MultiplicityViolation { parent, label: l, .. }
                                    if *parent == node && l == label)
                            });
                            if !already {
                                errors.push(ConformanceError::MultiplicityViolation {
                                    parent: node,
                                    label: label.to_string(),
                                    count: counts[label],
                                });
                            }
                        }
                        check_node(tree, c, &field.ty, errors);
                    }
                    None => errors.push(ConformanceError::UndeclaredElement {
                        node: c,
                        label: label.to_string(),
                    }),
                }
            }
        }
        ElementType::SetOf(_) => unreachable!("unwrap_set removed the SetOf layer"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_schema;
    use crate::types::{Field, SimpleType};
    use xfd_xml::parse;

    #[test]
    fn inferred_schema_always_conforms() {
        for xml in [
            "<r><a>1</a><a>2</a></r>",
            "<warehouse><state><name>WA</name></state></warehouse>",
            "<r><a><b x='1'>t</b></a><a>plain</a></r>",
        ] {
            let t = parse(xml).unwrap();
            let s = infer_schema(&t);
            assert_eq!(check(&t, &s), Ok(()), "{xml}");
        }
    }

    #[test]
    fn root_mismatch_is_detected() {
        let t = parse("<other/>").unwrap();
        let s = infer_schema(&parse("<r/>").unwrap());
        let errs = check(&t, &s).unwrap_err();
        assert!(matches!(
            errs[0],
            ConformanceError::RootLabelMismatch { .. }
        ));
    }

    #[test]
    fn undeclared_element_is_detected() {
        let s = infer_schema(&parse("<r><a>1</a></r>").unwrap());
        let t = parse("<r><zzz>1</zzz></r>").unwrap();
        let errs = check(&t, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConformanceError::UndeclaredElement { .. })));
    }

    #[test]
    fn multiplicity_violation_is_detected_once_per_parent() {
        let s = infer_schema(&parse("<r><a>1</a></r>").unwrap());
        let t = parse("<r><a>1</a><a>2</a><a>3</a></r>").unwrap();
        let errs = check(&t, &s).unwrap_err();
        let mults: Vec<_> = errs
            .iter()
            .filter(|e| matches!(e, ConformanceError::MultiplicityViolation { .. }))
            .collect();
        assert_eq!(mults.len(), 1);
        assert!(matches!(
            mults[0],
            ConformanceError::MultiplicityViolation { count: 3, .. }
        ));
    }

    #[test]
    fn value_type_mismatch_is_detected() {
        let s = infer_schema(&parse("<r><n>1</n></r>").unwrap());
        let t = parse("<r><n>abc</n></r>").unwrap();
        let errs = check(&t, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConformanceError::ValueTypeMismatch { .. })));
    }

    #[test]
    fn floats_admit_ints_but_not_words() {
        assert!(SimpleType::Float.admits("3"));
        assert!(SimpleType::Float.admits("3.5"));
        assert!(!SimpleType::Float.admits("three"));
    }

    #[test]
    fn choice_requires_exactly_one_alternative() {
        let s = crate::Schema::new(Field::new(
            "r",
            ElementType::Choice(vec![
                Field::new("a", ElementType::str()),
                Field::new("b", ElementType::str()),
            ]),
        ));
        assert!(check(&parse("<r><a>1</a></r>").unwrap(), &s).is_ok());
        let errs = check(&parse("<r><a>1</a><b>2</b></r>").unwrap(), &s).unwrap_err();
        assert!(matches!(
            errs[0],
            ConformanceError::ChoiceViolation { present: 2, .. }
        ));
        let errs = check(&parse("<r/>").unwrap(), &s).unwrap_err();
        assert!(matches!(
            errs[0],
            ConformanceError::ChoiceViolation { present: 0, .. }
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = ConformanceError::MultiplicityViolation {
            parent: xfd_xml::NodeId(3),
            label: "a".into(),
            count: 2,
        };
        assert!(e.to_string().contains("SetOf"));
    }
}
