//! The element type model (paper Definition 1).

use std::fmt;

use xfd_xml::Path;

/// System-defined simple types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimpleType {
    /// Integer values.
    Int,
    /// Floating-point values (also admits integers).
    Float,
    /// Arbitrary strings (admits everything).
    Str,
}

impl SimpleType {
    /// The least general simple type admitting `value`.
    pub fn of_value(value: &str) -> SimpleType {
        if value.parse::<i64>().is_ok() {
            SimpleType::Int
        } else if value.parse::<f64>().is_ok() {
            SimpleType::Float
        } else {
            SimpleType::Str
        }
    }

    /// Least upper bound of two simple types (`int ⊑ float ⊑ str`).
    pub fn join(self, other: SimpleType) -> SimpleType {
        use SimpleType::*;
        match (self, other) {
            (Int, Int) => Int,
            (Str, _) | (_, Str) => Str,
            _ => Float,
        }
    }

    /// Does `value` belong to this type's domain?
    pub fn admits(self, value: &str) -> bool {
        match self {
            SimpleType::Int => value.parse::<i64>().is_ok(),
            SimpleType::Float => value.parse::<f64>().is_ok(),
            SimpleType::Str => true,
        }
    }
}

impl fmt::Display for SimpleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SimpleType::Int => "int",
            SimpleType::Float => "float",
            SimpleType::Str => "str",
        })
    }
}

/// A named child element with its type — one `e_i : τ_i` entry of a record
/// or choice type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Element label (attributes carry their `@` prefix).
    pub name: String,
    /// Associated type.
    pub ty: ElementType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, ty: ElementType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An element type `τ` (paper Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementType {
    /// A simple type.
    Simple(SimpleType),
    /// `SetOf τ`: the element may occur multiple times under one parent.
    SetOf(Box<ElementType>),
    /// `Rcd[e1: τ1, ...]`: a complex element with named children (the
    /// *all*/*sequence* model-groups; order is ignored).
    Rcd(Vec<Field>),
    /// `Choice[e1: τ1, ...]`: exactly one of the alternatives occurs.
    Choice(Vec<Field>),
}

impl ElementType {
    /// Shorthand for `Simple(Str)`.
    pub fn str() -> Self {
        ElementType::Simple(SimpleType::Str)
    }

    /// Shorthand for `Simple(Int)`.
    pub fn int() -> Self {
        ElementType::Simple(SimpleType::Int)
    }

    /// Shorthand for `Simple(Float)`.
    pub fn float() -> Self {
        ElementType::Simple(SimpleType::Float)
    }

    /// Wrap in `SetOf`.
    pub fn set_of(inner: ElementType) -> Self {
        ElementType::SetOf(Box::new(inner))
    }

    /// Is this a set type (`SetOf τ`)?
    pub fn is_set(&self) -> bool {
        matches!(self, ElementType::SetOf(_))
    }

    /// Strip one `SetOf` layer if present.
    pub fn unwrap_set(&self) -> &ElementType {
        match self {
            ElementType::SetOf(inner) => inner,
            other => other,
        }
    }

    /// Is this (after stripping `SetOf`) a simple type?
    pub fn is_simple(&self) -> bool {
        matches!(self.unwrap_set(), ElementType::Simple(_))
    }

    /// The fields of a record/choice (after stripping `SetOf`), if any.
    pub fn fields(&self) -> Option<&[Field]> {
        match self.unwrap_set() {
            ElementType::Rcd(fs) | ElementType::Choice(fs) => Some(fs),
            _ => None,
        }
    }
}

impl fmt::Display for ElementType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementType::Simple(s) => write!(f, "{s}"),
            ElementType::SetOf(inner) => write!(f, "SetOf {inner}"),
            ElementType::Rcd(_) => write!(f, "Rcd"),
            ElementType::Choice(_) => write!(f, "Choice"),
        }
    }
}

/// A schema: a root field whose type must not be `SetOf` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    root: Field,
}

impl Schema {
    /// Construct a schema.
    ///
    /// # Panics
    /// Panics if the root type is `SetOf` (forbidden by Definition 1).
    pub fn new(root: Field) -> Self {
        assert!(
            !root.ty.is_set(),
            "root element type cannot be SetOf (Definition 1)"
        );
        Schema { root }
    }

    /// The root field.
    pub fn root(&self) -> &Field {
        &self.root
    }

    /// The root element label.
    pub fn root_label(&self) -> &str {
        &self.root.name
    }

    /// Look up the type associated with an absolute path, or `None` if the
    /// path does not denote a schema element.
    pub fn type_at(&self, path: &Path) -> Option<&ElementType> {
        let labels = path.labels();
        let (&first, rest) = labels.split_first()?;
        if first != self.root.name {
            return None;
        }
        let mut ty = &self.root.ty;
        for label in rest {
            let fields = ty.fields()?;
            ty = &fields.iter().find(|f| f.name == *label)?.ty;
        }
        Some(ty)
    }

    /// Is `path` a *repeatable path* (Section 2.1): its final element is a
    /// set element? (Prefix set elements do not make a path repeatable.)
    pub fn is_repeatable_path(&self, path: &Path) -> bool {
        self.type_at(path).is_some_and(ElementType::is_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::warehouse_schema;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn simple_type_inference_and_join() {
        assert_eq!(SimpleType::of_value("42"), SimpleType::Int);
        assert_eq!(SimpleType::of_value("-7"), SimpleType::Int);
        assert_eq!(SimpleType::of_value("59.99"), SimpleType::Float);
        assert_eq!(SimpleType::of_value("abc"), SimpleType::Str);
        assert_eq!(SimpleType::Int.join(SimpleType::Float), SimpleType::Float);
        assert_eq!(SimpleType::Int.join(SimpleType::Str), SimpleType::Str);
        assert_eq!(SimpleType::Int.join(SimpleType::Int), SimpleType::Int);
    }

    #[test]
    fn type_at_walks_records_and_sets() {
        let s = warehouse_schema();
        assert!(s.type_at(&p("/warehouse")).is_some());
        assert!(s.type_at(&p("/warehouse/state/store/book/ISBN")).is_some());
        assert!(s
            .type_at(&p("/warehouse/state/store/contact/name"))
            .is_some());
        assert_eq!(s.type_at(&p("/warehouse/zzz")), None);
        assert_eq!(s.type_at(&p("/nope")), None);
    }

    #[test]
    fn repeatable_paths_per_section_2_1() {
        let s = warehouse_schema();
        assert!(s.is_repeatable_path(&p("/warehouse/state")));
        assert!(s.is_repeatable_path(&p("/warehouse/state/store/book")));
        assert!(s.is_repeatable_path(&p("/warehouse/state/store/book/author")));
        // name under store is not a set element, even though store is.
        assert!(!s.is_repeatable_path(&p("/warehouse/state/name")));
        assert!(!s.is_repeatable_path(&p("/warehouse/state/store/contact")));
        assert!(!s.is_repeatable_path(&p("/warehouse")));
    }

    #[test]
    #[should_panic(expected = "root element type cannot be SetOf")]
    fn root_cannot_be_set() {
        let _ = Schema::new(Field::new("r", ElementType::set_of(ElementType::str())));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ElementType::str().to_string(), "str");
        assert_eq!(
            ElementType::set_of(ElementType::str()).to_string(),
            "SetOf str"
        );
        assert_eq!(
            ElementType::set_of(ElementType::Rcd(vec![])).to_string(),
            "SetOf Rcd"
        );
    }

    #[test]
    fn is_simple_sees_through_sets() {
        assert!(ElementType::set_of(ElementType::str()).is_simple());
        assert!(!ElementType::set_of(ElementType::Rcd(vec![])).is_simple());
    }
}
