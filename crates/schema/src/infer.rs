//! Schema inference from data.
//!
//! The paper assumes a schema is available ("we assume that all given data
//! trees conform to their schemas"), but DiscoverXFD targets *casually
//! designed* databases where no schema was ever written down. This module
//! derives one from the data:
//!
//! * an element is a **set element** (`SetOf`) iff at least one parent
//!   instance holds two or more children with that label;
//! * a leaf element's simple type is the join of the types of all its
//!   observed values (`int ⊑ float ⊑ str`), defaulting to `str` when no
//!   value was ever seen;
//! * an element observed with children anywhere is complex (`Rcd`); if some
//!   instances of it also carry a direct value, a synthetic `@text` field is
//!   added so no data is lost downstream (the relation encoder maps such
//!   values into that column);
//! * `Choice` types are never inferred — they are indistinguishable from
//!   records with optional fields on the basis of positive examples alone.

use std::collections::HashMap;

use xfd_xml::{DataTree, NodeId, TEXT_LABEL};

use crate::types::{ElementType, Field, Schema, SimpleType};

#[derive(Default, Clone)]
struct TrieNode {
    /// Child label → trie index, in first-seen order.
    children: Vec<(String, usize)>,
    child_index: HashMap<String, usize>,
    is_set: bool,
    value_type: Option<SimpleType>,
    has_children: bool,
    has_value: bool,
}

/// Infer a [`Schema`] from a single data tree.
pub fn infer_schema(tree: &DataTree) -> Schema {
    infer_schema_from_all(std::iter::once(tree))
}

/// Infer a [`Schema`] from several documents with the same root label
/// (their evidence is unioned).
///
/// # Panics
/// Panics if the iterator is empty or root labels disagree.
pub fn infer_schema_from_all<'a, I: IntoIterator<Item = &'a DataTree>>(trees: I) -> Schema {
    let mut trees = trees.into_iter().peekable();
    let first = *trees
        .peek()
        .expect("infer_schema_from_all requires at least one tree");
    let root_label = first.label(first.root()).to_string();

    let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
    for tree in trees {
        assert_eq!(
            tree.label(tree.root()),
            root_label,
            "all documents must share a root label"
        );
        collect(tree, tree.root(), 0, &mut trie);
    }
    let root_ty = build_type(&trie, 0);
    let root_ty = match root_ty {
        // Definition 1: the root cannot be a set; multiple documents never
        // make it one, but guard anyway.
        ElementType::SetOf(inner) => *inner,
        other => other,
    };
    Schema::new(Field::new(root_label, root_ty))
}

/// A condensed, document-independent summary of one data tree's schema
/// evidence: the same trie that [`infer_schema`] builds internally, detached
/// from the tree. Summaries are cheap to keep around (proportional to the
/// number of *distinct* label paths, not nodes) and can be merged without
/// re-walking the documents, which is what lets corpus discovery infer the
/// collection schema from per-segment caches.
#[derive(Clone)]
pub struct SchemaSummary {
    root_label: String,
    trie: Vec<TrieNode>,
}

impl SchemaSummary {
    /// The root label of the summarized document.
    pub fn root_label(&self) -> &str {
        &self.root_label
    }
}

/// Summarize a single document's schema evidence for later merging with
/// [`infer_schema_from_summaries`].
pub fn summarize(tree: &DataTree) -> SchemaSummary {
    let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
    collect(tree, tree.root(), 0, &mut trie);
    SchemaSummary {
        root_label: tree.label(tree.root()).to_string(),
        trie,
    }
}

/// Infer the schema of a synthetic collection whose root (labeled
/// `collection_label`) holds each summarized document as a child, in order.
///
/// This replicates `infer_schema` applied to the grafted collection tree
/// exactly: document-root labels seen more than once across the collection
/// become set elements, per-label evidence is unioned in segment order, and
/// an empty collection yields a bare `Simple(Str)` root.
pub fn infer_schema_from_summaries<'a, I>(collection_label: &str, parts: I) -> Schema
where
    I: IntoIterator<Item = &'a SchemaSummary>,
{
    let mut trie: Vec<TrieNode> = vec![TrieNode::default()];
    let mut root_counts: HashMap<&str, u32> = HashMap::new();
    let parts: Vec<&SchemaSummary> = parts.into_iter().collect();
    for part in &parts {
        *root_counts.entry(part.root_label.as_str()).or_insert(0) += 1;
    }
    if !parts.is_empty() {
        trie[0].has_children = true;
    }
    for part in &parts {
        let label = part.root_label.as_str();
        let child_idx = match trie[0].child_index.get(label) {
            Some(&i) => i,
            None => {
                let i = trie.len();
                trie.push(TrieNode::default());
                trie[0].children.push((label.to_string(), i));
                trie[0].child_index.insert(label.to_string(), i);
                i
            }
        };
        if root_counts[label] > 1 {
            trie[child_idx].is_set = true;
        }
        merge_trie(&mut trie, child_idx, &part.trie, 0);
    }
    let root_ty = build_type(&trie, 0);
    let root_ty = match root_ty {
        ElementType::SetOf(inner) => *inner,
        other => other,
    };
    Schema::new(Field::new(collection_label.to_string(), root_ty))
}

/// Union the evidence of `src[src_idx]` (and its subtree) into
/// `dst[dst_idx]`, preserving first-seen child order. Set-ness, value
/// presence, and child presence are monotone flags, and the value-type join
/// is associative and commutative, so merging per-document tries in segment
/// order reproduces a single pass over the grafted tree.
fn merge_trie(dst: &mut Vec<TrieNode>, dst_idx: usize, src: &[TrieNode], src_idx: usize) {
    let s = &src[src_idx];
    {
        let d = &mut dst[dst_idx];
        d.is_set |= s.is_set;
        d.has_children |= s.has_children;
        d.has_value |= s.has_value;
        d.value_type = match (d.value_type, s.value_type) {
            (Some(a), Some(b)) => Some(a.join(b)),
            (a, b) => a.or(b),
        };
    }
    for (label, src_child) in &src[src_idx].children {
        let child_idx = match dst[dst_idx].child_index.get(label.as_str()) {
            Some(&i) => i,
            None => {
                let i = dst.len();
                dst.push(TrieNode::default());
                dst[dst_idx].children.push((label.clone(), i));
                dst[dst_idx].child_index.insert(label.clone(), i);
                i
            }
        };
        merge_trie(dst, child_idx, src, *src_child);
    }
}

fn collect(tree: &DataTree, node: NodeId, trie_idx: usize, trie: &mut Vec<TrieNode>) {
    if let Some(v) = tree.value(node) {
        let t = SimpleType::of_value(v);
        let entry = &mut trie[trie_idx];
        entry.has_value = true;
        entry.value_type = Some(match entry.value_type {
            Some(prev) => prev.join(t),
            None => t,
        });
    }
    let children: Vec<NodeId> = tree.children(node).to_vec();
    if !children.is_empty() {
        trie[trie_idx].has_children = true;
    }
    // Count per-label multiplicity under *this* parent instance.
    let mut counts: HashMap<&str, u32> = HashMap::new();
    for &c in &children {
        *counts.entry(tree.label(c)).or_insert(0) += 1;
    }
    for &c in &children {
        let label = tree.label(c);
        let child_idx = match trie[trie_idx].child_index.get(label) {
            Some(&i) => i,
            None => {
                let i = trie.len();
                trie.push(TrieNode::default());
                trie[trie_idx].children.push((label.to_string(), i));
                trie[trie_idx].child_index.insert(label.to_string(), i);
                i
            }
        };
        if counts[label] > 1 {
            trie[child_idx].is_set = true;
        }
        collect(tree, c, child_idx, trie);
    }
}

fn build_type(trie: &[TrieNode], idx: usize) -> ElementType {
    let node = &trie[idx];
    let base = if node.has_children {
        let mut fields: Vec<Field> = node
            .children
            .iter()
            .map(|(name, child)| Field::new(name.clone(), build_type(trie, *child)))
            .collect();
        if node.has_value && !node.child_index.contains_key(TEXT_LABEL) {
            // Heterogeneous element: complex in some instances, leaf in
            // others. Keep the values reachable via a synthetic @text field.
            fields.push(Field::new(
                TEXT_LABEL,
                ElementType::Simple(node.value_type.unwrap_or(SimpleType::Str)),
            ));
        }
        ElementType::Rcd(fields)
    } else {
        ElementType::Simple(node.value_type.unwrap_or(SimpleType::Str))
    };
    if node.is_set {
        ElementType::set_of(base)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfd_xml::parse;
    use xfd_xml::Path;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn multiplicity_induces_set_types() {
        let t = parse("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>").unwrap();
        let s = infer_schema(&t);
        assert!(s.is_repeatable_path(&p("/r/a")));
        assert!(s.is_repeatable_path(&p("/r/a/b")));
        assert!(!s.is_repeatable_path(&p("/r")));
    }

    #[test]
    fn single_occurrence_everywhere_is_not_a_set() {
        let t = parse("<r><a><b>1</b></a><a><b>2</b></a></r>").unwrap();
        let s = infer_schema(&t);
        assert!(!s.is_repeatable_path(&p("/r/a/b")));
    }

    #[test]
    fn leaf_types_are_joined() {
        let t = parse("<r><i>1</i><i>2</i><f>1</f><f>2.5</f><s>1</s><s>abc</s></r>").unwrap();
        let s = infer_schema(&t);
        assert_eq!(
            s.type_at(&p("/r/i")).unwrap().unwrap_set(),
            &ElementType::int()
        );
        assert_eq!(
            s.type_at(&p("/r/f")).unwrap().unwrap_set(),
            &ElementType::float()
        );
        assert_eq!(
            s.type_at(&p("/r/s")).unwrap().unwrap_set(),
            &ElementType::str()
        );
    }

    #[test]
    fn attributes_are_fields_with_at_prefix() {
        let t = parse(r#"<r><a id="1"/><a id="2"/></r>"#).unwrap();
        let s = infer_schema(&t);
        assert_eq!(s.type_at(&p("/r/a/@id")).unwrap(), &ElementType::int());
    }

    #[test]
    fn empty_elements_default_to_str() {
        let t = parse("<r><e/></r>").unwrap();
        let s = infer_schema(&t);
        assert_eq!(s.type_at(&p("/r/e")).unwrap(), &ElementType::str());
    }

    #[test]
    fn heterogeneous_element_gains_text_field() {
        let t = parse("<r><a><b>1</b></a><a>plain</a></r>").unwrap();
        let s = infer_schema(&t);
        let a_ty = s.type_at(&p("/r/a")).unwrap().unwrap_set();
        let fields = a_ty.fields().unwrap();
        assert!(fields.iter().any(|f| f.name == "@text"));
    }

    #[test]
    fn inference_on_warehouse_matches_figure_2() {
        let t = crate_warehouse_tree();
        let s = infer_schema(&t);
        assert!(s.is_repeatable_path(&p("/warehouse/state")));
        assert!(s.is_repeatable_path(&p("/warehouse/state/store")));
        assert!(s.is_repeatable_path(&p("/warehouse/state/store/book")));
        assert!(s.is_repeatable_path(&p("/warehouse/state/store/book/author")));
        assert!(!s.is_repeatable_path(&p("/warehouse/state/store/contact")));
        assert_eq!(
            s.type_at(&p("/warehouse/state/store/contact/name"))
                .unwrap(),
            &ElementType::str()
        );
    }

    #[test]
    fn union_over_multiple_documents() {
        let t1 = parse("<r><a>1</a></r>").unwrap();
        let t2 = parse("<r><a>x</a><a>y</a></r>").unwrap();
        let s = infer_schema_from_all([&t1, &t2]);
        assert!(s.is_repeatable_path(&p("/r/a")));
        assert_eq!(
            s.type_at(&p("/r/a")).unwrap().unwrap_set(),
            &ElementType::str()
        );
    }

    /// Graft documents under a synthetic `<collection>` root, exactly as
    /// the core driver's `merge_collection` does.
    fn merged(trees: &[&DataTree]) -> DataTree {
        let mut w = xfd_xml::builder::TreeWriter::new("collection");
        for t in trees {
            w.copy_subtree(t, t.root());
        }
        w.finish()
    }

    fn assert_summaries_match(trees: &[&DataTree]) {
        let expected = infer_schema(&merged(trees));
        let summaries: Vec<SchemaSummary> = trees.iter().map(|t| summarize(t)).collect();
        let actual = infer_schema_from_summaries("collection", summaries.iter());
        assert_eq!(actual, expected);
    }

    #[test]
    fn summaries_match_merged_inference_on_homogeneous_docs() {
        let t1 = parse("<r><a>1</a><b x='q'><c>2</c></b></r>").unwrap();
        let t2 = parse("<r><a>zz</a><a>3</a><b><c>4.5</c><d/></b></r>").unwrap();
        assert_summaries_match(&[&t1, &t2]);
    }

    #[test]
    fn summaries_match_merged_inference_on_mixed_roots() {
        let t1 = parse("<r><a>1</a></r>").unwrap();
        let t2 = parse("<s><b>2</b></s>").unwrap();
        let t3 = parse("<r><a>x</a></r>").unwrap();
        assert_summaries_match(&[&t1, &t2, &t3]);
    }

    #[test]
    fn summaries_match_merged_inference_on_single_doc() {
        let t = crate_warehouse_tree();
        assert_summaries_match(&[&t]);
    }

    #[test]
    fn summaries_match_merged_inference_with_heterogeneous_leaves() {
        let t1 = parse("<r><a><b>1</b></a></r>").unwrap();
        let t2 = parse("<r><a>plain</a></r>").unwrap();
        assert_summaries_match(&[&t1, &t2]);
    }

    #[test]
    fn empty_collection_is_bare_str_root() {
        let expected = infer_schema(&merged(&[]));
        let actual = infer_schema_from_summaries("collection", std::iter::empty());
        assert_eq!(actual, expected);
        assert_eq!(
            actual.type_at(&p("/collection")).unwrap(),
            &ElementType::str()
        );
    }

    /// A fragment of the paper's Figure 1 document, built inline to avoid a
    /// dependency on the datagen crate.
    fn crate_warehouse_tree() -> DataTree {
        parse(
            "<warehouse><state><name>WA</name><store>\
               <contact><name>Borders</name><address>Seattle</address></contact>\
               <book><ISBN>1-111</ISBN><author>Post</author><title>A</title><price>1</price></book>\
               <book><ISBN>2-222</ISBN><author>R</author><author>G</author><title>B</title><price>2</price></book>\
             </store></state>\
             <state><name>KY</name><store>\
               <contact><name>Borders</name><address>Lexington</address></contact>\
               <book><ISBN>2-222</ISBN><author>R</author><author>G</author><title>B</title><price>2</price></book>\
             </store><store>\
               <contact><name>WHSmith</name><address>Lexington</address></contact>\
               <book><ISBN>2-222</ISBN><author>R</author><author>G</author><title>B</title></book>\
             </store></state></warehouse>",
        )
        .unwrap()
    }
}
