#![warn(missing_docs)]
//! # xfd-hash
//!
//! A hand-rolled FxHash-style hasher for the discovery hot paths.
//!
//! The default `std` hasher (SipHash 1-3) is keyed and DoS-resistant, which
//! costs ~1ns/byte and random per-process seeds. The keys hashed on the hot
//! paths here — interned value identifiers, tuple pairs, attribute bitsets —
//! are small fixed-width integers produced by the system itself, so neither
//! property buys anything. [`FxHasher`] is the Firefox multiply-rotate
//! construction: one rotate, one xor and one multiply per word, fully
//! deterministic across runs and platforms (important for reproducible
//! discovery statistics and stable shard assignment).

pub mod content;

pub use content::{digest_bytes, format_digest, parse_digest, ContentDigest, DigestReader};

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher over native words (the rustc/Firefox "FxHash").
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's multiplicative constant: ⌊2⁶⁴ / φ⌋, odd.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const ROTATE: u32 = 26;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; fold them
        // down so HashMap's low-bit masking sees them.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" differ.
            word[7] = rest.len() as u8 | 0x80;
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one `u64` without constructing a map — used for shard selection.
#[inline]
pub fn fx_hash_u64(v: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(v);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(3u32, 4u32)), hash_of(&(3u32, 4u32)));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn maps_work_with_fx() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i as usize * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&999], 1998);
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn low_bits_spread_for_sequential_keys() {
        // HashMap masks low bits; sequential integers must not collide
        // into a few buckets.
        let mut buckets = [0usize; 16];
        for i in 0..16_000u64 {
            buckets[(fx_hash_u64(i) & 15) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (500..1_500).contains(&count),
                "bucket {i} has skewed count {count}"
            );
        }
    }
}
