//! Content digests: a deterministic 128-bit fingerprint for byte streams.
//!
//! The digest must identify content (request bytes, corpus segments,
//! relation states), survive process restarts (so it cannot be a
//! randomized hash), and be collision-resistant enough to key caches whose
//! hits skip real work. [`crate::FxHasher`] is a speed-tuned 64-bit mixer,
//! too weak for content addressing; instead we run two independent FNV-1a
//! lanes (the second with a salted offset basis) and concatenate them into
//! a 128-bit digest rendered as 32 lowercase hex digits.
//!
//! Consumers: the server's result cache (`xfd-server`), which seeds the
//! state with a configuration fingerprint before streaming the body, and
//! the corpus store (`xfd-corpus`), which digests segment files and
//! per-relation states for incremental discovery.

use std::io::Read;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Arbitrary salt so the two lanes diverge immediately.
const LANE2_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Incremental dual-lane FNV-1a digest.
#[derive(Debug, Clone, Copy)]
pub struct ContentDigest {
    lane1: u64,
    lane2: u64,
    len: u64,
}

impl Default for ContentDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl ContentDigest {
    /// A fresh digest state.
    pub fn new() -> Self {
        ContentDigest {
            lane1: FNV_OFFSET,
            lane2: FNV_OFFSET ^ LANE2_SALT,
            len: 0,
        }
    }

    /// Absorb a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane1 = (self.lane1 ^ b as u64).wrapping_mul(FNV_PRIME);
            self.lane2 = (self.lane2 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    /// Absorb a `u64` (little-endian), for fingerprinting structured data.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Total bytes absorbed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bytes have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finalize into a 128-bit value. Folds the length into both lanes so
    /// that e.g. `"ab" + ""` and `"a" + "b"` remain identical (streaming
    /// chunking must not matter) while trailing-zero-length extensions of
    /// the state cannot collide trivially.
    pub fn finish(&self) -> u128 {
        let mut lane1 = self.lane1;
        let mut lane2 = self.lane2;
        for &b in &self.len.to_le_bytes() {
            lane1 = (lane1 ^ b as u64).wrapping_mul(FNV_PRIME);
            lane2 = (lane2 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        ((lane1 as u128) << 64) | lane2 as u128
    }
}

/// Digest one byte slice in a single call.
pub fn digest_bytes(bytes: &[u8]) -> u128 {
    let mut d = ContentDigest::new();
    d.update(bytes);
    d.finish()
}

/// Render a digest as the 32-hex-digit form used in `/v1/results/{digest}`
/// and corpus manifests.
pub fn format_digest(d: u128) -> String {
    format!("{d:032x}")
}

/// Parse the 32-hex-digit form back; `None` for anything else.
pub fn parse_digest(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// A `Read` adapter that absorbs every byte flowing through it into a
/// [`ContentDigest`], so a request body can be hashed while it streams
/// into the XML parser without being buffered whole.
pub struct DigestReader<R> {
    inner: R,
    digest: ContentDigest,
}

impl<R: Read> DigestReader<R> {
    /// Wrap `inner`.
    pub fn new(inner: R) -> Self {
        Self::with_seed(inner, ContentDigest::new())
    }

    /// Wrap `inner`, continuing from an existing digest state. The server
    /// seeds the state with the request's configuration fingerprint so the
    /// final digest keys *body + config*, not body alone.
    pub fn with_seed(inner: R, digest: ContentDigest) -> Self {
        DigestReader { inner, digest }
    }

    /// The digest state accumulated so far.
    pub fn digest(&self) -> &ContentDigest {
        &self.digest
    }
}

impl<R: Read> Read for DigestReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.digest.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(chunks: &[&[u8]]) -> u128 {
        let mut d = ContentDigest::new();
        for c in chunks {
            d.update(c);
        }
        d.finish()
    }

    #[test]
    fn chunking_does_not_change_the_digest() {
        let whole = digest_of(&[b"<a><b/></a>"]);
        let split = digest_of(&[b"<a>", b"<b/>", b"</a>"]);
        let bytewise = digest_of(&[
            b"<", b"a", b">", b"<", b"b", b"/", b">", b"<", b"/", b"a", b">",
        ]);
        assert_eq!(whole, split);
        assert_eq!(whole, bytewise);
        assert_eq!(whole, digest_bytes(b"<a><b/></a>"));
    }

    #[test]
    fn different_content_gets_different_digests() {
        assert_ne!(digest_of(&[b"<a/>"]), digest_of(&[b"<b/>"]));
        assert_ne!(digest_of(&[b""]), digest_of(&[b"\0"]));
    }

    #[test]
    fn format_and_parse_round_trip() {
        let d = digest_of(&[b"round trip"]);
        let s = format_digest(d);
        assert_eq!(s.len(), 32);
        assert_eq!(parse_digest(&s), Some(d));
    }

    #[test]
    fn parse_rejects_malformed_digests() {
        assert_eq!(parse_digest(""), None);
        assert_eq!(parse_digest("abc"), None);
        assert_eq!(parse_digest(&"g".repeat(32)), None);
        assert_eq!(parse_digest(&"0".repeat(33)), None);
    }

    #[test]
    fn update_u64_is_equivalent_to_le_bytes() {
        let mut a = ContentDigest::new();
        a.update_u64(0xdead_beef);
        let mut b = ContentDigest::new();
        b.update(&0xdead_beefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn digest_reader_matches_direct_hashing() {
        let data = b"<root><x>1</x><x>2</x></root>".to_vec();
        let mut reader = DigestReader::new(&data[..]);
        let mut sink = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut sink).unwrap();
        assert_eq!(sink, data);
        assert_eq!(reader.digest().finish(), digest_of(&[&data]));
        assert_eq!(reader.digest().len(), data.len() as u64);
    }
}
