//! `discoverxfd` — command-line interface to the DiscoverXFD system.
//!
//! Subcommands: `discover` (FDs/keys/redundancies, with `--approx`,
//! `--inds`, `--json`/`--markdown`, `--suggest`), `check` (verify one FD
//! with witnesses), `normalize` (XNF refactoring), `diff` (schema +
//! constraint drift), `select` (XPath-lite), `profile` (column stats),
//! `schema` (nested representation or `--xsd`), `encode` (Figure 6 view),
//! `flat` (the Section 4.1 baseline), `dot` (Graphviz) and `gen`
//! (datasets). Run with no arguments for the full usage text.

use std::process::ExitCode;

use discoverxfd::approximate::discover_approximate_forest;
use discoverxfd::baseline::{discover_flat, BaselineOptions};
use discoverxfd::report::{render_markdown, render_text, RenderOptions};
use discoverxfd::{discover_with_schema, DiscoveryConfig};
use xfd_datagen as datagen;
use xfd_relation::{encode, EncodeConfig, OrderMode, SetColumnMode};
use xfd_schema::{infer_schema, nested_representation};
use xfd_xml::{parse, to_xml_string, DataTree};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  discoverxfd discover <file.xml> [--max-lhs N] [--no-sets] [--no-inter] [--ordered]
                                  [--approx EPS] [--inds] [--cover] [--keep-uninteresting]
                                  [--threads N] [--cache-budget BYTES]
                                  [--no-error-only-kernel] [--suggest] [--markdown|--json]
  discoverxfd schema   <file.xml> [--xsd]
  discoverxfd encode   <file.xml>
  discoverxfd flat     <file.xml> [--max-rows N] [--max-lhs N]
  discoverxfd gen      <warehouse|xmark|dblp|psd|mondial> [--scale F] [--seed N]
  discoverxfd check    <file.xml> \"{./lhs, ...} -> ./rhs w.r.t. C_class\"
  discoverxfd normalize <file.xml> [--max-rounds N]   (writes refactored XML to stdout)
  discoverxfd dot      <file.xml> [--fds]             (Graphviz of the forest, or the FD graph)
  discoverxfd diff     <old.xml> <new.xml>            (constraint drift between versions)
  discoverxfd select   <file.xml> \"/site//item[category='books']/name\"
  discoverxfd profile  <file.xml>                     (column statistics)
  discoverxfd serve    [--addr HOST:PORT] [--workers N] [--queue-depth N]
                       [--result-cache-budget BYTES] [--body-limit BYTES]
                       [--request-timeout SECS] [--corpus-root DIR]
                       [--cluster-workers N] [--remote HOST:PORT,...]
                       [--cluster-token T] [--pool-idle-secs SECS]
                       (HTTP discovery daemon; cluster workers stay warm between requests)
  discoverxfd corpus create <corpus> [--root DIR]
  discoverxfd corpus add <corpus> <file.xml> [--name DOC] [--root DIR]
  discoverxfd corpus rm <corpus> <doc> [--root DIR]
  discoverxfd corpus discover <corpus> [--root DIR] [--json|--markdown] [--progress]
                              [--max-lhs N] [--no-inter] [--keep-uninteresting]
                              [--threads N] [--cache-budget BYTES] [--memo-budget BYTES]
                              [--no-error-only-kernel]
  discoverxfd corpus compact <corpus> [--root DIR]    (merge segments into one)
  discoverxfd corpus status <corpus> [--root DIR]
  discoverxfd corpus list [--root DIR]
                       (persistent multi-document corpora; default root ./corpora)
  discoverxfd cluster discover <corpus> [--root DIR] [--workers N] [--worker-timeout SECS]
                               [--remote HOST:PORT,...] [--token T]
                               [--push-mode auto|partials|forest]
                               [--json|--markdown] [--max-lhs N] [--no-inter]
                               [--keep-uninteresting] [--threads N] [--cache-budget BYTES]
                               [--memo-budget BYTES] [--no-error-only-kernel]
                       (corpus discovery sharded over worker subprocesses / remote hosts)
  discoverxfd worker   (--socket <path> | --listen HOST:PORT) [--index N] [--token T]
                       [--seg-cache DIR] [--seg-cache-budget BYTES] [--no-shared-storage]
                       (cluster worker; spawned internally, or started by hand for TCP)";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "discover" => cmd_discover(rest),
        "schema" => cmd_schema(rest),
        "encode" => cmd_encode(rest),
        "flat" => cmd_flat(rest),
        "gen" => cmd_gen(rest),
        "check" => cmd_check(rest),
        "normalize" => cmd_normalize(rest),
        "dot" => cmd_dot(rest),
        "diff" => cmd_diff(rest),
        "select" => cmd_select(rest),
        "profile" => cmd_profile(rest),
        "serve" => cmd_serve(rest),
        "corpus" => cmd_corpus(rest),
        "cluster" => cmd_cluster(rest),
        "worker" => cmd_worker(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn load(path: &str) -> Result<DataTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt_value<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{name} requires a value"))?;
            return v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value for {name}: {v:?}"));
        }
    }
    Ok(None)
}

/// Reject any `--option` the subcommand does not know; a typo in a flag
/// must be a hard error, not a silently ignored no-op.
fn check_flags(args: &[String], allowed: &[&str]) -> Result<(), String> {
    for a in args {
        if a.starts_with("--") && !allowed.contains(&a.as_str()) {
            return Err(format!("unknown option {a:?}"));
        }
    }
    Ok(())
}

fn positional(args: &[String], idx: usize) -> Result<&str, String> {
    args.iter()
        .filter(|a| !a.starts_with("--"))
        // Values of --opts also don't start with --, but all our value
        // options are numeric; positional paths come first in practice.
        .nth(idx)
        .map(String::as_str)
        .ok_or_else(|| "missing argument".to_string())
}

fn cmd_discover(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--max-lhs",
            "--no-sets",
            "--no-inter",
            "--ordered",
            "--approx",
            "--inds",
            "--cover",
            "--keep-uninteresting",
            "--threads",
            "--cache-budget",
            "--no-error-only-kernel",
            "--suggest",
            "--markdown",
            "--json",
        ],
    )?;
    let tree = load(positional(args, 0)?)?;
    let mut config = DiscoveryConfig {
        max_lhs_size: opt_value::<usize>(args, "--max-lhs")?,
        inter_relation: !flag(args, "--no-inter"),
        keep_uninteresting: flag(args, "--keep-uninteresting"),
        cache_budget: opt_value::<usize>(args, "--cache-budget")?,
        error_only_kernel: !flag(args, "--no-error-only-kernel"),
        ..Default::default()
    };
    if let Some(threads) = opt_value::<usize>(args, "--threads")? {
        // `--threads 1` forces sequential; `--threads 0` = auto-detect.
        config.parallel = threads != 1;
        config.threads = threads;
    }
    if flag(args, "--no-sets") {
        config.encode.set_columns = SetColumnMode::None;
    }
    if flag(args, "--ordered") {
        config.encode.order = OrderMode::Ordered;
    }
    let schema = infer_schema(&tree);
    let report = discover_with_schema(&tree, &schema, &config);

    let opts = RenderOptions {
        show_uninteresting: config.keep_uninteresting,
        show_suggestions: flag(args, "--suggest"),
        show_stats: true,
    };
    if flag(args, "--json") {
        print!("{}", discoverxfd::report::render_json(&report));
    } else if flag(args, "--markdown") {
        print!("{}", render_markdown(&report, &opts));
    } else {
        println!("# Schema\n{}", nested_representation(&schema));
        print!("{}", render_text(&report, &opts));
    }
    if let Some(eps) = opt_value::<f64>(args, "--approx")? {
        let forest = encode(&tree, &schema, &config.encode);
        let approx = discover_approximate_forest(&forest, &config, eps);
        println!("\n# Approximate FDs (g3 error <= {eps})");
        for (fd, err) in approx {
            println!("  {fd}  [error {err:.4}]");
        }
    }
    if flag(args, "--inds") {
        use discoverxfd::inclusion::{discover_inds, IndOptions};
        let forest = encode(&tree, &schema, &config.encode);
        let inds = discover_inds(&forest, &IndOptions::default());
        println!("\n# Inclusion dependencies (reference candidates)");
        for ind in inds {
            println!("  {ind}");
        }
    }
    if flag(args, "--cover") {
        use discoverxfd::cover::canonical_cover;
        use discoverxfd::interesting::intra_fd_to_xfd;
        use discoverxfd::xfd::discover_forest;
        let forest = encode(&tree, &schema, &config.encode);
        let disc = discover_forest(&forest, &config);
        println!("\n# Canonical covers (per tuple class, intra-relation FDs)");
        for rd in &disc.relations {
            if forest.relation(rd.rel).parent.is_none() || rd.fds.is_empty() {
                continue;
            }
            for fd in canonical_cover(&rd.fds) {
                println!("  {}", intra_fd_to_xfd(&forest, rd.rel, &fd));
            }
        }
    }
    Ok(())
}

fn cmd_schema(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--xsd"])?;
    let tree = load(positional(args, 0)?)?;
    let schema = infer_schema(&tree);
    if flag(args, "--xsd") {
        print!("{}", xfd_schema::xsd::to_xsd(&schema));
    } else {
        print!("{}", nested_representation(&schema));
    }
    Ok(())
}

fn cmd_encode(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    let tree = load(positional(args, 0)?)?;
    let schema = infer_schema(&tree);
    let forest = encode(&tree, &schema, &EncodeConfig::default());
    print!("{}", forest.render());
    let stats = forest.stats();
    println!(
        "({} relations, {} tuples, {} columns, {} cells)",
        stats.relations, stats.tuples, stats.columns, stats.cells
    );
    Ok(())
}

fn cmd_flat(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--max-rows", "--max-lhs"])?;
    let tree = load(positional(args, 0)?)?;
    let schema = infer_schema(&tree);
    let options = BaselineOptions {
        max_rows: opt_value::<usize>(args, "--max-rows")?.unwrap_or(1_000_000),
        max_lhs: opt_value::<usize>(args, "--max-lhs")?.unwrap_or(usize::MAX),
        empty_lhs: true,
    };
    let res = discover_flat(&tree, &schema, &options).map_err(|e| e.to_string())?;
    println!(
        "# Flat relation: {} rows x {} columns",
        res.rows, res.columns
    );
    println!("# FDs ({})", res.fds.len());
    for fd in &res.fds {
        println!("  {fd}");
    }
    println!("# Keys ({})", res.keys.len());
    for k in &res.keys {
        println!("  {{{}}}", k.join(", "));
    }
    println!(
        "# Stats: {} lattice nodes, flatten {:?}, discover {:?}",
        res.stats.nodes_visited, res.flatten_time, res.discover_time
    );
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    use discoverxfd::verify::{verify_fd, FdSpec};
    let tree = load(positional(args, 0)?)?;
    let expr = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .ok_or("missing FD expression")?;
    let spec: FdSpec = expr.parse().map_err(|e| format!("{e}"))?;
    let schema = infer_schema(&tree);
    let forest = encode(&tree, &schema, &EncodeConfig::default());
    let report = verify_fd(&forest, &spec, 10).map_err(|e| e.to_string())?;
    if report.holds {
        println!("HOLDS over {} tuples", report.tuples);
        if report.lhs_is_key {
            println!("(the LHS is also an XML Key: no two tuples agree on it)");
        } else {
            println!("(the LHS is NOT a key: the FD indicates redundancy, Definition 11)");
        }
    } else {
        println!("VIOLATED — witnesses (pivot node keys):");
        for v in &report.violations {
            println!("  nodes {} and {}", v.node1.0, v.node2.0);
        }
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    use discoverxfd::profile::{profile, render};
    let tree = load(positional(args, 0)?)?;
    let schema = infer_schema(&tree);
    let forest = encode(&tree, &schema, &EncodeConfig::default());
    print!("{}", render(&profile(&forest)));
    Ok(())
}

fn cmd_select(args: &[String]) -> Result<(), String> {
    let tree = load(positional(args, 0)?)?;
    let query_str = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .ok_or("missing query expression")?;
    let query: xfd_xml::Query = query_str.parse().map_err(|e| format!("{e}"))?;
    let matches = query.select(&tree);
    for n in &matches {
        let path = tree.label_path(*n).join("/");
        match tree.value(*n) {
            Some(v) => println!("[{}] /{}  = {:?}", n.0, path, v),
            None => println!(
                "[{}] /{}  ({} children)",
                n.0,
                path,
                tree.children(*n).len()
            ),
        }
    }
    eprintln!("{} match(es)", matches.len());
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    check_flags(args, &[])?;
    use discoverxfd::diff::diff_reports;
    let old_tree = load(positional(args, 0)?)?;
    let new_tree = load(positional(args, 1)?)?;
    let cfg = DiscoveryConfig::default();
    let old_schema = infer_schema(&old_tree);
    let new_schema = infer_schema(&new_tree);
    let schema_changes = xfd_schema::diff::diff_schemas(&old_schema, &new_schema);
    if !schema_changes.is_empty() {
        println!("# Schema changes");
        for c in &schema_changes {
            println!("  {c}");
        }
        println!();
    }
    let old = discover_with_schema(&old_tree, &old_schema, &cfg);
    let new = discover_with_schema(&new_tree, &new_schema, &cfg);
    print!("{}", diff_reports(&old, &new));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--fds"])?;
    use discoverxfd::graphviz::{fds_to_dot, forest_to_dot};
    let tree = load(positional(args, 0)?)?;
    let schema = infer_schema(&tree);
    if flag(args, "--fds") {
        let report = discover_with_schema(&tree, &schema, &DiscoveryConfig::default());
        print!("{}", fds_to_dot(&report));
    } else {
        let forest = encode(&tree, &schema, &EncodeConfig::default());
        print!("{}", forest_to_dot(&forest));
    }
    Ok(())
}

fn cmd_normalize(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--max-rounds"])?;
    use discoverxfd::normalize::normalize_fully;
    let tree = load(positional(args, 0)?)?;
    let rounds = opt_value::<usize>(args, "--max-rounds")?.unwrap_or(10);
    let (normalized, log) = normalize_fully(&tree, &DiscoveryConfig::default(), rounds);
    for r in &log {
        eprintln!(
            "applied: {}  ({} -> {} redundant values)",
            r.applied, r.redundant_before, r.redundant_after
        );
    }
    eprintln!(
        "{} rounds; {} nodes -> {} nodes",
        log.len(),
        tree.node_count(),
        normalized.node_count()
    );
    print!("{}", to_xml_string(&normalized));
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    check_flags(args, &["--scale", "--seed"])?;
    let which = positional(args, 0)?;
    let scale = opt_value::<f64>(args, "--scale")?.unwrap_or(1.0);
    let seed = opt_value::<u64>(args, "--seed")?;
    let tree = match which {
        "warehouse" => {
            if scale <= 1.0 {
                datagen::warehouse_figure1()
            } else {
                let mut spec = datagen::WarehouseSpec {
                    states: (4.0 * scale) as usize,
                    stores_per_state: 3,
                    books_per_store: (8.0 * scale) as usize,
                    ..Default::default()
                };
                if let Some(s) = seed {
                    spec.seed = s;
                }
                datagen::warehouse_scaled(&spec)
            }
        }
        "xmark" => {
            let mut spec = datagen::XmarkSpec::with_scale(scale);
            if let Some(s) = seed {
                spec.seed = s;
            }
            datagen::xmark_like(&spec)
        }
        "dblp" => {
            let mut spec = datagen::DblpSpec {
                articles: (150.0 * scale) as usize,
                inproceedings: (100.0 * scale) as usize,
                ..Default::default()
            };
            if let Some(s) = seed {
                spec.seed = s;
            }
            datagen::dblp_like(&spec)
        }
        "psd" => {
            let mut spec = datagen::ProteinSpec {
                entries: (80.0 * scale) as usize,
                ..Default::default()
            };
            if let Some(s) = seed {
                spec.seed = s;
            }
            datagen::protein_like(&spec)
        }
        "mondial" => {
            let mut spec = datagen::MondialSpec {
                countries: (15.0 * scale) as usize,
                ..Default::default()
            };
            if let Some(s) = seed {
                spec.seed = s;
            }
            datagen::mondial_like(&spec)
        }
        other => return Err(format!("unknown dataset {other:?}")),
    };
    print!("{}", to_xml_string(&tree));
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--addr",
            "--workers",
            "--queue-depth",
            "--result-cache-budget",
            "--body-limit",
            "--request-timeout",
            "--corpus-root",
            "--cluster-workers",
            "--remote",
            "--cluster-token",
            "--pool-idle-secs",
        ],
    )?;
    let mut config = xfd_server::ServerConfig::default();
    if let Some(addr) = opt_value::<String>(args, "--addr")? {
        config.addr = addr;
    }
    if let Some(workers) = opt_value::<usize>(args, "--workers")? {
        config.workers = workers;
    }
    if let Some(depth) = opt_value::<usize>(args, "--queue-depth")? {
        config.queue_depth = depth;
    }
    if let Some(budget) = opt_value::<usize>(args, "--result-cache-budget")? {
        config.result_cache_budget = budget;
    }
    if let Some(limit) = opt_value::<u64>(args, "--body-limit")? {
        config.max_body_bytes = limit;
    }
    if let Some(secs) = opt_value::<u64>(args, "--request-timeout")? {
        config.request_timeout = std::time::Duration::from_secs(secs);
    }
    if let Some(root) = opt_value::<String>(args, "--corpus-root")? {
        config.corpus_root = Some(root.into());
    }
    if let Some(n) = opt_value::<usize>(args, "--cluster-workers")? {
        config.cluster_workers = n;
    }
    if let Some(remote) = opt_value::<String>(args, "--remote")? {
        config.cluster_remote = split_remote(&remote);
    }
    if let Some(token) = opt_value::<String>(args, "--cluster-token")? {
        config.cluster_token = token;
    }
    if let Some(secs) = opt_value::<u64>(args, "--pool-idle-secs")? {
        config.pool_idle = std::time::Duration::from_secs(secs);
    }
    let server = xfd_server::Server::bind(config.clone())
        .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    xfd_server::install_signal_handlers();
    // Parsed by scripts and tests: keep this line format stable.
    println!("listening on http://{addr}");
    server.run().map_err(|e| e.to_string())
}

/// Strictly parse a corpus action's arguments. Anything dash-prefixed that
/// is not a known flag — `-x` single-dash spellings included — is a hard
/// error, as is any positional beyond the ones the action expects; a typo
/// must never be a silently ignored no-op. Returns exactly
/// `expect.len()` positionals on success.
fn corpus_args(
    args: &[String],
    bool_flags: &[&str],
    value_opts: &[&str],
    expect: &[&str],
) -> Result<Vec<String>, String> {
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if value_opts.contains(&a.as_str()) {
            i += 2; // the value itself is validated by opt_value
            continue;
        }
        if bool_flags.contains(&a.as_str()) {
            i += 1;
            continue;
        }
        if a.len() > 1 && a.starts_with('-') {
            return Err(format!("unknown option {a:?}"));
        }
        positionals.push(a.clone());
        i += 1;
    }
    if let Some(extra) = positionals.get(expect.len()) {
        return Err(format!("unexpected argument {extra:?}"));
    }
    if positionals.len() < expect.len() {
        return Err(format!(
            "missing {}",
            expect.get(positionals.len()).copied().unwrap_or("argument")
        ));
    }
    Ok(positionals)
}

fn cmd_corpus(args: &[String]) -> Result<(), String> {
    use discoverxfd::report::render_json;
    use xfd_corpus::CorpusStore;

    let Some(action) = args.first() else {
        return Err("corpus: missing action (create|add|rm|discover|status|list)".into());
    };
    let rest = &args[1..];
    let root = opt_value::<String>(rest, "--root")?.unwrap_or_else(|| "corpora".into());
    let store = CorpusStore::new(&root);

    match action.as_str() {
        "create" => {
            let p = corpus_args(rest, &[], &["--root"], &["corpus name"])?;
            let corpus = p[0].as_str();
            store.create(corpus).map_err(|e| e.to_string())?;
            eprintln!("created corpus {corpus:?} under {root}/");
            Ok(())
        }
        "add" => {
            let p = corpus_args(
                rest,
                &["--crash-after-wal"],
                &["--root", "--name"],
                &["corpus name", "xml file"],
            )?;
            let (corpus, file) = (p[0].as_str(), p[1].as_str());
            let doc_name = match opt_value::<String>(rest, "--name")? {
                Some(name) => name,
                None => std::path::Path::new(file)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .ok_or_else(|| format!("cannot derive a document name from {file:?}"))?
                    .to_string(),
            };
            let tree = load(file)?;
            let mut handle = store.open(corpus).map_err(|e| e.to_string())?;
            if flag(rest, "--crash-after-wal") {
                // Crash injection for recovery tests: the segment and WAL
                // record are durable, the manifest commit never happens —
                // exactly the state a kill -9 mid-ingest leaves behind.
                handle
                    .stage_doc(&doc_name, &tree)
                    .map_err(|e| e.to_string())?;
                eprintln!("staged {doc_name:?}; crashing before the manifest commit");
                std::process::exit(42);
            }
            handle
                .add_doc(&doc_name, &tree)
                .map_err(|e| e.to_string())?;
            eprintln!("added {doc_name:?} to {corpus:?} ({} docs)", handle.len());
            Ok(())
        }
        "rm" => {
            let p = corpus_args(rest, &[], &["--root"], &["corpus name", "document name"])?;
            let (corpus, doc) = (p[0].as_str(), p[1].as_str());
            let mut handle = store.open(corpus).map_err(|e| e.to_string())?;
            handle.remove_doc(doc).map_err(|e| e.to_string())?;
            eprintln!("removed {doc:?} from {corpus:?} ({} docs)", handle.len());
            Ok(())
        }
        "discover" => {
            let p = corpus_args(
                rest,
                &[
                    "--json",
                    "--markdown",
                    "--progress",
                    "--no-inter",
                    "--no-error-only-kernel",
                    "--keep-uninteresting",
                ],
                &[
                    "--root",
                    "--max-lhs",
                    "--threads",
                    "--cache-budget",
                    "--memo-budget",
                ],
                &["corpus name"],
            )?;
            let corpus = p[0].as_str();
            let mut config = DiscoveryConfig {
                max_lhs_size: opt_value::<usize>(rest, "--max-lhs")?,
                inter_relation: !flag(rest, "--no-inter"),
                keep_uninteresting: flag(rest, "--keep-uninteresting"),
                cache_budget: opt_value::<usize>(rest, "--cache-budget")?,
                error_only_kernel: !flag(rest, "--no-error-only-kernel"),
                ..Default::default()
            };
            if let Some(threads) = opt_value::<usize>(rest, "--threads")? {
                config.parallel = threads != 1;
                config.threads = threads;
            }
            let mut handle = store.open(corpus).map_err(|e| e.to_string())?;
            handle.set_memo_budget(opt_value::<usize>(rest, "--memo-budget")?);
            let progress = flag(rest, "--progress");
            let outcome = handle.discover_with_progress(&config, |p| {
                if progress {
                    let cached = if p.cached { " (cached)" } else { "" };
                    eprintln!("[depth {}] {}{cached}", p.depth, p.name);
                }
            });
            let opts = RenderOptions {
                show_uninteresting: config.keep_uninteresting,
                show_suggestions: false,
                show_stats: true,
            };
            if flag(rest, "--json") {
                print!("{}", render_json(&outcome));
            } else if flag(rest, "--markdown") {
                print!("{}", render_markdown(&outcome, &opts));
            } else {
                print!("{}", render_text(&outcome, &opts));
            }
            Ok(())
        }
        "compact" => {
            let p = corpus_args(rest, &["--crash-after-wal"], &["--root"], &["corpus name"])?;
            let corpus = p[0].as_str();
            let mut handle = store.open(corpus).map_err(|e| e.to_string())?;
            if flag(rest, "--crash-after-wal") {
                // Crash injection for recovery tests, mirroring `add`: the
                // merged segment and WAL record are durable, the manifest
                // commit never happens.
                handle.stage_compact().map_err(|e| e.to_string())?;
                eprintln!("staged compaction; crashing before the manifest commit");
                std::process::exit(42);
            }
            let stats = handle.compact().map_err(|e| e.to_string())?;
            eprintln!(
                "compacted {corpus:?}: {} doc(s), {} segment(s) -> 1 ({} bytes)",
                stats.docs, stats.segments_before, stats.bytes
            );
            Ok(())
        }
        "status" => {
            let p = corpus_args(rest, &[], &["--root"], &["corpus name"])?;
            let corpus = p[0].as_str();
            let handle = store.open(corpus).map_err(|e| e.to_string())?;
            let status = handle.status();
            println!(
                "corpus {} — {} document(s), {} segment bytes",
                status.name,
                status.docs.len(),
                status.segment_bytes
            );
            for (name, digest, nodes) in &status.docs {
                println!("  {name}  {digest}  {nodes} nodes");
            }
            println!(
                "kernel: {} error-only products ({} early exits), {} materialized, {} summary hits",
                status.kernel_products_error_only,
                status.kernel_early_exits,
                status.kernel_products_materialized,
                status.kernel_summary_hits
            );
            Ok(())
        }
        "list" => {
            corpus_args(rest, &[], &["--root"], &[])?;
            for name in store.list().map_err(|e| e.to_string())? {
                println!("{name}");
            }
            Ok(())
        }
        other => Err(format!(
            "unknown corpus action {other:?} (create|add|rm|discover|compact|status|list)"
        )),
    }
}

/// `discoverxfd cluster discover <corpus>` — corpus discovery sharded
/// over worker subprocesses (re-invocations of this binary's `worker`
/// subcommand). The report is byte-identical to `corpus discover`; a
/// stable `cluster: ...` summary line goes to stderr for scripts.
fn cmd_cluster(args: &[String]) -> Result<(), String> {
    use discoverxfd::report::render_json;
    use xfd_corpus::CorpusStore;

    let Some(action) = args.first() else {
        return Err("cluster: missing action (discover)".into());
    };
    if action != "discover" {
        return Err(format!("unknown cluster action {action:?} (discover)"));
    }
    let rest = &args[1..];
    let p = corpus_args(
        rest,
        &[
            "--json",
            "--markdown",
            "--no-inter",
            "--no-error-only-kernel",
            "--keep-uninteresting",
            "--corrupt-plan",
        ],
        &[
            "--root",
            "--workers",
            "--worker-timeout",
            "--kill-worker-after",
            "--remote",
            "--token",
            "--push-mode",
            "--max-lhs",
            "--threads",
            "--cache-budget",
            "--memo-budget",
        ],
        &["corpus name"],
    )?;
    let corpus = p[0].as_str();
    let root = opt_value::<String>(rest, "--root")?.unwrap_or_else(|| "corpora".into());
    let mut config = DiscoveryConfig {
        max_lhs_size: opt_value::<usize>(rest, "--max-lhs")?,
        inter_relation: !flag(rest, "--no-inter"),
        keep_uninteresting: flag(rest, "--keep-uninteresting"),
        cache_budget: opt_value::<usize>(rest, "--cache-budget")?,
        error_only_kernel: !flag(rest, "--no-error-only-kernel"),
        ..Default::default()
    };
    if let Some(threads) = opt_value::<usize>(rest, "--threads")? {
        config.parallel = threads != 1;
        config.threads = threads;
    }
    let mut opts = xfd_cluster::ClusterOptions::default();
    if let Some(workers) = opt_value::<usize>(rest, "--workers")? {
        opts.workers = workers;
    }
    if let Some(secs) = opt_value::<u64>(rest, "--worker-timeout")? {
        opts.worker_timeout = std::time::Duration::from_secs(secs);
    }
    // Fault injection, used by the CI smoke test: SIGKILL the worker
    // that received the Nth relation pass, mid-run.
    opts.kill_worker_after = opt_value::<u64>(rest, "--kill-worker-after")?;
    opts.corrupt_plan = flag(rest, "--corrupt-plan");
    if let Some(remote) = opt_value::<String>(rest, "--remote")? {
        opts.remote = split_remote(&remote);
    }
    if let Some(token) = opt_value::<String>(rest, "--token")? {
        opts.token = token;
    }
    if let Some(mode) = opt_value::<String>(rest, "--push-mode")? {
        opts.push_mode = match mode.as_str() {
            "auto" => xfd_cluster::PushMode::Auto,
            "partials" => xfd_cluster::PushMode::Partials,
            "forest" => xfd_cluster::PushMode::Forest,
            other => {
                return Err(format!(
                    "push-mode: expected auto|partials|forest, got {other:?}"
                ))
            }
        };
    }

    let mut handle = CorpusStore::new(&root)
        .open(corpus)
        .map_err(|e| e.to_string())?;
    handle.set_memo_budget(opt_value::<usize>(rest, "--memo-budget")?);
    let (outcome, stats) =
        xfd_cluster::cluster_discover(&mut handle, &config, &opts).map_err(|e| e.to_string())?;
    // Parsed by scripts and tests: keep this line format stable.
    eprintln!("{}", stats.summary());
    let ropts = RenderOptions {
        show_uninteresting: config.keep_uninteresting,
        show_suggestions: false,
        show_stats: true,
    };
    if flag(rest, "--json") {
        print!("{}", render_json(&outcome));
    } else if flag(rest, "--markdown") {
        print!("{}", render_markdown(&outcome, &ropts));
    } else {
        print!("{}", render_text(&outcome, &ropts));
    }
    Ok(())
}

/// Split a `--remote host:port,host:port,...` list.
fn split_remote(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// `discoverxfd worker` — a cluster worker process. Spawned by the
/// coordinator over a Unix socket, or started by hand with
/// `--listen host:port` to serve remote coordinators over TCP; serves
/// encode/merge/pass requests until told to shut down.
fn cmd_worker(args: &[String]) -> Result<(), String> {
    let opts = xfd_cluster::worker::parse_worker_args(args)?;
    xfd_cluster::run_worker(&opts).map_err(|e| e.to_string())
}
