//! End-to-end tests of the `discoverxfd` binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_discoverxfd"))
}

fn write_warehouse() -> tempfile_lite::TempPath {
    let gen = bin().args(["gen", "warehouse"]).output().expect("gen runs");
    assert!(gen.status.success());
    tempfile_lite::write("discoverxfd-cli-test.xml", &gen.stdout)
}

/// A tiny self-contained temp-file helper (std-only; avoids a dependency).
mod tempfile_lite {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(name: &str, contents: &[u8]) -> TempPath {
        let mut p = std::env::temp_dir();
        p.push(format!("{}-{}", std::process::id(), name));
        std::fs::write(&p, contents).expect("temp write");
        TempPath(p)
    }
}

#[test]
fn gen_produces_parseable_xml() {
    let out = bin().args(["gen", "warehouse"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("<warehouse>"));
    xfd_xml::parse(&text).expect("generated XML parses");
}

#[test]
fn discover_reports_the_paper_fds() {
    let file = write_warehouse();
    let out = bin()
        .args(["discover", file.0.to_str().unwrap(), "--suggest"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("{./ISBN} -> ./title w.r.t. C_book"), "{text}");
    assert!(
        text.contains("{./ISBN} -> ./author w.r.t. C_book"),
        "{text}"
    );
    assert!(text.contains("# Redundancies"), "{text}");
    assert!(text.contains("# Refinement suggestions"), "{text}");
}

#[test]
fn schema_subcommand_prints_figure_2() {
    let file = write_warehouse();
    let out = bin()
        .args(["schema", file.0.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("author: SetOf str"), "{text}");
    assert!(text.contains("store: SetOf Rcd"), "{text}");
}

#[test]
fn flat_subcommand_runs() {
    let file = write_warehouse();
    let out = bin()
        .args(["flat", file.0.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# Flat relation: 7 rows"), "{text}");
}

#[test]
fn approx_flag_reports_errors() {
    let file = write_warehouse();
    let out = bin()
        .args(["discover", file.0.to_str().unwrap(), "--approx", "0.5"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# Approximate FDs"), "{text}");
    assert!(
        text.contains("error 0.0000"),
        "exact FDs appear with zero error: {text}"
    );
}

#[test]
fn check_subcommand_verifies_fds() {
    let file = write_warehouse();
    let holds = bin()
        .args([
            "check",
            file.0.to_str().unwrap(),
            "{./ISBN} -> ./title w.r.t. C_book",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8(holds.stdout).unwrap();
    assert!(text.contains("HOLDS"), "{text}");
    assert!(text.contains("NOT a key"), "{text}");

    let violated = bin()
        .args([
            "check",
            file.0.to_str().unwrap(),
            "{./ISBN} -> ./price w.r.t. C_book",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8(violated.stdout).unwrap();
    assert!(text.contains("VIOLATED"), "{text}");
}

#[test]
fn select_subcommand_queries_documents() {
    let file = write_warehouse();
    let out = bin()
        .args([
            "select",
            file.0.to_str().unwrap(),
            "//store[contact/name='Borders']/book/title",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("\"DBMS\""), "{text}");
}

#[test]
fn diff_subcommand_reports_drift() {
    let file = write_warehouse();
    let out = bin()
        .args(["diff", file.0.to_str().unwrap(), file.0.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("no constraint drift"), "{text}");
}

#[test]
fn json_output_is_emitted() {
    let file = write_warehouse();
    let out = bin()
        .args(["discover", file.0.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(text.contains("\"fds\""), "{text}");
    assert!(
        !text.contains("# Schema"),
        "json mode suppresses text output"
    );
}

#[test]
fn cover_flag_reduces_the_fd_list() {
    let file = write_warehouse();
    let out = bin()
        .args(["discover", file.0.to_str().unwrap(), "--cover"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("# Canonical covers"), "{text}");
    // The cover for C_book is smaller than the full minimal-FD list
    // (e.g. title→author follows from title→ISBN and ISBN→author).
    let full = text
        .lines()
        .skip_while(|l| !l.starts_with("# Interesting"))
        .take_while(|l| !l.starts_with("# XML Keys"))
        .filter(|l| l.contains("w.r.t. C_book"))
        .count();
    let cover = text
        .lines()
        .skip_while(|l| !l.starts_with("# Canonical covers"))
        .filter(|l| l.contains("w.r.t. C_book"))
        .count();
    assert!(cover > 0, "{text}");
    assert!(cover < full, "cover {cover} !< full {full}:\n{text}");
}

#[test]
fn dot_subcommand_renders_graphs() {
    let file = write_warehouse();
    let forest = bin()
        .args(["dot", file.0.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8(forest.stdout).unwrap();
    assert!(text.starts_with("digraph forest"), "{text}");
    let fds = bin()
        .args(["dot", file.0.to_str().unwrap(), "--fds"])
        .output()
        .unwrap();
    let text = String::from_utf8(fds.stdout).unwrap();
    assert!(text.starts_with("digraph fds"), "{text}");
}

#[test]
fn normalize_subcommand_emits_refactored_xml() {
    let file = write_warehouse();
    let out = bin()
        .args(["normalize", file.0.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let xml = String::from_utf8(out.stdout).unwrap();
    let log = String::from_utf8(out.stderr).unwrap();
    assert!(log.contains("applied:"), "{log}");
    let tree = xfd_xml::parse(&xml).expect("normalized output parses");
    assert!(
        "/warehouse/book_info"
            .parse::<xfd_xml::Path>()
            .unwrap()
            .resolve_all(&tree)
            .len()
            >= 2,
        "extracted book_info elements expected:\n{xml}"
    );
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = bin()
        .args(["discover", "/nonexistent/x.xml"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot read"), "{err}");
}

#[test]
fn unknown_flag_is_a_clean_error() {
    let file = write_warehouse();
    for args in [
        vec!["discover", file.0.to_str().unwrap(), "--bogus"],
        vec!["schema", file.0.to_str().unwrap(), "--max-lhs"],
        vec!["serve", "--no-such-option"],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.starts_with("error: unknown option"), "{args:?}: {err}");
    }
}

#[test]
fn corpus_rejects_unknown_flags_and_excess_positionals() {
    // Single-dash spellings used to be swallowed as positionals; every
    // malformed invocation must be a one-line hard error, never a no-op.
    for (args, want) in [
        (vec!["corpus", "list", "-root"], "unknown option"),
        (vec!["corpus", "create", "c", "-v"], "unknown option"),
        (vec!["corpus", "status", "c", "--bogus"], "unknown option"),
        (vec!["corpus", "create", "a", "b"], "unexpected argument"),
        (vec!["corpus", "list", "stray"], "unexpected argument"),
        (
            vec!["corpus", "discover", "c", "extra", "--json"],
            "unexpected argument",
        ),
        (vec!["corpus", "create"], "missing corpus name"),
        (vec!["corpus", "add", "c"], "missing xml file"),
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8(out.stderr).unwrap();
        let first = err.lines().next().unwrap_or("");
        assert!(
            first.starts_with("error:") && first.contains(want),
            "{args:?}: {first}"
        );
    }
}

#[test]
fn bad_flag_value_is_a_clean_error() {
    let file = write_warehouse();
    let out = bin()
        .args(["discover", file.0.to_str().unwrap(), "--max-lhs", "many"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("invalid value for --max-lhs"), "{err}");

    let dangling = bin()
        .args(["discover", file.0.to_str().unwrap(), "--max-lhs"])
        .output()
        .unwrap();
    assert!(!dangling.status.success());
    let err = String::from_utf8(dangling.stderr).unwrap();
    assert!(err.contains("--max-lhs requires a value"), "{err}");
}

#[test]
fn serve_with_unbindable_address_fails_fast() {
    let out = bin()
        .args(["serve", "--addr", "256.0.0.1:1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("cannot bind"), "{err}");
}

#[test]
fn serve_answers_requests_and_drains_on_sigterm() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;
    use std::process::Stdio;

    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("banner line");
    let addr = banner
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // One round-trip through the daemon.
    let body = "<shop><book><isbn>1</isbn><t>A</t></book>\
                <book><isbn>1</isbn><t>A</t></book></shop>";
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST /v1/discover HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
    assert!(response.contains("\"fds\""), "{response}");

    // SIGTERM must drain and exit cleanly (status 0).
    let kill = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "serve did not exit after SIGTERM"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(status.success(), "clean exit after drain: {status:?}");
}
