//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, fully deterministic implementation of the small `rand` 0.8 API
//! surface the generators use: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen_bool}`. The stream differs from upstream rand
//! (it is SplitMix64 + xorshift mixing rather than ChaCha12), but every
//! property the workspace relies on holds: seeded runs are reproducible
//! across platforms and the values are well distributed.

use std::ops::Range;

/// Types a [`Range`] can be uniformly sampled over.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`. `hi > lo` is the caller's duty.
    fn sample(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling API (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(self, range.start, range.end)
    }

    /// Bernoulli sample with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 high bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixpoint and decorrelate close seeds.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
