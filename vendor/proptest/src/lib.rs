//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest's API its property tests use: the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` and `prop_assume!`
//! macros, the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! `Just`, integer-range strategies, a mini regex string strategy,
//! `collection::vec`, `option::of` and `bool::ANY`.
//!
//! Semantics differ from upstream in two deliberate ways: there is no
//! shrinking (a failing case reports its seed instead of a minimal input),
//! and generation is driven by a deterministic SplitMix64 stream seeded
//! from the test's name, so failures reproduce across runs and platforms.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies during a test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; the runner derives seeds from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi)`; the range must be nonempty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below((hi - lo) as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps a strategy for subtrees into one for a node. The `depth`
    /// parameter bounds nesting; the size parameters exist for source
    /// compatibility with proptest and are not used by the stand-in.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = BoxedStrategy::new(self);
        let mut current = base.clone();
        // Each layer chooses leaf vs. one-more-level; the innermost layer
        // is always leaves, so total nesting is bounded by `depth`.
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(current.clone()));
            current = BoxedStrategy::new(Union {
                arms: vec![(1, base.clone()), (2, deeper)],
            });
        }
        current
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> BoxedStrategy<T> {
    /// Erase a concrete strategy.
    pub fn new<S>(strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| strategy.generate(rng)))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Construct from `(weight, strategy)` arms. Panics if empty or all
    /// weights are zero.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed during construction")
    }
}

// Integer ranges: `0u8..6`, `0usize..3`, ... Slightly edge-biased so
// boundary values show up more often than uniform sampling would give.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                if rng.chance(1, 8) {
                    // Boundary bias: emit an endpoint.
                    if rng.chance(1, 2) {
                        self.start
                    } else {
                        self.start + (span - 1) as $t
                    }
                } else {
                    self.start + rng.below(span) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// Tuples generate left to right.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// Mini regex string strategy: `".{0,200}"`, `"[a-z][a-z0-9]{0,5}"`, ...
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable char, with occasional newlines/markup chars.
    Any,
    /// `[...]` — inclusive char ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, u32, u32)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Any,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().expect("unterminated char class");
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.peek() {
                            Some(']') | None => {
                                // Trailing '-' is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                            }
                            Some(_) => {
                                let hi = chars.next().unwrap();
                                assert!(lo <= hi, "inverted class range");
                                ranges.push((lo, hi));
                            }
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty char class");
                Atom::Class(ranges)
            }
            '\\' => Atom::Lit(chars.next().expect("dangling escape")),
            other => Atom::Lit(other),
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut lo = 0u32;
                let mut hi = None::<u32>;
                let mut cur = 0u32;
                let mut saw_comma = false;
                for q in chars.by_ref() {
                    match q {
                        '0'..='9' => cur = cur * 10 + (q as u32 - '0' as u32),
                        ',' => {
                            lo = cur;
                            cur = 0;
                            saw_comma = true;
                        }
                        '}' => {
                            if saw_comma {
                                hi = Some(cur);
                            } else {
                                lo = cur;
                                hi = Some(cur);
                            }
                            break;
                        }
                        _ => panic!("bad quantifier in pattern {pattern:?}"),
                    }
                }
                let hi = hi.expect("unterminated quantifier");
                (lo, hi)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "inverted quantifier in pattern {pattern:?}");
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => {
            if rng.chance(1, 16) {
                // Sprinkle chars that exercise escaping and line handling.
                const SPICE: &[char] = &['\n', '\t', '<', '>', '&', '\'', '"', '\u{e9}'];
                SPICE[rng.below(SPICE.len() as u64) as usize]
            } else {
                char::from_u32(0x20 + rng.below(0x7F - 0x20) as u32).unwrap()
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = *hi as u64 - *lo as u64 + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32)
                        .expect("class ranges must not span surrogates");
                }
                pick -= span;
            }
            unreachable!()
        }
        Atom::Lit(c) => *c,
    }
}

/// String literals are regex-lite strategies producing `String`s.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let count = *lo + rng.below(*hi as u64 - *lo as u64 + 1) as u32;
            for _ in 0..count {
                out.push(generate_atom(atom, rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// collection / option / bool modules
// ---------------------------------------------------------------------------

/// `proptest::collection`: sized containers of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Half-open element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option`: optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`: `None` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Result of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(1, 2) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `proptest::bool`: boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.chance(1, 2)
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the runner panics with this message.
    Fail(String),
    /// `prop_assume!` filtered the input; the runner retries.
    Reject(String),
}

impl TestCaseError {
    /// Assertion failure with a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Input filtered by an assumption.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-test configuration (`cases` is the only knob the stand-in honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: run `f` until `config.cases` cases pass, retrying
/// rejected cases, panicking on the first failure with a reproducible seed.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 64 + 256;
    while accepted < config.cases {
        attempt += 1;
        if attempt > max_attempts {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({accepted} accepted of {} wanted)",
                config.cases
            );
        }
        let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed (case {accepted}, seed {seed:#018x}): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strategy,)*);
            $crate::run_proptest(config, stringify!($name), |rng| {
                let ($($arg,)*) = $crate::Strategy::generate(&strategies, rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

/// Weighted (`w => strat`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::BoxedStrategy::new($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::BoxedStrategy::new($strategy))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Discard the current case (retried, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..10_000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn regex_classes_generate_matching_strings() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..1_000 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,5}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6, "bad len: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_space_tilde_class() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..1_000 {
            let s = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn vec_and_option_and_bool() {
        let mut rng = crate::TestRng::new(4);
        let strat = crate::collection::vec((crate::option::of(0u8..4), crate::bool::ANY), 1..10);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..10).contains(&v.len()));
            for (o, _b) in &v {
                match o {
                    Some(x) => {
                        assert!(*x < 4);
                        saw_some = true;
                    }
                    None => saw_none = true,
                }
            }
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Node {
            Leaf(u8),
            Inner(Vec<(u8, Node)>),
        }
        fn depth(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 0,
                Node::Inner(cs) => 1 + cs.iter().map(|(_, c)| depth(c)).max().unwrap_or(0),
            }
        }
        let strat = (0u8..6)
            .prop_map(Node::Leaf)
            .prop_recursive(3, 20, 4, |inner| {
                crate::collection::vec((0u8..3, inner), 0..4).prop_map(Node::Inner)
            });
        let mut rng = crate::TestRng::new(5);
        let mut max_depth = 0;
        for _ in 0..500 {
            max_depth = max_depth.max(depth(&Strategy::generate(&strat, &mut rng)));
        }
        assert!(max_depth >= 1, "recursion never taken");
        assert!(max_depth <= 4, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn oneof_respects_weights() {
        let strat = prop_oneof![3 => (0u64..5).prop_map(Some), 1 => Just(None)];
        let mut rng = crate::TestRng::new(6);
        let nones = (0..10_000)
            .filter(|_| Strategy::generate(&strat, &mut rng).is_none())
            .count();
        assert!((1_800..3_200).contains(&nones), "nones = {nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro pipeline itself: patterns, assume, assert.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..50, 0u32..50), flip in crate::bool::ANY) {
            prop_assume!(a != 49 || b != 49);
            let sum = a + b;
            prop_assert!(sum < 100, "sum out of range: {}", sum);
            prop_assert_eq!(sum, if flip { b + a } else { a + b });
        }
    }
}
