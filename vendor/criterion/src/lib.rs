//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors the subset of criterion's API its benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros and
//! `black_box`). Measurement is deliberately simple — a warmup pass plus a
//! timed batch, median-of-batches wall clock — with results printed to
//! stdout. Statistical rigor can return when the real crate is available;
//! the benches compile and produce comparable numbers either way.

use std::fmt;
use std::time::{Duration, Instant};

/// Identity function that defeats constant-folding of benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Measured time for the sampled batch.
    elapsed: Duration,
    /// Iterations in the sampled batch.
    iters: u64,
}

impl Bencher {
    /// Time `f`, warming up once and then sampling a batch sized so the
    /// measurement is at least ~10ms or 10 iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup + forces compilation of the path
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(10) || iters >= 10 {
                self.elapsed = dt;
                self.iters = iters;
                return;
            }
            iters *= 2;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample-count knob; measurement here is single-batch, so
    /// this only exists for source compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let tp = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!("{}/{}: {:.3} ms/iter{}", self.name, id, per_iter * 1e3, tp);
    }

    /// End the group (criterion finalizes reports here; we have nothing to
    /// flush).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("base", f);
        self
    }
}

/// Collect benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("prod", 10).to_string(), "prod/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
